//! Facade crate for the ARM2GC workspace.
//!
//! Re-exports every subsystem crate under a short module name so examples
//! and downstream users can depend on a single crate:
//!
//! ```
//! use arm2gc::circuit::Circuit;
//! use arm2gc::core::run_two_party;
//! use arm2gc::cpu::machine::GcMachine;
//! ```

pub use arm2gc_circuit as circuit;
pub use arm2gc_comm as comm;
pub use arm2gc_core as core;
pub use arm2gc_cpu as cpu;
pub use arm2gc_crypto as crypto;
pub use arm2gc_garble as garble;
pub use arm2gc_ot as ot;
pub use arm2gc_proto as proto;
pub use arm2gc_server as server;
