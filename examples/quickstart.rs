//! Quickstart: the millionaires' problem on the garbled processor.
//!
//! Alice and Bob each hold a (private) net worth; they learn who is
//! richer and nothing else. The comparison runs as a program on the
//! ARM2GC garbled CPU — the paper's Figure 4 flow end to end:
//! assemble (public `p`) → load private memories → SkipGate-garble.
//!
//! Run with: `cargo run --release --example quickstart`

use arm2gc::cpu::asm::assemble;
use arm2gc::cpu::machine::{CpuConfig, GcMachine};

fn main() {
    // The "application": standard assembly, no crypto in sight.
    // (A C programmer would write `out[0] = a[0] > b[0];` — the paper's
    // gcc-arm flow; our assembler is the toolchain substitution.)
    let program = assemble(
        "ldr r0, [r8]      ; Alice's net worth
         ldr r1, [r9]      ; Bob's net worth
         cmp r0, r1
         sbc r2, r2, r2    ; r2 = borrow mask (a < b)
         and r2, r2, #1
         str r2, [r10]     ; 1 = Bob is richer, 0 = Alice
         halt",
    )
    .expect("program assembles");

    let alice_worth = 5_300_000u32;
    let bob_worth = 7_100_000u32;

    let machine = GcMachine::new(CpuConfig::small());
    let (run, stats) = machine.run_skipgate(&program, &[alice_worth], &[bob_worth], 100);

    println!("millionaires' problem on the garbled ARM2GC processor");
    println!(
        "  program: {} instructions (public input p)",
        program.text.len()
    );
    println!("  cycles executed: {}", run.cycles);
    println!(
        "  result: {} is richer",
        if run.output[0] == 1 { "Bob" } else { "Alice" }
    );
    println!();
    println!("cost (the paper's metric: garbled non-XOR gates):");
    println!("  garbled tables sent:     {}", stats.garbled_tables);
    println!("  tables skipped (dead):   {}", stats.skipped_nonlinear);
    println!("  gates computed publicly: {}", stats.public_gates);
    println!(
        "  conventional GC would garble: {} (the whole CPU, every cycle)",
        machine.baseline_cost(run.cycles)
    );
    assert_eq!(run.output[0], 1, "Bob is richer in this demo");
}
