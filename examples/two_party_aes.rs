//! Two-party AES-128: Alice holds the key, Bob the plaintext; the
//! ciphertext is computed without either learning the other's input.
//! (The paper's AES benchmark, §5 — and the classic GC showpiece.)
//!
//! Also demonstrates running the protocol over the real OT stack
//! (Naor–Pinkas base OTs + IKNP extension) instead of the test OT.
//!
//! Run with: `cargo run --release --example two_party_aes`

use arm2gc::circuit::bench_circuits::aes128;
use arm2gc::comm::duplex;
use arm2gc::core::{run_skipgate_evaluator, run_skipgate_garbler, SkipGateOptions};
use arm2gc::crypto::{Aes128, Prg};
use arm2gc::ot::{IknpReceiver, IknpSender, MersenneGroup, NaorPinkasReceiver, NaorPinkasSender};

fn main() {
    let key: [u8; 16] = *b"sixteen byte key";
    let plaintext: [u8; 16] = *b"attack at dawn!!";

    let bc = aes128(key, plaintext);
    let circuit = &bc.circuit;
    println!("two-party AES-128 (Alice: key, Bob: plaintext)");
    println!(
        "  circuit: {} gates, {} non-XOR per round-cycle",
        circuit.gates().len(),
        circuit.non_xor_count()
    );

    // Real OT stack over the 1279-bit Mersenne group.
    let group = MersenneGroup::test_group(); // use ::standard() for full size
    let (mut ca, mut cb) = duplex();
    let g2 = group.clone();
    let public_b = bc.public.clone();
    let (alice_data, bob_data, public, cycles) = (bc.alice, bc.bob, bc.public, bc.cycles);

    let circuit_a = circuit.clone();
    let garbler = std::thread::spawn(move || {
        let mut prg = Prg::from_entropy();
        let mut setup = Prg::from_entropy();
        let mut base = NaorPinkasReceiver::new(g2, Prg::from_entropy());
        let mut ot = IknpSender::setup(&mut base, &mut ca, &mut setup).expect("iknp");
        run_skipgate_garbler(
            &circuit_a,
            &alice_data,
            &public,
            cycles,
            &mut ca,
            &mut ot,
            &mut prg,
            SkipGateOptions::default(),
        )
        .expect("garbler")
    });

    let mut setup = Prg::from_entropy();
    let mut base = NaorPinkasSender::new(group, Prg::from_entropy());
    let mut ot = IknpReceiver::setup(&mut base, &mut cb, &mut setup).expect("iknp");
    let bob_out = run_skipgate_evaluator(
        circuit,
        &bob_data,
        &public_b,
        cycles,
        &mut cb,
        &mut ot,
        SkipGateOptions::default(),
    )
    .expect("evaluator");
    let alice_out = garbler.join().expect("garbler thread");
    assert_eq!(alice_out.outputs, bob_out.outputs);

    // Decode and verify against a local AES (only possible here because
    // this demo knows both inputs).
    let bits = alice_out.final_output();
    let mut ct = [0u8; 16];
    for (i, byte) in ct.iter_mut().enumerate() {
        for j in 0..8 {
            *byte |= (bits[8 * i + j] as u8) << j;
        }
    }
    let expected = Aes128::new(key).encrypt_block(plaintext);
    println!("  ciphertext: {}", hex(&ct));
    println!("  garbled tables: {}", alice_out.stats.garbled_tables);
    println!("  OTs executed:   {}", alice_out.stats.ots);
    assert_eq!(ct, expected, "garbled AES must match local AES");
    println!("  verified against local AES ✓");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
