//! Two-process deployment: garbler and evaluator in *separate OS
//! processes*, talking over TCP — the paper's evaluation setting, on
//! one machine.
//!
//! The parent process plays Alice (garbler): it binds an ephemeral
//! port, re-launches this same binary as the evaluator child, and runs
//! the SkipGate protocol over [`TcpChannel`] — versioned session
//! handshake, real Naor–Pinkas + IKNP OT, chunked table streaming. With
//! `--shards N` (the orchestrated default is 2) the garbled-table
//! stream is sharded: the evaluator opens one extra socket per shard
//! and each shard's slice of every cycle's tables travels over its own
//! connection, sent by a dedicated garbler-side worker thread. Both
//! processes independently check the result against the cleartext
//! circuit simulator.
//!
//! Run with: `cargo run --release --example tcp_two_party`
//! (or manually: `... -- --role evaluator --addr HOST:PORT --shards N`
//! in a second terminal after starting
//! `... -- --role garbler --addr HOST:PORT --shards N`).
//!
//! The shard count is out-of-band session configuration (it decides
//! how many sockets each side opens before the protocol even starts),
//! so in manual mode both processes must be given the same `--shards`;
//! mismatched values leave one side waiting in socket setup. The
//! orchestrated mode passes the flag through to the child itself.
//!
//! With `--instances N` (> 1) the session runs in instanced mode: N
//! independent millionaires' comparisons — each lane with its own
//! inputs — garbled through one SoA wavefront, so every cycle's
//! nonlinear gates across all lanes flow through one batched AES call.
//! Like `--shards`, the lane count is out-of-band session
//! configuration and must match on both sides in manual mode.

use std::process::{Command, Stdio};

use arm2gc::circuit::bench_circuits::{self, BenchCircuit};
use arm2gc::circuit::sim::{PartyData, Simulator};
use arm2gc::comm::{Channel, TcpChannel};
use arm2gc::core::{
    run_skipgate_evaluator_instanced, run_skipgate_evaluator_sharded,
    run_skipgate_garbler_instanced, run_skipgate_garbler_sharded, OtBackend, OtConfig, ShardConfig,
    SkipGateOptions, SkipGateOutcome,
};
use arm2gc::crypto::Prg;
use arm2gc::garble::StreamConfig;
use arm2gc::proto::PROTOCOL_VERSION;

/// Both processes derive the same workload deterministically: the
/// millionaires' problem as a comparison circuit. (In a real deployment
/// each party would of course load only its own input.)
fn workload() -> BenchCircuit {
    bench_circuits::compare(32, 5_300_000, 7_100_000)
}

/// Per-lane workloads for instanced mode: one shared circuit, distinct
/// inputs. Lane `k` raises Alice's wealth by `k` million, so the winner
/// flips across lanes and the printed results show that each lane
/// really computed on its own inputs.
fn lane_workloads(instances: usize) -> Vec<BenchCircuit> {
    (0..instances)
        .map(|k| bench_circuits::compare(32, 5_300_000 + 1_000_000 * k as u64, 7_100_000))
        .collect()
}

/// What the in-process simulator says the outputs must be.
fn check_against_simulator(who: &str, bc: &BenchCircuit, outcome: &SkipGateOutcome) {
    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(
        outcome.outputs, sim.outputs,
        "{who}: TCP protocol run disagrees with the in-process simulator"
    );
}

fn run_garbler(mut ch: TcpChannel, shard_chs: Vec<Box<dyn Channel>>, shards: ShardConfig) {
    let bc = workload();
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.sender(OtConfig::TEST, &mut prg);
    let outcome = run_skipgate_garbler_sharded(
        &bc.circuit,
        &bc.alice,
        &bc.public,
        bc.cycles,
        &mut ch,
        shard_chs,
        ot.as_mut(),
        &mut prg,
        SkipGateOptions::default(),
        StreamConfig::default(),
        shards,
    )
    .expect("garbler protocol run");
    check_against_simulator("garbler", &bc, &outcome);

    println!("two-process SkipGate over TCP (protocol v{PROTOCOL_VERSION})");
    println!("  circuit: {} ({} cycles)", bc.circuit.name(), bc.cycles);
    println!(
        "  table-stream shards:  {} ({} socket{})",
        shards.shards,
        1 + if shards.is_sharded() {
            shards.shards
        } else {
            0
        },
        if shards.is_sharded() { "s" } else { "" },
    );
    println!("  garbled tables sent: {}", outcome.stats.garbled_tables);
    println!("  OTs executed:        {}", outcome.stats.ots);
    println!(
        "  result: {} is richer",
        if outcome.final_output()[0] {
            "Bob"
        } else {
            "Alice"
        }
    );
    println!("  verified against the in-process simulator ✓");
}

fn run_garbler_instanced(
    mut ch: TcpChannel,
    shard_chs: Vec<Box<dyn Channel>>,
    shards: ShardConfig,
    instances: usize,
) {
    let lanes = lane_workloads(instances);
    let alices: Vec<PartyData> = lanes.iter().map(|bc| bc.alice.clone()).collect();
    let publics: Vec<PartyData> = lanes.iter().map(|bc| bc.public.clone()).collect();
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.sender(OtConfig::TEST, &mut prg);
    let outcome = run_skipgate_garbler_instanced(
        &lanes[0].circuit,
        &alices,
        &publics,
        lanes[0].cycles,
        &mut ch,
        shard_chs,
        ot.as_mut(),
        &mut prg,
        SkipGateOptions::default(),
        StreamConfig::default(),
        shards,
    )
    .expect("garbler instanced protocol run");
    for (bc, lane) in lanes.iter().zip(&outcome.lanes) {
        check_against_simulator("garbler", bc, lane);
    }

    println!("two-process instanced SkipGate over TCP (protocol v{PROTOCOL_VERSION})");
    println!(
        "  circuit: {} ({} cycles), {} lanes",
        lanes[0].circuit.name(),
        lanes[0].cycles,
        instances
    );
    println!(
        "  mean batch width:    {:.1} session-wide, {:.1} per instance",
        outcome.batching.mean_batch(),
        outcome.batching.mean_batch_per_instance()
    );
    for (k, lane) in outcome.lanes.iter().enumerate() {
        println!(
            "  lane {k}: {} is richer ({} tables, {} OTs)",
            if lane.final_output()[0] {
                "Bob"
            } else {
                "Alice"
            },
            lane.stats.garbled_tables,
            lane.stats.ots
        );
    }
    println!("  all lanes verified against the in-process simulator ✓");
}

fn run_evaluator_instanced(addr: &str, shards: ShardConfig, instances: usize) {
    let lanes = lane_workloads(instances);
    let mut ch = TcpChannel::connect(addr).expect("connect to garbler");
    let shard_chs = connect_shards(addr, shards);
    let bobs: Vec<PartyData> = lanes.iter().map(|bc| bc.bob.clone()).collect();
    let publics: Vec<PartyData> = lanes.iter().map(|bc| bc.public.clone()).collect();
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.receiver(OtConfig::TEST, &mut prg);
    let outcome = run_skipgate_evaluator_instanced(
        &lanes[0].circuit,
        &bobs,
        &publics,
        lanes[0].cycles,
        &mut ch,
        shard_chs,
        ot.as_mut(),
        SkipGateOptions::default(),
        shards,
    )
    .expect("evaluator instanced protocol run");
    for (bc, lane) in lanes.iter().zip(&outcome.lanes) {
        check_against_simulator("evaluator", bc, lane);
    }
}

fn run_evaluator(addr: &str, shards: ShardConfig) {
    let bc = workload();
    // Connection order fixes shard identity: main channel first, then
    // one socket per shard, in shard order.
    let mut ch = TcpChannel::connect(addr).expect("connect to garbler");
    let shard_chs = connect_shards(addr, shards);
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.receiver(OtConfig::TEST, &mut prg);
    let outcome = run_skipgate_evaluator_sharded(
        &bc.circuit,
        &bc.bob,
        &bc.public,
        bc.cycles,
        &mut ch,
        shard_chs,
        ot.as_mut(),
        SkipGateOptions::default(),
        shards,
    )
    .expect("evaluator protocol run");
    check_against_simulator("evaluator", &bc, &outcome);
}

/// Opens the evaluator's per-shard sockets (none when unsharded).
fn connect_shards(addr: &str, shards: ShardConfig) -> Vec<Box<dyn Channel>> {
    if !shards.is_sharded() {
        return Vec::new();
    }
    (0..shards.shards)
        .map(|k| {
            Box::new(TcpChannel::connect(addr).unwrap_or_else(|e| panic!("shard {k} socket: {e}")))
                as Box<dyn Channel>
        })
        .collect()
}

/// Accepts the garbler's per-shard sockets off `listener` (none when
/// unsharded). TCP queues connections in order, so the `k`-th accepted
/// socket is shard `k`.
fn accept_shards(listener: &std::net::TcpListener, shards: ShardConfig) -> Vec<Box<dyn Channel>> {
    if !shards.is_sharded() {
        return Vec::new();
    }
    (0..shards.shards)
        .map(|k| {
            let (stream, _) = listener
                .accept()
                .unwrap_or_else(|e| panic!("accept shard {k}: {e}"));
            Box::new(TcpChannel::from_stream(stream).expect("wrap shard stream"))
                as Box<dyn Channel>
        })
        .collect()
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn shard_config(default: usize) -> ShardConfig {
    let n = arg_after("--shards")
        .map(|s| s.parse().expect("--shards takes a positive integer"))
        .unwrap_or(default);
    ShardConfig::new(n)
}

fn instance_count() -> usize {
    let n: usize = arg_after("--instances")
        .map(|s| s.parse().expect("--instances takes a positive integer"))
        .unwrap_or(1);
    assert!(n >= 1, "--instances takes a positive integer");
    n
}

fn main() {
    let instances = instance_count();
    match arg_after("--role").as_deref() {
        Some("evaluator") => {
            let addr = arg_after("--addr").expect("--addr required for the evaluator role");
            let shards = shard_config(1);
            if instances > 1 {
                run_evaluator_instanced(&addr, shards, instances);
            } else {
                run_evaluator(&addr, shards);
            }
        }
        Some("garbler") => {
            let addr = arg_after("--addr").expect("--addr required for the garbler role");
            let shards = shard_config(1);
            let listener = TcpChannel::listener(&*addr).expect("bind");
            let (stream, _) = listener.accept().expect("accept");
            let main_ch = TcpChannel::from_stream(stream).expect("wrap stream");
            let shard_chs = accept_shards(&listener, shards);
            if instances > 1 {
                run_garbler_instanced(main_ch, shard_chs, shards, instances);
            } else {
                run_garbler(main_ch, shard_chs, shards);
            }
        }
        Some(other) => panic!("unknown --role {other} (use garbler|evaluator)"),
        None => {
            // Orchestrate both processes: bind first so the child can
            // connect immediately, then spawn ourselves as evaluator.
            // The default exercises a sharded stream over two sockets.
            let shards = shard_config(2);
            let listener = TcpChannel::listener("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr").to_string();
            let exe = std::env::current_exe().expect("own path");
            let mut child = Command::new(exe)
                .args(["--role", "evaluator", "--addr", &addr])
                .args(["--shards", &shards.shards.to_string()])
                .args(["--instances", &instances.to_string()])
                .stdout(Stdio::inherit())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn evaluator process");

            let (stream, peer) = listener.accept().expect("accept");
            println!("evaluator process connected from {peer}");
            let main_ch = TcpChannel::from_stream(stream).expect("wrap stream");
            let shard_chs = accept_shards(&listener, shards);
            if instances > 1 {
                run_garbler_instanced(main_ch, shard_chs, shards, instances);
            } else {
                run_garbler(main_ch, shard_chs, shards);
            }

            let status = child.wait().expect("wait for evaluator");
            assert!(status.success(), "evaluator process failed: {status}");
            println!("  evaluator process exited cleanly ✓");
        }
    }
}
