//! Two-process deployment: garbler and evaluator in *separate OS
//! processes*, talking over TCP — the paper's evaluation setting, on
//! one machine.
//!
//! The parent process plays Alice (garbler): it binds an ephemeral
//! port, re-launches this same binary as the evaluator child, and runs
//! the SkipGate protocol over [`TcpChannel`] — versioned session
//! handshake, real Naor–Pinkas + IKNP OT, chunked table streaming. Both
//! processes independently check the result against the cleartext
//! circuit simulator.
//!
//! Run with: `cargo run --release --example tcp_two_party`
//! (or manually: `... -- --role evaluator --addr HOST:PORT` in a second
//! terminal after starting `... -- --role garbler --addr HOST:PORT`).

use std::process::{Command, Stdio};

use arm2gc::circuit::bench_circuits::{self, BenchCircuit};
use arm2gc::circuit::sim::Simulator;
use arm2gc::comm::TcpChannel;
use arm2gc::core::{
    run_skipgate_evaluator, run_skipgate_garbler, OtBackend, SkipGateOptions, SkipGateOutcome,
};
use arm2gc::crypto::Prg;
use arm2gc::proto::PROTOCOL_VERSION;

/// Both processes derive the same workload deterministically: the
/// millionaires' problem as a comparison circuit. (In a real deployment
/// each party would of course load only its own input.)
fn workload() -> BenchCircuit {
    bench_circuits::compare(32, 5_300_000, 7_100_000)
}

/// What the in-process simulator says the outputs must be.
fn check_against_simulator(who: &str, bc: &BenchCircuit, outcome: &SkipGateOutcome) {
    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(
        outcome.outputs, sim.outputs,
        "{who}: TCP protocol run disagrees with the in-process simulator"
    );
}

fn run_garbler(mut ch: TcpChannel) {
    let bc = workload();
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.sender(&mut prg);
    let outcome = run_skipgate_garbler(
        &bc.circuit,
        &bc.alice,
        &bc.public,
        bc.cycles,
        &mut ch,
        ot.as_mut(),
        &mut prg,
        SkipGateOptions::default(),
    )
    .expect("garbler protocol run");
    check_against_simulator("garbler", &bc, &outcome);

    println!("two-process SkipGate over TCP (protocol v{PROTOCOL_VERSION})");
    println!("  circuit: {} ({} cycles)", bc.circuit.name(), bc.cycles);
    println!("  garbled tables sent: {}", outcome.stats.garbled_tables);
    println!("  OTs executed:        {}", outcome.stats.ots);
    println!(
        "  result: {} is richer",
        if outcome.final_output()[0] {
            "Bob"
        } else {
            "Alice"
        }
    );
    println!("  verified against the in-process simulator ✓");
}

fn run_evaluator(addr: &str) {
    let bc = workload();
    let mut ch = TcpChannel::connect(addr).expect("connect to garbler");
    let mut prg = Prg::from_entropy();
    let mut ot = OtBackend::NaorPinkasIknp.receiver(&mut prg);
    let outcome = run_skipgate_evaluator(
        &bc.circuit,
        &bc.bob,
        &bc.public,
        bc.cycles,
        &mut ch,
        ot.as_mut(),
        SkipGateOptions::default(),
    )
    .expect("evaluator protocol run");
    check_against_simulator("evaluator", &bc, &outcome);
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    match arg_after("--role").as_deref() {
        Some("evaluator") => {
            let addr = arg_after("--addr").expect("--addr required for the evaluator role");
            run_evaluator(&addr);
        }
        Some("garbler") => {
            let addr = arg_after("--addr").expect("--addr required for the garbler role");
            let listener = TcpChannel::listener(&*addr).expect("bind");
            let (stream, _) = listener.accept().expect("accept");
            run_garbler(TcpChannel::from_stream(stream).expect("wrap stream"));
        }
        Some(other) => panic!("unknown --role {other} (use garbler|evaluator)"),
        None => {
            // Orchestrate both processes: bind first so the child can
            // connect immediately, then spawn ourselves as evaluator.
            let listener = TcpChannel::listener("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr").to_string();
            let exe = std::env::current_exe().expect("own path");
            let mut child = Command::new(exe)
                .args(["--role", "evaluator", "--addr", &addr])
                .stdout(Stdio::inherit())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn evaluator process");

            let (stream, peer) = listener.accept().expect("accept");
            println!("evaluator process connected from {peer}");
            run_garbler(TcpChannel::from_stream(stream).expect("wrap stream"));

            let status = child.wait().expect("wait for evaluator");
            assert!(status.success(), "evaluator process failed: {status}");
            println!("  evaluator process exited cleanly ✓");
        }
    }
}
