//! Privacy-preserving biometric matching (the paper's intro motivates
//! GC with exactly this kind of two-party analytics).
//!
//! A server holds an enrolled 512-bit iris template; a client holds a
//! fresh scan. They learn whether the Hamming distance is under the
//! acceptance threshold — and neither learns the other's template.
//! This uses the circuit-level pipeline (TinyGarble-style) rather than
//! the CPU: a Hamming core plus a threshold comparator.
//!
//! Run with: `cargo run --release --example biometric_match`

use arm2gc::circuit::sim::PartyData;
use arm2gc::circuit::{CircuitBuilder, DffInit, OutputMode, Role};
use arm2gc::core::run_two_party;

const TEMPLATE_BITS: usize = 512;
const THRESHOLD: u64 = 120; // accept if fewer than 120 bits differ

fn main() {
    // Sequential Hamming core (one bit pair per cycle) + final compare.
    let width = 10; // counter width for up to 512
    let mut b = CircuitBuilder::new("iris_match");
    let ai = b.input(Role::Alice);
    let bi = b.input(Role::Bob);
    let x = b.xor(ai, bi);
    let counter = b.dff_bus(width, |_| DffInit::Const(false));
    let mut carry = x;
    let mut next = Vec::with_capacity(width);
    for (i, &c) in counter.iter().enumerate() {
        next.push(b.xor(c, carry));
        if i + 1 < width {
            carry = b.and(c, carry);
        }
    }
    b.connect_dff_bus(&counter, &next);
    let threshold = b.const_bus(THRESHOLD, width);
    let accept = b.lt_unsigned(&counter, &threshold);
    b.output(accept);
    b.set_output_mode(OutputMode::FinalOnly);
    let circuit = b.build();

    // Synthetic templates: ~100 differing bits (a genuine match).
    let enrolled: Vec<bool> = (0..TEMPLATE_BITS).map(|i| (i * 7) % 3 == 0).collect();
    let scan: Vec<bool> = enrolled
        .iter()
        .enumerate()
        .map(|(i, &bit)| if i % 5 == 0 { !bit } else { bit })
        .collect();
    let distance = enrolled.iter().zip(&scan).filter(|(a, b)| a != b).count();

    let alice = PartyData::from_stream(enrolled.iter().map(|&v| vec![v]).collect());
    let bob = PartyData::from_stream(scan.iter().map(|&v| vec![v]).collect());
    let (out, _) = run_two_party(&circuit, &alice, &bob, &PartyData::default(), TEMPLATE_BITS);

    println!("privacy-preserving iris match ({TEMPLATE_BITS}-bit templates)");
    println!("  true Hamming distance (neither party learns this): {distance}");
    println!(
        "  protocol output: {}",
        if out.final_output()[0] {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );
    println!("  garbled tables: {}", out.stats.garbled_tables);
    assert_eq!(out.final_output()[0], distance < THRESHOLD as usize);
}
