//! A sealed-bid second-price auction on the garbled processor.
//!
//! Each party submits four sealed bids (e.g. two bidding consortia).
//! The program finds the highest and second-highest bid across all
//! eight without revealing any losing bid — a classic SFE application
//! (Naor–Pinkas–Sumner's auctions motivated row reduction itself).
//!
//! Every secret-dependent decision is a conditional move, so the
//! program counter stays public and SkipGate keeps the run cheap.
//!
//! Run with: `cargo run --release --example private_auction`

use arm2gc::cpu::asm::assemble;
use arm2gc::cpu::machine::{CpuConfig, GcMachine};

fn main() {
    let program = assemble(
        "      ; r1 = highest, r2 = second highest
               mov r1, #0
               mov r2, #0
               mov r4, #0          ; index over 4 bids per party
        loop:  ldr r0, [r8, r4]    ; Alice's bid i
               bl consider
               ldr r0, [r9, r4]    ; Bob's bid i
               bl consider
               add r4, r4, #1
               teq r4, #4
               bne loop
               str r1, [r10]       ; winning (highest) bid
               str r2, [r10, #1]   ; clearing (second) price
               halt
        ; consider bid in r0 against (r1 = max, r2 = second).
        ; Branch-free: insert into the top-2 with conditional moves only,
        ; so the secret comparison never touches the program counter.
        consider:
               cmp r0, r2
               movhi r2, r0        ; r2 = max(r2, bid)
               cmp r2, r1
               movhi r3, r1        ; if out of order, swap r1/r2
               movhi r1, r2
               movhi r2, r3
               mov pc, lr",
    )
    .expect("auction program assembles");

    let alice_bids = [120u32, 90, 455, 230];
    let bob_bids = [310u32, 444, 100, 70];

    let machine = GcMachine::new(CpuConfig::small());
    let (run, stats) = machine.run_skipgate(&program, &alice_bids, &bob_bids, 1_000);

    println!("sealed-bid second-price auction (4 bids per party)");
    println!("  highest bid:    {}", run.output[0]);
    println!("  clearing price: {}", run.output[1]);
    println!(
        "  cycles: {}, garbled tables: {}",
        run.cycles, stats.garbled_tables
    );
    assert_eq!(run.output[0], 455);
    assert_eq!(run.output[1], 444);
}
