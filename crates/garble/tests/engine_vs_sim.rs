//! Differential tests: the classic GC engine must agree with the
//! cleartext simulator on every circuit, and its table count must equal
//! `cycles × non-XOR` (no gate is ever skipped in the baseline).

use arm2gc_circuit::bench_circuits::{self, BenchCircuit};
use arm2gc_circuit::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
use arm2gc_circuit::sim::{PartyData, Simulator};
use arm2gc_circuit::{Circuit, OutputMode};
use arm2gc_comm::duplex;
use arm2gc_crypto::Prg;
use arm2gc_garble::{run_evaluator, run_garbler, GarbleOutcome};
use arm2gc_ot::InsecureOt;

fn run_protocol(
    circuit: &Circuit,
    alice: &PartyData,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
) -> (GarbleOutcome, GarbleOutcome) {
    let (mut ca, mut cb) = duplex();
    let c2 = circuit.clone();
    let a2 = alice.clone();
    let p2 = public.clone();
    let garbler = std::thread::spawn(move || {
        let mut prg = Prg::from_seed([77; 16]);
        run_garbler(&c2, &a2, &p2, cycles, &mut ca, &mut InsecureOt, &mut prg).expect("garbler")
    });
    let bob_out = run_evaluator(circuit, bob, cycles, &mut cb, &mut InsecureOt).expect("evaluator");
    let alice_out = garbler.join().expect("garbler thread");
    (alice_out, bob_out)
}

fn check_bench(bc: &BenchCircuit) {
    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);
    let (alice_out, bob_out) = run_protocol(&bc.circuit, &bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(alice_out.outputs, sim.outputs, "{}", bc.circuit.name());
    assert_eq!(bob_out.outputs, sim.outputs, "{}", bc.circuit.name());
    // Baseline garbles every nonlinear gate every cycle.
    assert_eq!(
        alice_out.stats.garbled_tables,
        bc.circuit.non_xor_count() * bc.cycles as u64,
        "{}",
        bc.circuit.name()
    );
    assert_eq!(
        alice_out.stats.table_bytes,
        alice_out.stats.garbled_tables * 32
    );
}

#[test]
fn sum_32_matches_paper_baseline() {
    let bc = bench_circuits::sum(32, 0x8765_4321, 0x0fed_cba9);
    check_bench(&bc);
    // Paper Table 1: Sum 32 without SkipGate = 32 garbled non-XORs.
    assert_eq!(bc.circuit.non_xor_count() * bc.cycles as u64, 32);
}

#[test]
fn compare_32_matches_paper_baseline() {
    let bc = bench_circuits::compare(32, 1000, 2000);
    check_bench(&bc);
    assert_eq!(bc.circuit.non_xor_count() * bc.cycles as u64, 32);
}

#[test]
fn hamming_160_matches_paper_baseline() {
    let a: Vec<u32> = (0..5).map(|i| 0x9e37_79b9u32.wrapping_mul(i + 1)).collect();
    let b: Vec<u32> = (0..5).map(|i| 0x7f4a_7c15u32.wrapping_mul(i + 3)).collect();
    let bc = bench_circuits::hamming(160, &a, &b);
    check_bench(&bc);
    // Paper Table 1: Hamming 160 without SkipGate = 1,120.
    assert_eq!(bc.circuit.non_xor_count() * bc.cycles as u64, 1120);
}

#[test]
fn mult_32_matches_paper_baseline() {
    let bc = bench_circuits::mult(32, 0xdead_beef, 0x1234_5678);
    check_bench(&bc);
    assert_eq!(bc.circuit.non_xor_count(), 2016);
}

#[test]
fn aes_128_protocol_correct() {
    let key: Vec<u8> = (100..116).collect();
    let pt: Vec<u8> = (7..23).collect();
    let bc = bench_circuits::aes128(key.try_into().unwrap(), pt.try_into().unwrap());
    check_bench(&bc);
}

#[test]
fn matmul_3x3_protocol_correct() {
    let a: Vec<u32> = (0..9).map(|i| i * 1000 + 1).collect();
    let b: Vec<u32> = (0..9).map(|i| 77 * i + 13).collect();
    check_bench(&bench_circuits::matrix_mult(3, &a, &b));
}

#[test]
fn random_circuits_match_simulator() {
    let mut rng = TestRng::new(2026);
    for i in 0..25 {
        let mode = if i % 2 == 0 {
            OutputMode::PerCycle
        } else {
            OutputMode::FinalOnly
        };
        let params = RandomCircuitParams {
            inputs: (2 + i % 3, 2, 1 + i % 2),
            dffs: 3 + i % 4,
            gates: 30 + 5 * (i % 5),
            outputs: 4,
            output_mode: mode,
        };
        let c = random_circuit(&mut rng, params);
        let cycles = 1 + i % 5;
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (alice_out, bob_out) = run_protocol(&c, &a, &b, &p, cycles);
        assert_eq!(alice_out.outputs, sim.outputs, "iteration {i}");
        assert_eq!(bob_out.outputs, sim.outputs, "iteration {i}");
    }
}

#[test]
fn works_over_iknp_extension() {
    use arm2gc_ot::{IknpReceiver, IknpSender};
    let bc = bench_circuits::compare(32, 123, 456);
    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);

    let (mut ca, mut cb) = duplex();
    let circuit = bc.circuit.clone();
    let alice = bc.alice.clone();
    let public = bc.public.clone();
    let cycles = bc.cycles;
    let garbler = std::thread::spawn(move || {
        let mut prg = Prg::from_seed([78; 16]);
        let mut setup_prg = Prg::from_seed([79; 16]);
        let mut base = InsecureOt;
        let mut ot = IknpSender::setup(&mut base, &mut ca, &mut setup_prg).expect("iknp setup");
        run_garbler(
            &circuit, &alice, &public, cycles, &mut ca, &mut ot, &mut prg,
        )
        .expect("garbler")
    });
    let mut setup_prg = Prg::from_seed([80; 16]);
    let mut base = InsecureOt;
    let mut ot = IknpReceiver::setup(&mut base, &mut cb, &mut setup_prg).expect("iknp setup");
    let bob_out = run_evaluator(&bc.circuit, &bc.bob, bc.cycles, &mut cb, &mut ot).expect("eval");
    let alice_out = garbler.join().unwrap();
    assert_eq!(alice_out.outputs, sim.outputs);
    assert_eq!(bob_out.outputs, sim.outputs);
}
