//! A misbehaving peer must surface as a clean [`ProtocolError`], never a
//! panic: the evaluator is driven against hand-crafted bad frames.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::{Circuit, CircuitBuilder, Role};
use arm2gc_comm::{duplex, Channel};
use arm2gc_garble::{run_evaluator, ProtocolError};
use arm2gc_ot::InsecureOt;
use arm2gc_proto::{Message, SessionRole, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};

/// A circuit with no Bob inputs, so the evaluator needs no OT and every
/// abuse below hits the label-distribution path.
fn alice_only_circuit() -> Circuit {
    let mut b = CircuitBuilder::new("alice_only");
    let a = b.inputs(Role::Alice, 8);
    let o: Vec<_> = a.windows(2).map(|w| b.and(w[0], w[1])).collect();
    b.outputs(&o);
    b.build()
}

/// Plays garbler for the handshake, then hands the channel to `abuse`.
fn against_fake_garbler(abuse: impl FnOnce(&mut dyn Channel) + Send) -> Result<(), ProtocolError> {
    against_fake_garbler_at_version(PROTOCOL_VERSION, abuse)
}

/// [`against_fake_garbler`] with the fake peer's hello advertising
/// `version`.
fn against_fake_garbler_at_version(
    version: u16,
    abuse: impl FnOnce(&mut dyn Channel) + Send,
) -> Result<(), ProtocolError> {
    let circuit = alice_only_circuit();
    let bob = PartyData::default();
    let (mut ca, mut cb) = duplex();
    std::thread::scope(|s| {
        s.spawn(move || {
            ca.send(
                &Message::Hello {
                    version,
                    role: SessionRole::Garbler,
                }
                .encode(),
            )
            .expect("hello");
            ca.recv().expect("peer hello");
            abuse(&mut ca);
        });
        run_evaluator(&circuit, &bob, 1, &mut cb, &mut InsecureOt).map(|_| ())
    })
}

fn assert_malformed(result: Result<(), ProtocolError>, what: &str) {
    match result {
        // Undecodable frames carry their tag (CorruptFrame); frames
        // that decode but are invalid here are session-level Malformed.
        Err(ProtocolError::Malformed(_) | ProtocolError::CorruptFrame { .. }) => {}
        other => panic!("{what}: expected Malformed/CorruptFrame, got {other:?}"),
    }
}

#[test]
fn garbage_frame_instead_of_labels() {
    assert_malformed(
        against_fake_garbler(|ch| {
            ch.send(&[0xde, 0xad, 0xbe, 0xef]).expect("garbage");
        }),
        "garbage frame",
    );
}

#[test]
fn tables_frame_where_labels_expected() {
    assert_malformed(
        against_fake_garbler(|ch| {
            ch.send(&Message::Tables(vec![0; 32]).encode())
                .expect("tables");
        }),
        "wrong frame type",
    );
}

#[test]
fn misaligned_direct_labels() {
    assert_malformed(
        against_fake_garbler(|ch| {
            // 17 bytes: not a whole number of labels.
            let mut raw = Message::DirectLabels(vec![]).encode();
            raw.extend_from_slice(&[0u8; 17]);
            ch.send(&raw).expect("misaligned");
        }),
        "misaligned labels",
    );
}

#[test]
fn truncated_label_vector() {
    // A valid frame carrying too few labels for the circuit.
    assert_malformed(
        against_fake_garbler(|ch| {
            ch.send(&Message::DirectLabels(vec![]).encode())
                .expect("empty labels");
        }),
        "too few labels",
    );
}

#[test]
fn incompatible_version_is_clean() {
    // Versions negotiate to the lowest common one, so a *newer* peer is
    // fine; only a peer below the supported minimum must be rejected.
    let circuit = alice_only_circuit();
    let bob = PartyData::default();
    let (mut ca, mut cb) = duplex();
    let res = std::thread::scope(|s| {
        s.spawn(move || {
            ca.send(
                &Message::Hello {
                    version: MIN_PROTOCOL_VERSION - 1,
                    role: SessionRole::Garbler,
                }
                .encode(),
            )
            .expect("hello");
            // Drain the peer hello so the evaluator's reply send succeeds.
            let _ = ca.recv();
        });
        run_evaluator(&circuit, &bob, 1, &mut cb, &mut InsecureOt).map(|_| ())
    });
    assert_malformed(res, "incompatible version");
}

#[test]
fn newer_peer_version_is_compatible() {
    // A peer advertising a future version must get past the handshake
    // (the failure then comes from the missing label frame, not the
    // hello): lowest-common negotiation instead of exact match.
    assert_malformed(
        against_fake_garbler_at_version(PROTOCOL_VERSION + 40, |ch| {
            ch.send(&Message::DirectLabels(vec![]).encode())
                .expect("empty labels");
        }),
        "too few labels from a newer peer",
    );
}
