//! Unoptimised garbled-table baselines for the ablation benchmarks:
//! the classic 4-row construction and GRR3 row reduction.
//!
//! The paper (§2.3) assumes half-gates (2 rows); these variants exist so
//! `bench/ablation_garbling` can measure the 4 → 3 → 2 ciphertext
//! progression on real circuits.

use arm2gc_circuit::Op;
use arm2gc_crypto::{Delta, GarbleHash, Label};

/// A classic point-and-permute garbled table (4 ciphertexts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table4(pub [Label; 4]);

/// A GRR3 garbled table (3 ciphertexts; the colour-(0,0) row is zero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table3(pub [Label; 3]);

/// Garbles `op` with the classic 4-row scheme. Returns the output
/// zero-label and the table, rows ordered by input colours.
pub fn garble4(
    hash: &GarbleHash,
    delta: Delta,
    op: Op,
    a0: Label,
    b0: Label,
    out0: Label,
    tweak: u64,
) -> Table4 {
    let d = delta.as_label();
    let mut rows = [Label::ZERO; 4];
    for va in [false, true] {
        for vb in [false, true] {
            let la = if va { a0 ^ d } else { a0 };
            let lb = if vb { b0 ^ d } else { b0 };
            let lc = if op.eval(va, vb) { out0 ^ d } else { out0 };
            let row = ((la.colour() as usize) << 1) | lb.colour() as usize;
            rows[row] = hash.hash2(la, lb, tweak) ^ lc;
        }
    }
    Table4(rows)
}

/// Evaluates a 4-row table.
pub fn eval4(hash: &GarbleHash, a: Label, b: Label, table: &Table4, tweak: u64) -> Label {
    let row = ((a.colour() as usize) << 1) | b.colour() as usize;
    hash.hash2(a, b, tweak) ^ table.0[row]
}

/// [`garble4`] over a batch of independent gates
/// `(op, a0, b0, out0, tweak)`: all `4n` row hashes go through the wide
/// AES pipeline in one [`GarbleHash::hash2_batch`] call. Byte-identical
/// to garbling each gate in turn.
pub fn garble4_batch(
    hash: &GarbleHash,
    delta: Delta,
    gates: &[(Op, Label, Label, Label, u64)],
) -> Vec<Table4> {
    let d = delta.as_label();
    let mut inputs = Vec::with_capacity(4 * gates.len());
    for &(_, a0, b0, _, tweak) in gates {
        for va in [false, true] {
            for vb in [false, true] {
                let la = if va { a0 ^ d } else { a0 };
                let lb = if vb { b0 ^ d } else { b0 };
                inputs.push((la, lb, tweak));
            }
        }
    }
    let hashes = hash.hash2_batch(&inputs);
    gates
        .iter()
        .zip(hashes.chunks_exact(4))
        .map(|(&(op, a0, b0, out0, _), h)| {
            let mut rows = [Label::ZERO; 4];
            for (i, (va, vb)) in [(false, false), (false, true), (true, false), (true, true)]
                .into_iter()
                .enumerate()
            {
                let la = if va { a0 ^ d } else { a0 };
                let lb = if vb { b0 ^ d } else { b0 };
                let lc = if op.eval(va, vb) { out0 ^ d } else { out0 };
                let row = ((la.colour() as usize) << 1) | lb.colour() as usize;
                rows[row] = h[i] ^ lc;
            }
            Table4(rows)
        })
        .collect()
}

/// [`eval4`] over a batch of independent gates: one hash per gate, all
/// through the wide AES pipeline. `inputs` and `tables` must be
/// parallel slices.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn eval4_batch(
    hash: &GarbleHash,
    inputs: &[(Label, Label, u64)],
    tables: &[Table4],
) -> Vec<Label> {
    assert_eq!(inputs.len(), tables.len(), "inputs/tables length mismatch");
    let hashes = hash.hash2_batch(inputs);
    inputs
        .iter()
        .zip(tables)
        .zip(hashes)
        .map(|((&(a, b, _), table), h)| {
            let row = ((a.colour() as usize) << 1) | b.colour() as usize;
            h ^ table.0[row]
        })
        .collect()
}

/// Garbles with GRR3: the output zero-label is *derived* so that the
/// colour-(0,0) row is all zero and need not be sent. Returns
/// `(out0, table)`.
pub fn garble3(
    hash: &GarbleHash,
    delta: Delta,
    op: Op,
    a0: Label,
    b0: Label,
    tweak: u64,
) -> (Label, Table3) {
    let d = delta.as_label();
    // Find the (va, vb) whose labels have colours (0,0).
    let va0 = a0.colour(); // colour of value-0 label of a
    let vb0 = b0.colour();
    // value v has colour colour(x0) ^ v; colours (0,0) ⇒ v = colour(x0).
    let (va, vb) = (va0, vb0);
    let la = if va { a0 ^ d } else { a0 };
    let lb = if vb { b0 ^ d } else { b0 };
    debug_assert!(!la.colour() && !lb.colour());
    // That row's ciphertext is forced to zero: H ⊕ lc = 0.
    let lc = hash.hash2(la, lb, tweak);
    let out0 = if op.eval(va, vb) { lc ^ d } else { lc };

    let full = garble4(hash, delta, op, a0, b0, out0, tweak);
    debug_assert_eq!(full.0[0], Label::ZERO);
    (out0, Table3([full.0[1], full.0[2], full.0[3]]))
}

/// Evaluates a GRR3 table.
pub fn eval3(hash: &GarbleHash, a: Label, b: Label, table: &Table3, tweak: u64) -> Label {
    let row = ((a.colour() as usize) << 1) | b.colour() as usize;
    let ct = if row == 0 {
        Label::ZERO
    } else {
        table.0[row - 1]
    };
    hash.hash2(a, b, tweak) ^ ct
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_crypto::Prg;

    #[test]
    fn four_row_all_ops() {
        let mut prg = Prg::from_seed([51; 16]);
        let delta = Delta::random(&mut prg);
        let h = GarbleHash::fixed();
        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            if op.is_linear() {
                continue;
            }
            let a0 = Label::random(&mut prg);
            let b0 = Label::random(&mut prg);
            let c0 = Label::random(&mut prg);
            let table = garble4(&h, delta, op, a0, b0, c0, 7);
            let d = delta.as_label();
            for va in [false, true] {
                for vb in [false, true] {
                    let la = if va { a0 ^ d } else { a0 };
                    let lb = if vb { b0 ^ d } else { b0 };
                    let want = if op.eval(va, vb) { c0 ^ d } else { c0 };
                    assert_eq!(eval4(&h, la, lb, &table, 7), want);
                }
            }
        }
    }

    /// Batch garble/eval of 4-row tables is byte-identical to the
    /// per-gate calls.
    #[test]
    fn four_row_batch_matches_scalar() {
        let mut prg = Prg::from_seed([53; 16]);
        let delta = Delta::random(&mut prg);
        let h = GarbleHash::fixed();
        let d = delta.as_label();
        let gates: Vec<(Op, Label, Label, Label, u64)> = (0..13)
            .map(|i| {
                (
                    if i % 2 == 0 { Op::AND } else { Op::OR },
                    Label::random(&mut prg),
                    Label::random(&mut prg),
                    Label::random(&mut prg),
                    100 + i,
                )
            })
            .collect();
        let batch = garble4_batch(&h, delta, &gates);
        let scalar: Vec<Table4> = gates
            .iter()
            .map(|&(op, a0, b0, c0, t)| garble4(&h, delta, op, a0, b0, c0, t))
            .collect();
        assert_eq!(batch, scalar);

        let inputs: Vec<(Label, Label, u64)> = gates
            .iter()
            .enumerate()
            .map(|(i, &(_, a0, b0, _, t))| {
                (
                    if i % 2 == 0 { a0 } else { a0 ^ d },
                    if i % 3 == 0 { b0 } else { b0 ^ d },
                    t,
                )
            })
            .collect();
        let got = eval4_batch(&h, &inputs, &batch);
        let want: Vec<Label> = inputs
            .iter()
            .zip(&batch)
            .map(|(&(a, b, t), table)| eval4(&h, a, b, table, t))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn grr3_all_ops() {
        let mut prg = Prg::from_seed([52; 16]);
        let delta = Delta::random(&mut prg);
        let h = GarbleHash::fixed();
        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            if op.is_linear() {
                continue;
            }
            let a0 = Label::random(&mut prg);
            let b0 = Label::random(&mut prg);
            let (c0, table) = garble3(&h, delta, op, a0, b0, 9);
            let d = delta.as_label();
            for va in [false, true] {
                for vb in [false, true] {
                    let la = if va { a0 ^ d } else { a0 };
                    let lb = if vb { b0 ^ d } else { b0 };
                    let want = if op.eval(va, vb) { c0 ^ d } else { c0 };
                    assert_eq!(eval3(&h, la, lb, &table, 9), want);
                }
            }
        }
    }
}
