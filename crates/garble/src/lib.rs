//! Classic sequential garbled-circuit engine (the paper's "conventional
//! GC" baseline, §2.3).
//!
//! Implements Yao's protocol with all three standard optimisations the
//! paper assumes — free-XOR, row reduction and half-gates — over the
//! sequential-circuit model of TinyGarble: every gate is garbled on every
//! clock cycle and flip-flop labels are copied across cycles. No gate is
//! ever skipped; that is what `arm2gc_core`'s SkipGate adds on top.
//!
//! * [`halfgate`] — the two-ciphertext half-gate garbling primitive for
//!   any nonlinear 2-input gate, with batch entry points that hash many
//!   independent gates through the wide AES core per call,
//! * [`batch`] — the wavefront schedulers both engines use to discover
//!   those independent gate groups on the fly,
//! * [`rows4`] — the unoptimised 4-row and GRR3 garbling baselines used
//!   by the ablation benchmarks,
//! * [`engine`] — the two-party protocol: [`run_garbler`] /
//!   [`run_evaluator`] over a channel + OT.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod halfgate;
pub mod rows4;

pub use arm2gc_circuit::{LayerSchedule, ScheduleMode};
pub use arm2gc_proto::{ShardConfig, StreamConfig};
pub use batch::{
    EvalInstanced, EvalLayered, EvalWavefront, GarbleInstanced, GarbleLayered, GarbleWavefront,
    WavefrontStats,
};
pub use engine::{
    run_evaluator, run_evaluator_scheduled, run_evaluator_sharded, run_garbler,
    run_garbler_scheduled, run_garbler_sharded, run_garbler_with, GarbleOutcome, GarbleStats,
    ProtocolError,
};
pub use halfgate::{EvalJob, GarbleJob, GarbledTable, HalfGateEvaluator, HalfGateGarbler};

use arm2gc_circuit::Circuit;

/// The paper's "w/o SkipGate" cost of a sequential run: every nonlinear
/// gate is garbled on every cycle (Tables 1, 4 and 5 baseline column).
pub fn static_non_xor_cost(circuit: &Circuit, cycles: usize) -> u128 {
    circuit.non_xor_count() as u128 * cycles as u128
}
