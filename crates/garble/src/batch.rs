//! Wavefront batching for the engine hot loops.
//!
//! Half-gate labels are hash-derived, so the AES work of a cycle is
//! *chained* wherever one garbled gate feeds another. These schedulers
//! recover the parallelism that is actually there: gates are visited in
//! netlist order, label computations whose inputs are still pending are
//! deferred, and every maximal run of nonlinear gates with ready inputs
//! — one *wavefront* — is hashed through the wide AES core in a single
//! batch ([`HalfGateGarbler::garble_batch`] /
//! [`HalfGateEvaluator::eval_batch`]).
//!
//! Deferral only reorders *when* values are computed, never *what* is
//! computed: every gate sees exactly the labels and tweak it would see
//! in a strictly sequential walk, and tables are emitted/consumed in
//! gate order. The protocol transcript is byte-identical either way —
//! the pinned wire/stats tests enforce this.
//!
//! Both engines (the classic baseline in [`crate::engine`] and the
//! SkipGate engine in `arm2gc-core`) drive their cycle loops through
//! these types.

use arm2gc_circuit::Op;
use arm2gc_crypto::Label;

use crate::halfgate::{
    BatchScratch, EvalJob, GarbleJob, GarbledTable, HalfGateEvaluator, HalfGateGarbler,
};

/// A deferred label computation, replayed at flush time in gate order.
#[derive(Clone, Copy, Debug)]
enum Pending {
    /// `out = linear(op, a, b)` — the party's linear-gate rule.
    Linear { op: Op, a: u32, b: u32, out: u32 },
    /// `out = labels[src] (⊕ Δ if flip)` — SkipGate Pass/Alias.
    Copy { src: u32, out: u32, flip: bool },
    /// `out = labels[a] ⊕ labels[b] (⊕ Δ if flip)` — SkipGate free XOR.
    Xor {
        a: u32,
        b: u32,
        out: u32,
        flip: bool,
    },
    /// `out = <next batched gate result>`.
    Gate { out: u32 },
}

/// Dirty-wire bookkeeping and the pending-op queue shared by both
/// party-side schedulers.
#[derive(Clone, Debug)]
struct Frontier {
    /// Wire → "its label is owed by the pending queue".
    dirty: Vec<bool>,
    /// Wires to clean at flush (cheaper than scanning `dirty`).
    touched: Vec<u32>,
    pending: Vec<Pending>,
    /// Running counters for benches/tests.
    batches: u64,
    batched_gates: u64,
    largest_batch: usize,
}

impl Frontier {
    fn new(wire_count: usize) -> Self {
        Self {
            dirty: vec![false; wire_count],
            touched: Vec::new(),
            pending: Vec::new(),
            batches: 0,
            batched_gates: 0,
            largest_batch: 0,
        }
    }

    fn is_dirty2(&self, a: usize, b: usize) -> bool {
        self.dirty[a] || self.dirty[b]
    }

    fn mark(&mut self, out: usize) {
        self.dirty[out] = true;
        self.touched.push(out as u32);
    }

    fn settle(&mut self, jobs: usize) {
        for &w in &self.touched {
            self.dirty[w as usize] = false;
        }
        self.touched.clear();
        self.pending.clear();
        self.batches += 1;
        self.batched_gates += jobs as u64;
        self.largest_batch = self.largest_batch.max(jobs);
    }
}

/// Statistics about how well a run's gates batched (benches, tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WavefrontStats {
    /// Flushes that did work (= wavefronts formed; a flush with
    /// nothing pending is a no-op and is not counted).
    pub batches: u64,
    /// Nonlinear gates that went through batch hashing.
    pub batched_gates: u64,
    /// Largest single wavefront.
    pub largest_batch: usize,
}

/// Garbler-side wavefront scheduler.
///
/// Call [`GarbleWavefront::linear`]/[`copy`](GarbleWavefront::copy)/
/// [`xor`](GarbleWavefront::xor)/[`garble`](GarbleWavefront::garble)
/// per gate in netlist order, and [`GarbleWavefront::flush`] at the end
/// of every cycle (before reading any output label). `emit` receives
/// each gate's table in gate order, exactly as the sequential loop
/// would have pushed them.
#[derive(Clone, Debug)]
pub struct GarbleWavefront {
    frontier: Frontier,
    jobs: Vec<GarbleJob>,
    results: Vec<(Label, GarbledTable)>,
    scratch: BatchScratch,
}

impl GarbleWavefront {
    /// A scheduler for a circuit with `wire_count` wires.
    pub fn new(wire_count: usize) -> Self {
        Self {
            frontier: Frontier::new(wire_count),
            jobs: Vec::new(),
            results: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.frontier.batches,
            batched_gates: self.frontier.batched_gates,
            largest_batch: self.frontier.largest_batch,
        }
    }

    /// Linear gate `out = linear(op, a, b)`.
    pub fn linear(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Linear {
                op,
                a: a as u32,
                b: b as u32,
                out: out as u32,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = g.linear_zero(op, labels[a], labels[b]);
        }
    }

    /// Label copy `out = labels[src] (⊕ Δ if flip)`.
    pub fn copy(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        src: usize,
        out: usize,
        flip: bool,
    ) {
        if self.frontier.dirty[src] {
            self.frontier.pending.push(Pending::Copy {
                src: src as u32,
                out: out as u32,
                flip,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[src] ^ self.flip_mask(g, flip);
        }
    }

    /// Free XOR `out = labels[a] ⊕ labels[b] (⊕ Δ if flip)`.
    pub fn xor(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        a: usize,
        b: usize,
        out: usize,
        flip: bool,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Xor {
                a: a as u32,
                b: b as u32,
                out: out as u32,
                flip,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[a] ^ labels[b] ^ self.flip_mask(g, flip);
        }
    }

    /// Nonlinear gate: joins the current wavefront, or — when an input
    /// is still owed by it — flushes first and starts the next one.
    ///
    /// # Errors
    /// Propagates `emit` failures from a triggered flush.
    #[allow(clippy::too_many_arguments)]
    pub fn garble<E>(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
        tweak: u64,
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.frontier.is_dirty2(a, b) {
            self.flush(g, labels, emit)?;
        }
        self.jobs.push(GarbleJob {
            op,
            a0: labels[a],
            b0: labels[b],
            tweak,
        });
        self.frontier
            .pending
            .push(Pending::Gate { out: out as u32 });
        self.frontier.mark(out);
        Ok(())
    }

    /// Hashes the queued wavefront in one batch and replays all
    /// deferred label computations in gate order, emitting tables as it
    /// goes. No-op when nothing is pending.
    ///
    /// # Errors
    /// Propagates `emit` failures.
    pub fn flush<E>(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.frontier.pending.is_empty() {
            return Ok(());
        }
        g.garble_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        let mut next = 0usize;
        for p in &self.frontier.pending {
            match *p {
                Pending::Linear { op, a, b, out } => {
                    labels[out as usize] =
                        g.linear_zero(op, labels[a as usize], labels[b as usize]);
                }
                Pending::Copy { src, out, flip } => {
                    labels[out as usize] = labels[src as usize] ^ self.flip_mask(g, flip);
                }
                Pending::Xor { a, b, out, flip } => {
                    labels[out as usize] =
                        labels[a as usize] ^ labels[b as usize] ^ self.flip_mask(g, flip);
                }
                Pending::Gate { out } => {
                    let (c0, table) = self.results[next];
                    next += 1;
                    labels[out as usize] = c0;
                    emit(&table)?;
                }
            }
        }
        let jobs = self.jobs.len();
        self.jobs.clear();
        self.frontier.settle(jobs);
        Ok(())
    }

    fn flip_mask(&self, g: &HalfGateGarbler, flip: bool) -> Label {
        if flip {
            g.delta().as_label()
        } else {
            Label::ZERO
        }
    }
}

/// Evaluator-side wavefront scheduler; the mirror of
/// [`GarbleWavefront`]. Tables are handed in at enqueue time (pulled
/// from the stream in gate order) and hashed per wavefront at flush.
/// Unlike the garbler's methods there are no `flip` parameters — the
/// evaluator works on active labels, where Pass/Alias/XOR carry no Δ
/// correction.
#[derive(Clone, Debug)]
pub struct EvalWavefront {
    frontier: Frontier,
    jobs: Vec<EvalJob>,
    results: Vec<Label>,
    scratch: BatchScratch,
}

impl EvalWavefront {
    /// A scheduler for a circuit with `wire_count` wires.
    pub fn new(wire_count: usize) -> Self {
        Self {
            frontier: Frontier::new(wire_count),
            jobs: Vec::new(),
            results: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.frontier.batches,
            batched_gates: self.frontier.batched_gates,
            largest_batch: self.frontier.largest_batch,
        }
    }

    /// Linear gate `out = linear(op, a, b)`.
    pub fn linear(
        &mut self,
        e: &HalfGateEvaluator,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Linear {
                op,
                a: a as u32,
                b: b as u32,
                out: out as u32,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = e.linear_active(op, labels[a], labels[b]);
        }
    }

    /// Label copy `out = labels[src]`.
    pub fn copy(&mut self, labels: &mut [Label], src: usize, out: usize) {
        if self.frontier.dirty[src] {
            self.frontier.pending.push(Pending::Copy {
                src: src as u32,
                out: out as u32,
                flip: false,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[src];
        }
    }

    /// Free XOR `out = labels[a] ⊕ labels[b]`.
    pub fn xor(&mut self, labels: &mut [Label], a: usize, b: usize, out: usize) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Xor {
                a: a as u32,
                b: b as u32,
                out: out as u32,
                flip: false,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[a] ^ labels[b];
        }
    }

    /// Nonlinear gate with its table (already pulled from the stream,
    /// in gate order): joins the current wavefront, or flushes first
    /// when an input is still owed by it.
    #[allow(clippy::too_many_arguments)]
    pub fn eval(
        &mut self,
        e: &HalfGateEvaluator,
        labels: &mut [Label],
        a: usize,
        b: usize,
        out: usize,
        table: GarbledTable,
        tweak: u64,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.flush(e, labels);
        }
        self.jobs.push(EvalJob {
            a: labels[a],
            b: labels[b],
            table,
            tweak,
        });
        self.frontier
            .pending
            .push(Pending::Gate { out: out as u32 });
        self.frontier.mark(out);
    }

    /// Hashes the queued wavefront in one batch and replays all
    /// deferred label computations in gate order. No-op when nothing is
    /// pending.
    pub fn flush(&mut self, e: &HalfGateEvaluator, labels: &mut [Label]) {
        if self.frontier.pending.is_empty() {
            return;
        }
        e.eval_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        let mut next = 0usize;
        for p in &self.frontier.pending {
            match *p {
                Pending::Linear { op, a, b, out } => {
                    labels[out as usize] =
                        e.linear_active(op, labels[a as usize], labels[b as usize]);
                }
                Pending::Copy { src, out, .. } => {
                    labels[out as usize] = labels[src as usize];
                }
                Pending::Xor { a, b, out, .. } => {
                    labels[out as usize] = labels[a as usize] ^ labels[b as usize];
                }
                Pending::Gate { out } => {
                    labels[out as usize] = self.results[next];
                    next += 1;
                }
            }
        }
        let jobs = self.jobs.len();
        self.jobs.clear();
        self.frontier.settle(jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_crypto::{Delta, Prg};
    use std::convert::Infallible;

    /// A hand-built chained/parallel mix: four independent ANDs (one
    /// wavefront), a XOR over two of their outputs (deferred), then an
    /// AND fed by that XOR (forces a flush + second wavefront).
    #[test]
    fn wavefront_matches_sequential_walk() {
        let mut prg = Prg::from_seed([77; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();

        // Wires 0..8 inputs, 8..12 AND outs, 12 xor out, 13 final out.
        let mut labels = vec![Label::ZERO; 14];
        for l in labels.iter_mut().take(8) {
            *l = Label::random(&mut prg);
        }
        let seq_labels = {
            let mut seq = labels.clone();
            let mut tweak = 0u64;
            let mut tables = Vec::new();
            for i in 0..4 {
                let (c0, t) = g.garble(Op::AND, seq[2 * i], seq[2 * i + 1], tweak);
                tweak += 1;
                seq[8 + i] = c0;
                tables.push(t);
            }
            seq[12] = g.linear_zero(Op::XOR, seq[8], seq[9]);
            let (c0, t) = g.garble(Op::AND, seq[12], seq[10], tweak);
            seq[13] = c0;
            tables.push(t);
            (seq, tables)
        };

        let mut wf = GarbleWavefront::new(14);
        let mut emitted = Vec::new();
        let mut emit = |t: &GarbledTable| -> Result<(), Infallible> {
            emitted.push(*t);
            Ok(())
        };
        let mut tweak = 0u64;
        for i in 0..4 {
            wf.garble(
                &g,
                &mut labels,
                Op::AND,
                2 * i,
                2 * i + 1,
                8 + i,
                tweak,
                &mut emit,
            )
            .unwrap();
            tweak += 1;
        }
        wf.linear(&g, &mut labels, Op::XOR, 8, 9, 12);
        wf.garble(&g, &mut labels, Op::AND, 12, 10, 13, tweak, &mut emit)
            .unwrap();
        wf.flush(&g, &mut labels, &mut emit).unwrap();

        assert_eq!(labels, seq_labels.0);
        assert_eq!(emitted, seq_labels.1);
        let stats = wf.stats();
        assert_eq!(stats.batched_gates, 5);
        assert_eq!(stats.largest_batch, 4, "first wavefront holds 4 ANDs");

        // Evaluator mirror on the zero inputs.
        let mut active = seq_labels.0[..8].to_vec();
        active.resize(14, Label::ZERO);
        let mut ewf = EvalWavefront::new(14);
        let mut tweak = 0u64;
        for (i, &table) in emitted.iter().take(4).enumerate() {
            ewf.eval(&e, &mut active, 2 * i, 2 * i + 1, 8 + i, table, tweak);
            tweak += 1;
        }
        ewf.linear(&e, &mut active, Op::XOR, 8, 9, 12);
        ewf.eval(&e, &mut active, 12, 10, 13, emitted[4], tweak);
        ewf.flush(&e, &mut active);
        // Zero-label inputs evaluate to the zero labels everywhere.
        assert_eq!(active, seq_labels.0);
    }
}
