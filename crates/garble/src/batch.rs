//! Wavefront and layer-scheduled batching for the engine hot loops.
//!
//! Half-gate labels are hash-derived, so the AES work of a cycle is
//! *chained* wherever one garbled gate feeds another. These schedulers
//! recover the parallelism that is actually there: gates are visited in
//! netlist order, label computations whose inputs are still pending are
//! deferred, and every maximal run of nonlinear gates with ready inputs
//! — one *wavefront* — is hashed through the wide AES core in a single
//! batch ([`HalfGateGarbler::garble_batch`] /
//! [`HalfGateEvaluator::eval_batch`]).
//!
//! Deferral only reorders *when* values are computed, never *what* is
//! computed: every gate sees exactly the labels and tweak it would see
//! in a strictly sequential walk, and tables are emitted/consumed in
//! gate order. The protocol transcript is byte-identical either way —
//! the pinned wire/stats tests enforce this.
//!
//! Both engines (the classic baseline in [`crate::engine`] and the
//! SkipGate engine in `arm2gc-core`) drive their cycle loops through
//! these types.
//!
//! The wavefront types discover batches *within the netlist-order
//! walk*; the [`GarbleLayered`]/[`EvalLayered`] drivers instead execute
//! a precomputed [`arm2gc_circuit::LayerSchedule`] level by level —
//! every level's nonlinear gates hash in one batch regardless of how
//! the netlist interleaves dependency chains — while still emitting
//! tables in exact netlist gate order via per-gate emission slots.

use arm2gc_circuit::Op;
use arm2gc_crypto::Label;

use crate::halfgate::{
    BatchScratch, EvalJob, GarbleJob, GarbledTable, HalfGateEvaluator, HalfGateGarbler,
};

/// A deferred label computation, replayed at flush time in gate order.
#[derive(Clone, Copy, Debug)]
enum Pending {
    /// `out = linear(op, a, b)` — the party's linear-gate rule.
    Linear { op: Op, a: u32, b: u32, out: u32 },
    /// `out = labels[src] (⊕ Δ if flip)` — SkipGate Pass/Alias.
    Copy { src: u32, out: u32, flip: bool },
    /// `out = labels[a] ⊕ labels[b] (⊕ Δ if flip)` — SkipGate free XOR.
    Xor {
        a: u32,
        b: u32,
        out: u32,
        flip: bool,
    },
    /// `out = <next batched gate result>`.
    Gate { out: u32 },
}

/// Dirty-wire bookkeeping and the pending-op queue shared by both
/// party-side schedulers.
#[derive(Clone, Debug)]
struct Frontier {
    /// Wire → "its label is owed by the pending queue".
    dirty: Vec<bool>,
    /// Wires to clean at flush (cheaper than scanning `dirty`).
    touched: Vec<u32>,
    pending: Vec<Pending>,
    /// Running counters for benches/tests.
    batches: u64,
    batched_gates: u64,
    largest_batch: usize,
}

impl Frontier {
    fn new(wire_count: usize) -> Self {
        Self {
            dirty: vec![false; wire_count],
            touched: Vec::new(),
            pending: Vec::new(),
            batches: 0,
            batched_gates: 0,
            largest_batch: 0,
        }
    }

    fn is_dirty2(&self, a: usize, b: usize) -> bool {
        self.dirty[a] || self.dirty[b]
    }

    fn mark(&mut self, out: usize) {
        self.dirty[out] = true;
        self.touched.push(out as u32);
    }

    fn settle(&mut self, jobs: usize) {
        for &w in &self.touched {
            self.dirty[w as usize] = false;
        }
        self.touched.clear();
        self.pending.clear();
        self.batches += 1;
        self.batched_gates += jobs as u64;
        self.largest_batch = self.largest_batch.max(jobs);
    }
}

/// Statistics about how well a run's gates batched (benches, tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WavefrontStats {
    /// Flushes that did work (= wavefronts formed, or schedule levels
    /// that held at least one nonlinear gate; an empty flush/level is
    /// not counted).
    pub batches: u64,
    /// Nonlinear gates that went through batch hashing.
    pub batched_gates: u64,
    /// Largest single batch (wavefront or level).
    pub largest_batch: usize,
    /// Topological levels of the schedule driving the run — 0 for
    /// netlist-order wavefront runs, which have no level structure.
    pub levels: u64,
    /// Cycles a layer-scheduled run executed in netlist order instead,
    /// because the SkipGate decision pass aliased a wire across levels
    /// in a way the static schedule could not honour. Always 0 since
    /// per-cycle re-leveling replaced the fallback; kept as a
    /// regression guard (the bench gate fails on any nonzero value).
    pub fallback_cycles: u64,
    /// Cycles a layer-scheduled run patched with a per-cycle re-leveling
    /// because an alias edge crossed static levels. Always 0 for the
    /// classic engine and for netlist-mode runs.
    pub releveled_cycles: u64,
    /// Total gates pushed off their static level across all re-leveled
    /// cycles.
    pub patched_gates: u64,
    /// Circuit instances batched per cycle by a cross-instance run —
    /// 0 for single-run drivers, which have no lane structure.
    pub instances: u64,
}

impl WavefrontStats {
    /// Mean nonlinear gates per formed batch (0.0 when nothing
    /// batched) — the per-level occupancy of a layered run.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_gates as f64 / self.batches as f64
        }
    }

    /// The amortization divisor: a cross-instance run spreads its work
    /// over `instances` lanes, a single run over 1.
    fn lanes(&self) -> u64 {
        self.instances.max(1)
    }

    /// Nonlinear gates batched per instance — equals `batched_gates`
    /// for single runs, `batched_gates / N` for an N-lane run (each
    /// lane contributes the same gate count as a sequential run).
    pub fn batched_gates_per_instance(&self) -> f64 {
        self.batched_gates as f64 / self.lanes() as f64
    }

    /// [`WavefrontStats::mean_batch`] amortized per instance: the batch
    /// width one instance would have needed on its own to match this
    /// run's AES occupancy. 0.0 (never NaN) when nothing batched.
    pub fn mean_batch_per_instance(&self) -> f64 {
        self.mean_batch() / self.lanes() as f64
    }

    /// Field-wise accumulation, for runs that report through more than
    /// one driver (e.g. the SkipGate engine keeps both a wavefront and
    /// a layered driver and merges their counters at the end).
    pub fn absorb(&mut self, other: WavefrontStats) {
        self.batches += other.batches;
        self.batched_gates += other.batched_gates;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.levels = self.levels.max(other.levels);
        self.fallback_cycles += other.fallback_cycles;
        self.releveled_cycles += other.releveled_cycles;
        self.patched_gates += other.patched_gates;
        self.instances = self.instances.max(other.instances);
    }
}

/// Garbler-side wavefront scheduler.
///
/// Call [`GarbleWavefront::linear`]/[`copy`](GarbleWavefront::copy)/
/// [`xor`](GarbleWavefront::xor)/[`garble`](GarbleWavefront::garble)
/// per gate in netlist order, and [`GarbleWavefront::flush`] at the end
/// of every cycle (before reading any output label). `emit` receives
/// each gate's table in gate order, exactly as the sequential loop
/// would have pushed them.
#[derive(Clone, Debug)]
pub struct GarbleWavefront {
    frontier: Frontier,
    jobs: Vec<GarbleJob>,
    results: Vec<(Label, GarbledTable)>,
    scratch: BatchScratch,
}

impl GarbleWavefront {
    /// A scheduler for a circuit with `wire_count` wires.
    pub fn new(wire_count: usize) -> Self {
        Self {
            frontier: Frontier::new(wire_count),
            jobs: Vec::new(),
            results: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.frontier.batches,
            batched_gates: self.frontier.batched_gates,
            largest_batch: self.frontier.largest_batch,
            ..WavefrontStats::default()
        }
    }

    /// Linear gate `out = linear(op, a, b)`.
    pub fn linear(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Linear {
                op,
                a: a as u32,
                b: b as u32,
                out: out as u32,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = g.linear_zero(op, labels[a], labels[b]);
        }
    }

    /// Label copy `out = labels[src] (⊕ Δ if flip)`.
    pub fn copy(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        src: usize,
        out: usize,
        flip: bool,
    ) {
        if self.frontier.dirty[src] {
            self.frontier.pending.push(Pending::Copy {
                src: src as u32,
                out: out as u32,
                flip,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[src] ^ self.flip_mask(g, flip);
        }
    }

    /// Free XOR `out = labels[a] ⊕ labels[b] (⊕ Δ if flip)`.
    pub fn xor(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        a: usize,
        b: usize,
        out: usize,
        flip: bool,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Xor {
                a: a as u32,
                b: b as u32,
                out: out as u32,
                flip,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[a] ^ labels[b] ^ self.flip_mask(g, flip);
        }
    }

    /// Nonlinear gate: joins the current wavefront, or — when an input
    /// is still owed by it — flushes first and starts the next one.
    ///
    /// # Errors
    /// Propagates `emit` failures from a triggered flush.
    #[allow(clippy::too_many_arguments)]
    pub fn garble<E>(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
        tweak: u64,
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.frontier.is_dirty2(a, b) {
            self.flush(g, labels, emit)?;
        }
        self.jobs.push(GarbleJob {
            op,
            a0: labels[a],
            b0: labels[b],
            tweak,
        });
        self.frontier
            .pending
            .push(Pending::Gate { out: out as u32 });
        self.frontier.mark(out);
        Ok(())
    }

    /// Hashes the queued wavefront in one batch and replays all
    /// deferred label computations in gate order, emitting tables as it
    /// goes. No-op when nothing is pending.
    ///
    /// # Errors
    /// Propagates `emit` failures.
    pub fn flush<E>(
        &mut self,
        g: &HalfGateGarbler,
        labels: &mut [Label],
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.frontier.pending.is_empty() {
            return Ok(());
        }
        g.garble_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        let mut next = 0usize;
        for p in &self.frontier.pending {
            match *p {
                Pending::Linear { op, a, b, out } => {
                    labels[out as usize] =
                        g.linear_zero(op, labels[a as usize], labels[b as usize]);
                }
                Pending::Copy { src, out, flip } => {
                    labels[out as usize] = labels[src as usize] ^ self.flip_mask(g, flip);
                }
                Pending::Xor { a, b, out, flip } => {
                    labels[out as usize] =
                        labels[a as usize] ^ labels[b as usize] ^ self.flip_mask(g, flip);
                }
                Pending::Gate { out } => {
                    let (c0, table) = self.results[next];
                    next += 1;
                    labels[out as usize] = c0;
                    emit(&table)?;
                }
            }
        }
        let jobs = self.jobs.len();
        self.jobs.clear();
        self.frontier.settle(jobs);
        Ok(())
    }

    fn flip_mask(&self, g: &HalfGateGarbler, flip: bool) -> Label {
        if flip {
            g.delta().as_label()
        } else {
            Label::ZERO
        }
    }
}

/// Evaluator-side wavefront scheduler; the mirror of
/// [`GarbleWavefront`]. Tables are handed in at enqueue time (pulled
/// from the stream in gate order) and hashed per wavefront at flush.
/// Unlike the garbler's methods there are no `flip` parameters — the
/// evaluator works on active labels, where Pass/Alias/XOR carry no Δ
/// correction.
#[derive(Clone, Debug)]
pub struct EvalWavefront {
    frontier: Frontier,
    jobs: Vec<EvalJob>,
    results: Vec<Label>,
    scratch: BatchScratch,
}

impl EvalWavefront {
    /// A scheduler for a circuit with `wire_count` wires.
    pub fn new(wire_count: usize) -> Self {
        Self {
            frontier: Frontier::new(wire_count),
            jobs: Vec::new(),
            results: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.frontier.batches,
            batched_gates: self.frontier.batched_gates,
            largest_batch: self.frontier.largest_batch,
            ..WavefrontStats::default()
        }
    }

    /// Linear gate `out = linear(op, a, b)`.
    pub fn linear(
        &mut self,
        e: &HalfGateEvaluator,
        labels: &mut [Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Linear {
                op,
                a: a as u32,
                b: b as u32,
                out: out as u32,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = e.linear_active(op, labels[a], labels[b]);
        }
    }

    /// Label copy `out = labels[src]`.
    pub fn copy(&mut self, labels: &mut [Label], src: usize, out: usize) {
        if self.frontier.dirty[src] {
            self.frontier.pending.push(Pending::Copy {
                src: src as u32,
                out: out as u32,
                flip: false,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[src];
        }
    }

    /// Free XOR `out = labels[a] ⊕ labels[b]`.
    pub fn xor(&mut self, labels: &mut [Label], a: usize, b: usize, out: usize) {
        if self.frontier.is_dirty2(a, b) {
            self.frontier.pending.push(Pending::Xor {
                a: a as u32,
                b: b as u32,
                out: out as u32,
                flip: false,
            });
            self.frontier.mark(out);
        } else {
            labels[out] = labels[a] ^ labels[b];
        }
    }

    /// Nonlinear gate with its table (already pulled from the stream,
    /// in gate order): joins the current wavefront, or flushes first
    /// when an input is still owed by it.
    #[allow(clippy::too_many_arguments)]
    pub fn eval(
        &mut self,
        e: &HalfGateEvaluator,
        labels: &mut [Label],
        a: usize,
        b: usize,
        out: usize,
        table: GarbledTable,
        tweak: u64,
    ) {
        if self.frontier.is_dirty2(a, b) {
            self.flush(e, labels);
        }
        self.jobs.push(EvalJob {
            a: labels[a],
            b: labels[b],
            table,
            tweak,
        });
        self.frontier
            .pending
            .push(Pending::Gate { out: out as u32 });
        self.frontier.mark(out);
    }

    /// Hashes the queued wavefront in one batch and replays all
    /// deferred label computations in gate order. No-op when nothing is
    /// pending.
    pub fn flush(&mut self, e: &HalfGateEvaluator, labels: &mut [Label]) {
        if self.frontier.pending.is_empty() {
            return;
        }
        e.eval_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        let mut next = 0usize;
        for p in &self.frontier.pending {
            match *p {
                Pending::Linear { op, a, b, out } => {
                    labels[out as usize] =
                        e.linear_active(op, labels[a as usize], labels[b as usize]);
                }
                Pending::Copy { src, out, .. } => {
                    labels[out as usize] = labels[src as usize];
                }
                Pending::Xor { a, b, out, .. } => {
                    labels[out as usize] = labels[a as usize] ^ labels[b as usize];
                }
                Pending::Gate { out } => {
                    labels[out as usize] = self.results[next];
                    next += 1;
                }
            }
        }
        let jobs = self.jobs.len();
        self.jobs.clear();
        self.frontier.settle(jobs);
    }
}

const ZERO_TABLE: GarbledTable = GarbledTable {
    tg: Label::ZERO,
    te: Label::ZERO,
};

/// Garbler-side layer-scheduled driver.
///
/// Unlike [`GarbleWavefront`], gates arrive pre-grouped: the engine
/// walks a precomputed `LayerSchedule` and, per level, computes linear
/// labels directly and enqueues nonlinear gates here with
/// [`GarbleLayered::garble`]. [`end_level`](GarbleLayered::end_level)
/// hashes the level in one batch (every input label is final by
/// construction — levels only depend on earlier levels), and
/// [`end_cycle`](GarbleLayered::end_cycle) emits the buffered tables in
/// ascending emission slot, i.e. exact netlist gate order, keeping the
/// wire transcript byte-identical to a sequential walk.
#[derive(Clone, Debug)]
pub struct GarbleLayered {
    jobs: Vec<GarbleJob>,
    /// `(output wire, emission slot)` per queued job.
    dests: Vec<(u32, u32)>,
    results: Vec<(Label, GarbledTable)>,
    /// Slot-indexed table buffer for the current cycle.
    tables: Vec<GarbledTable>,
    filled: usize,
    scratch: BatchScratch,
    levels: u64,
    batches: u64,
    batched_gates: u64,
    largest_batch: usize,
}

impl GarbleLayered {
    /// A driver for a schedule with `levels` topological levels.
    pub fn new(levels: usize) -> Self {
        Self {
            jobs: Vec::new(),
            dests: Vec::new(),
            results: Vec::new(),
            tables: Vec::new(),
            filled: 0,
            scratch: BatchScratch::default(),
            levels: levels as u64,
            batches: 0,
            batched_gates: 0,
            largest_batch: 0,
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.batches,
            batched_gates: self.batched_gates,
            largest_batch: self.largest_batch,
            levels: self.levels,
            ..WavefrontStats::default()
        }
    }

    /// Starts a cycle that will garble `expected_tables` gates.
    pub fn begin_cycle(&mut self, expected_tables: usize) {
        self.tables.clear();
        self.tables.resize(expected_tables, ZERO_TABLE);
        self.filled = 0;
    }

    /// Enqueues one nonlinear gate of the current level. `slot` is its
    /// emission position within the cycle (netlist order of garbled
    /// gates); input labels are read now — the level invariant
    /// guarantees they are final.
    #[allow(clippy::too_many_arguments)]
    pub fn garble(
        &mut self,
        labels: &[Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
        tweak: u64,
        slot: usize,
    ) {
        self.jobs.push(GarbleJob {
            op,
            a0: labels[a],
            b0: labels[b],
            tweak,
        });
        self.dests.push((out as u32, slot as u32));
    }

    /// Hashes the level's queued gates in one batch, writing output
    /// labels and parking each table in its emission slot. No-op on
    /// levels without nonlinear work.
    pub fn end_level(&mut self, g: &HalfGateGarbler, labels: &mut [Label]) {
        if self.jobs.is_empty() {
            return;
        }
        g.garble_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        for (&(out, slot), &(c0, table)) in self.dests.iter().zip(&self.results) {
            labels[out as usize] = c0;
            self.tables[slot as usize] = table;
        }
        self.batches += 1;
        self.batched_gates += self.jobs.len() as u64;
        self.largest_batch = self.largest_batch.max(self.jobs.len());
        self.filled += self.jobs.len();
        self.jobs.clear();
        self.dests.clear();
    }

    /// Emits the cycle's tables in ascending slot order — exactly the
    /// stream a netlist-order walk would have produced.
    ///
    /// # Panics
    /// Panics if the cycle garbled fewer gates than announced via
    /// [`GarbleLayered::begin_cycle`] (an engine-side scheduling bug).
    ///
    /// # Errors
    /// Propagates `emit` failures.
    pub fn end_cycle<E>(
        &mut self,
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        assert_eq!(
            self.filled,
            self.tables.len(),
            "layered cycle under-filled its emission slots"
        );
        for t in &self.tables {
            emit(t)?;
        }
        self.tables.clear();
        self.filled = 0;
        Ok(())
    }
}

/// Evaluator-side layer-scheduled driver; the mirror of
/// [`GarbleLayered`]. The engine pulls the cycle's tables from the
/// stream up front (in netlist order — the byte consumption is
/// unchanged) and hands each gate its table at enqueue time.
#[derive(Clone, Debug)]
pub struct EvalLayered {
    jobs: Vec<EvalJob>,
    outs: Vec<u32>,
    results: Vec<Label>,
    scratch: BatchScratch,
    levels: u64,
    batches: u64,
    batched_gates: u64,
    largest_batch: usize,
}

impl EvalLayered {
    /// A driver for a schedule with `levels` topological levels.
    pub fn new(levels: usize) -> Self {
        Self {
            jobs: Vec::new(),
            outs: Vec::new(),
            results: Vec::new(),
            scratch: BatchScratch::default(),
            levels: levels as u64,
            batches: 0,
            batched_gates: 0,
            largest_batch: 0,
        }
    }

    /// Batching statistics accumulated so far.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            batches: self.batches,
            batched_gates: self.batched_gates,
            largest_batch: self.largest_batch,
            levels: self.levels,
            ..WavefrontStats::default()
        }
    }

    /// Enqueues one garbled gate of the current level with its table.
    pub fn eval(
        &mut self,
        labels: &[Label],
        a: usize,
        b: usize,
        out: usize,
        table: GarbledTable,
        tweak: u64,
    ) {
        self.jobs.push(EvalJob {
            a: labels[a],
            b: labels[b],
            table,
            tweak,
        });
        self.outs.push(out as u32);
    }

    /// Hashes the level's queued gates in one batch and writes the
    /// output labels. No-op on levels without nonlinear work.
    pub fn end_level(&mut self, e: &HalfGateEvaluator, labels: &mut [Label]) {
        if self.jobs.is_empty() {
            return;
        }
        e.eval_batch_with(&self.jobs, &mut self.scratch, &mut self.results);
        for (&out, &l) in self.outs.iter().zip(&self.results) {
            labels[out as usize] = l;
        }
        self.batches += 1;
        self.batched_gates += self.jobs.len() as u64;
        self.largest_batch = self.largest_batch.max(self.jobs.len());
        self.jobs.clear();
        self.outs.clear();
    }
}

/// Garbler-side cross-instance layer-scheduled driver.
///
/// One session garbles N independent instances of the same circuit
/// (distinct inputs, shared schedule). Labels live in one
/// struct-of-arrays buffer, wire-major: wire `w`'s lanes occupy indices
/// `w*N .. w*N + N`, and the engine passes the flat lane indices here.
/// The engine enqueues every active lane of every nonlinear gate of a
/// level before calling [`GarbleInstanced::end_level`], so one batch
/// hash spans `level width × N` jobs — N times the single-instance
/// occupancy. Emission slots are merged across lanes (gate-major,
/// lane-minor within each gate), so
/// [`GarbleInstanced::end_cycle`] interleaves the lanes' tables
/// deterministically; at `N == 1` slots, stream and labels all reduce
/// to [`GarbleLayered`] exactly.
#[derive(Clone, Debug)]
pub struct GarbleInstanced {
    inner: GarbleLayered,
    instances: u64,
}

impl GarbleInstanced {
    /// A driver batching `instances` lanes over a schedule with
    /// `levels` topological levels.
    pub fn new(levels: usize, instances: usize) -> Self {
        Self {
            inner: GarbleLayered::new(levels),
            instances: instances as u64,
        }
    }

    /// Batching statistics accumulated so far, carrying the lane count.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            instances: self.instances,
            ..self.inner.stats()
        }
    }

    /// Starts a cycle that will garble `expected_tables` gates summed
    /// over every active lane.
    pub fn begin_cycle(&mut self, expected_tables: usize) {
        self.inner.begin_cycle(expected_tables);
    }

    /// Enqueues one lane of one nonlinear gate of the current level.
    /// `a`/`b`/`out` are flat struct-of-arrays indices (`wire*N +
    /// lane`); `slot` is the gate's merged emission position within the
    /// cycle; `tweak` is the lane's own running tweak.
    #[allow(clippy::too_many_arguments)]
    pub fn garble(
        &mut self,
        labels: &[Label],
        op: Op,
        a: usize,
        b: usize,
        out: usize,
        tweak: u64,
        slot: usize,
    ) {
        self.inner.garble(labels, op, a, b, out, tweak, slot);
    }

    /// Hashes every enqueued lane of the level's gates in one batch.
    pub fn end_level(&mut self, g: &HalfGateGarbler, labels: &mut [Label]) {
        self.inner.end_level(g, labels);
    }

    /// Emits the cycle's tables in ascending merged-slot order: netlist
    /// gate order, lanes interleaved instance-major within each gate.
    ///
    /// # Panics
    /// Panics if the cycle garbled fewer gates than announced via
    /// [`GarbleInstanced::begin_cycle`].
    ///
    /// # Errors
    /// Propagates `emit` failures.
    pub fn end_cycle<E>(
        &mut self,
        emit: &mut impl FnMut(&GarbledTable) -> Result<(), E>,
    ) -> Result<(), E> {
        self.inner.end_cycle(emit)
    }
}

/// Evaluator-side cross-instance layer-scheduled driver; the mirror of
/// [`GarbleInstanced`]. The engine pulls the cycle's merged table
/// stream up front, indexes it by merged slot, and hands each lane of
/// each gate its table at enqueue time.
#[derive(Clone, Debug)]
pub struct EvalInstanced {
    inner: EvalLayered,
    instances: u64,
}

impl EvalInstanced {
    /// A driver batching `instances` lanes over a schedule with
    /// `levels` topological levels.
    pub fn new(levels: usize, instances: usize) -> Self {
        Self {
            inner: EvalLayered::new(levels),
            instances: instances as u64,
        }
    }

    /// Batching statistics accumulated so far, carrying the lane count.
    pub fn stats(&self) -> WavefrontStats {
        WavefrontStats {
            instances: self.instances,
            ..self.inner.stats()
        }
    }

    /// Enqueues one lane of one garbled gate of the current level with
    /// its table. `a`/`b`/`out` are flat struct-of-arrays indices
    /// (`wire*N + lane`).
    pub fn eval(
        &mut self,
        labels: &[Label],
        a: usize,
        b: usize,
        out: usize,
        table: GarbledTable,
        tweak: u64,
    ) {
        self.inner.eval(labels, a, b, out, table, tweak);
    }

    /// Hashes every enqueued lane of the level's gates in one batch.
    pub fn end_level(&mut self, e: &HalfGateEvaluator, labels: &mut [Label]) {
        self.inner.end_level(e, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_crypto::{Delta, Prg};
    use std::convert::Infallible;

    /// A run with zero formed batches (e.g. an all-public circuit where
    /// SkipGate eliminates every nonlinear gate) must report a clean
    /// 0.0 occupancy, not NaN or a divide-by-zero garbage value.
    #[test]
    fn mean_batch_of_zero_batches_is_zero() {
        let stats = WavefrontStats::default();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.mean_batch(), 0.0);
        assert!(!stats.mean_batch().is_nan());

        // Fresh drivers that never saw a gate report the same.
        assert_eq!(GarbleWavefront::new(4).stats().mean_batch(), 0.0);
        assert_eq!(EvalWavefront::new(4).stats().mean_batch(), 0.0);
        assert_eq!(GarbleLayered::new(3).stats().mean_batch(), 0.0);
        assert_eq!(EvalLayered::new(3).stats().mean_batch(), 0.0);

        // Absorbing empty stats keeps the invariant.
        let mut merged = WavefrontStats::default();
        merged.absorb(GarbleLayered::new(3).stats());
        assert_eq!(merged.mean_batch(), 0.0);

        // Per-instance amortization guards the same way: a zero-batch
        // instanced run reports 0.0 everywhere, never NaN — with and
        // without a lane count.
        for instances in [0, 8] {
            let s = WavefrontStats {
                instances,
                ..WavefrontStats::default()
            };
            assert_eq!(s.mean_batch_per_instance(), 0.0);
            assert_eq!(s.batched_gates_per_instance(), 0.0);
            assert!(!s.mean_batch_per_instance().is_nan());
        }
        assert_eq!(GarbleInstanced::new(3, 8).stats().mean_batch(), 0.0);
        assert_eq!(EvalInstanced::new(3, 8).stats().instances, 8);
    }

    /// Per-instance amortized counters divide by the lane count (a lane
    /// count of 0 — single-run drivers — amortizes over 1), and
    /// `absorb` keeps the max lane count while summing gate counters.
    #[test]
    fn per_instance_amortization_and_absorb() {
        let single = WavefrontStats {
            batches: 10,
            batched_gates: 200,
            ..WavefrontStats::default()
        };
        assert_eq!(single.batched_gates_per_instance(), 200.0);
        assert_eq!(single.mean_batch_per_instance(), 20.0);

        let instanced = WavefrontStats {
            batches: 10,
            batched_gates: 800,
            instances: 4,
            ..WavefrontStats::default()
        };
        // Each of the 4 lanes contributed its sequential 200 gates.
        assert_eq!(instanced.batched_gates_per_instance(), 200.0);
        assert_eq!(instanced.mean_batch(), 80.0);
        assert_eq!(instanced.mean_batch_per_instance(), 20.0);

        let mut merged = WavefrontStats {
            instances: 4,
            ..WavefrontStats::default()
        };
        merged.absorb(instanced);
        merged.absorb(WavefrontStats {
            batches: 2,
            batched_gates: 8,
            ..WavefrontStats::default()
        });
        assert_eq!(merged.instances, 4, "absorb keeps the max lane count");
        assert_eq!(merged.batched_gates, 808);
        assert_eq!(merged.batches, 12);
    }

    /// One instanced cycle over 2 lanes with distinct input labels is
    /// byte-identical to two sequential layered runs: per-lane labels
    /// match, and the merged table stream is gate-major/lane-minor.
    #[test]
    fn instanced_lanes_match_sequential_layered_runs() {
        let mut prg = Prg::from_seed([79; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        const N: usize = 2;

        // Per-lane circuit: wires 0..2 inputs, 2 = AND(0,1), 3 = AND(2,0).
        let lane_inputs: Vec<[Label; 2]> =
            vec![[Label::random(&mut prg), Label::random(&mut prg)]; N]
                .into_iter()
                .enumerate()
                .map(|(i, mut l)| {
                    l[0] ^= Label::from_u128(i as u128);
                    l
                })
                .collect();

        // Sequential reference: each lane on its own layered driver.
        let mut seq_labels = Vec::new();
        let mut seq_tables: Vec<Vec<GarbledTable>> = Vec::new();
        for inputs in &lane_inputs {
            let mut labels = vec![Label::ZERO; 4];
            labels[..2].copy_from_slice(inputs);
            let mut ld = GarbleLayered::new(2);
            ld.begin_cycle(2);
            ld.garble(&labels, Op::AND, 0, 1, 2, 0, 0);
            ld.end_level(&g, &mut labels);
            ld.garble(&labels, Op::AND, 2, 0, 3, 1, 1);
            ld.end_level(&g, &mut labels);
            let mut tables = Vec::new();
            ld.end_cycle(&mut |t: &GarbledTable| -> Result<(), Infallible> {
                tables.push(*t);
                Ok(())
            })
            .unwrap();
            seq_labels.push(labels);
            seq_tables.push(tables);
        }

        // Instanced run: SoA labels (wire-major), merged slots
        // gate-major/lane-minor, per-lane tweaks.
        let mut soa = vec![Label::ZERO; 4 * N];
        for (lane, inputs) in lane_inputs.iter().enumerate() {
            soa[lane] = inputs[0];
            soa[N + lane] = inputs[1];
        }
        let idx = |w: usize, lane: usize| w * N + lane;
        let mut di = GarbleInstanced::new(2, N);
        di.begin_cycle(2 * N);
        for lane in 0..N {
            di.garble(
                &soa,
                Op::AND,
                idx(0, lane),
                idx(1, lane),
                idx(2, lane),
                0,
                lane,
            );
        }
        di.end_level(&g, &mut soa);
        for lane in 0..N {
            di.garble(
                &soa,
                Op::AND,
                idx(2, lane),
                idx(0, lane),
                idx(3, lane),
                1,
                N + lane,
            );
        }
        di.end_level(&g, &mut soa);
        let mut merged = Vec::new();
        di.end_cycle(&mut |t: &GarbledTable| -> Result<(), Infallible> {
            merged.push(*t);
            Ok(())
        })
        .unwrap();

        for lane in 0..N {
            for w in 0..4 {
                assert_eq!(
                    soa[idx(w, lane)],
                    seq_labels[lane][w],
                    "lane {lane} wire {w}"
                );
            }
            assert_eq!(merged[lane], seq_tables[lane][0]);
            assert_eq!(merged[N + lane], seq_tables[lane][1]);
        }
        let stats = di.stats();
        assert_eq!(stats.instances, N as u64);
        assert_eq!(stats.batched_gates, 2 * N as u64);
        assert_eq!(stats.largest_batch, N, "each level spans all lanes");
        assert_eq!(stats.batched_gates_per_instance(), 2.0);
    }

    /// A hand-built chained/parallel mix: four independent ANDs (one
    /// wavefront), a XOR over two of their outputs (deferred), then an
    /// AND fed by that XOR (forces a flush + second wavefront).
    #[test]
    fn wavefront_matches_sequential_walk() {
        let mut prg = Prg::from_seed([77; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();

        // Wires 0..8 inputs, 8..12 AND outs, 12 xor out, 13 final out.
        let mut labels = vec![Label::ZERO; 14];
        for l in labels.iter_mut().take(8) {
            *l = Label::random(&mut prg);
        }
        let seq_labels = {
            let mut seq = labels.clone();
            let mut tweak = 0u64;
            let mut tables = Vec::new();
            for i in 0..4 {
                let (c0, t) = g.garble(Op::AND, seq[2 * i], seq[2 * i + 1], tweak);
                tweak += 1;
                seq[8 + i] = c0;
                tables.push(t);
            }
            seq[12] = g.linear_zero(Op::XOR, seq[8], seq[9]);
            let (c0, t) = g.garble(Op::AND, seq[12], seq[10], tweak);
            seq[13] = c0;
            tables.push(t);
            (seq, tables)
        };

        let mut wf = GarbleWavefront::new(14);
        let mut emitted = Vec::new();
        let mut emit = |t: &GarbledTable| -> Result<(), Infallible> {
            emitted.push(*t);
            Ok(())
        };
        let mut tweak = 0u64;
        for i in 0..4 {
            wf.garble(
                &g,
                &mut labels,
                Op::AND,
                2 * i,
                2 * i + 1,
                8 + i,
                tweak,
                &mut emit,
            )
            .unwrap();
            tweak += 1;
        }
        wf.linear(&g, &mut labels, Op::XOR, 8, 9, 12);
        wf.garble(&g, &mut labels, Op::AND, 12, 10, 13, tweak, &mut emit)
            .unwrap();
        wf.flush(&g, &mut labels, &mut emit).unwrap();

        assert_eq!(labels, seq_labels.0);
        assert_eq!(emitted, seq_labels.1);
        let stats = wf.stats();
        assert_eq!(stats.batched_gates, 5);
        assert_eq!(stats.largest_batch, 4, "first wavefront holds 4 ANDs");

        // Evaluator mirror on the zero inputs.
        let mut active = seq_labels.0[..8].to_vec();
        active.resize(14, Label::ZERO);
        let mut ewf = EvalWavefront::new(14);
        let mut tweak = 0u64;
        for (i, &table) in emitted.iter().take(4).enumerate() {
            ewf.eval(&e, &mut active, 2 * i, 2 * i + 1, 8 + i, table, tweak);
            tweak += 1;
        }
        ewf.linear(&e, &mut active, Op::XOR, 8, 9, 12);
        ewf.eval(&e, &mut active, 12, 10, 13, emitted[4], tweak);
        ewf.flush(&e, &mut active);
        // Zero-label inputs evaluate to the zero labels everywhere.
        assert_eq!(active, seq_labels.0);
    }

    /// Two interleaved AND chains — netlist order A0, B0(A0), A1,
    /// B1(A1) — so level order (A0 A1 | B0 B1) differs from netlist
    /// order. The layered driver must still compute the sequential
    /// labels and emit tables in netlist order, via the emission slots.
    #[test]
    fn layered_reorders_computation_but_not_emission() {
        let mut prg = Prg::from_seed([78; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();

        // Wires 0..6 inputs; 6 = A0, 7 = B0, 8 = A1, 9 = B1.
        let mut labels = vec![Label::ZERO; 10];
        for l in labels.iter_mut().take(6) {
            *l = Label::random(&mut prg);
        }
        // Netlist-order reference walk (tweak = netlist position).
        let (seq_labels, seq_tables) = {
            let mut seq = labels.clone();
            let mut tables = Vec::new();
            let gates = [(0, 1, 6), (6, 2, 7), (3, 4, 8), (8, 5, 9)];
            for (i, &(a, b, out)) in gates.iter().enumerate() {
                let (c0, t) = g.garble(Op::AND, seq[a], seq[b], i as u64);
                seq[out] = c0;
                tables.push(t);
            }
            (seq, tables)
        };

        // Layered walk: level 0 = {A0 slot 0, A1 slot 2},
        // level 1 = {B0 slot 1, B1 slot 3}.
        let mut ld = GarbleLayered::new(2);
        ld.begin_cycle(4);
        ld.garble(&labels, Op::AND, 0, 1, 6, 0, 0);
        ld.garble(&labels, Op::AND, 3, 4, 8, 2, 2);
        ld.end_level(&g, &mut labels);
        ld.garble(&labels, Op::AND, 6, 2, 7, 1, 1);
        ld.garble(&labels, Op::AND, 8, 5, 9, 3, 3);
        ld.end_level(&g, &mut labels);
        let mut emitted = Vec::new();
        ld.end_cycle(&mut |t: &GarbledTable| -> Result<(), Infallible> {
            emitted.push(*t);
            Ok(())
        })
        .unwrap();

        assert_eq!(labels, seq_labels, "layered labels match sequential");
        assert_eq!(emitted, seq_tables, "tables emitted in netlist order");
        let stats = ld.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.batched_gates, 4);
        assert_eq!(stats.largest_batch, 2);
        assert_eq!(stats.levels, 2);
        assert!((stats.mean_batch() - 2.0).abs() < f64::EPSILON);

        // Evaluator mirror on the zero labels, same level order.
        let mut active = seq_labels[..6].to_vec();
        active.resize(10, Label::ZERO);
        let mut le = EvalLayered::new(2);
        le.eval(&active, 0, 1, 6, emitted[0], 0);
        le.eval(&active, 3, 4, 8, emitted[2], 2);
        le.end_level(&e, &mut active);
        le.eval(&active, 6, 2, 7, emitted[1], 1);
        le.eval(&active, 8, 5, 9, emitted[3], 3);
        le.end_level(&e, &mut active);
        assert_eq!(active, seq_labels);
        assert_eq!(le.stats().batched_gates, 4);
    }
}
