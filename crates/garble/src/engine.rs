//! The two-party sequential GC protocol (no SkipGate).
//!
//! Alice garbles every gate of every cycle and streams the tables; Bob
//! evaluates them. Input labels are delivered up front: direct transfer
//! for wires whose value Alice knows (her inputs, constants and the
//! public input `p` — which this baseline deliberately treats as secret
//! data, exactly like the paper's "conventional GC" columns), and OT for
//! Bob's inputs.
//!
//! All transport goes through the typed session layer in
//! [`arm2gc_proto`]: the garbler pushes tables into the session's
//! buffered sink (flushed in [`StreamConfig`] chunks, overlapping
//! Alice's garbling with Bob's evaluation) and the evaluator pulls them
//! on demand. The `_sharded` entry points split the table stream across
//! several sub-channels ([`ShardConfig`]): every cycle garbles the same
//! `non_xor_count` tables, so both parties derive the per-cycle shard
//! partition without coordination.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::{Circuit, DffInit, LayerSchedule, OutputMode, Role, ScheduleMode};
use arm2gc_comm::Channel;
use arm2gc_crypto::{Label, Prg};
use arm2gc_ot::{OtReceiver, OtSender};
use arm2gc_proto::{EvaluatorSession, GarblerSession, ShardConfig, StreamConfig};

use crate::batch::{EvalLayered, EvalWavefront, GarbleLayered, GarbleWavefront, WavefrontStats};
use crate::halfgate::{GarbledTable, HalfGateEvaluator, HalfGateGarbler};

/// Failures of the two-party protocol (the proto layer's error type).
pub use arm2gc_proto::ProtoError as ProtocolError;

/// Cost accounting for one protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GarbleStats {
    /// Garbled tables transferred (= garbled non-XOR gates) — the paper's
    /// headline metric.
    pub garbled_tables: u64,
    /// Bytes of garbled tables.
    pub table_bytes: u64,
    /// Number of OTs executed for Bob's input bits.
    pub ots: u64,
    /// Clock cycles executed.
    pub cycles_run: usize,
}

/// Result of one protocol run.
#[derive(Clone, Debug)]
pub struct GarbleOutcome {
    /// Output bits, one vector per scheduled read (see
    /// [`OutputMode`]).
    pub outputs: Vec<Vec<bool>>,
    /// Cost counters.
    pub stats: GarbleStats,
    /// How well the run's nonlinear gates batched through the wide AES
    /// core (wavefront or layer-scheduled, per [`ScheduleMode`]). Not a
    /// protocol cost — identical transcripts can batch differently.
    pub batching: WavefrontStats,
}

impl GarbleOutcome {
    /// The last (or only) output vector.
    ///
    /// # Panics
    /// Panics if the circuit has no outputs.
    pub fn final_output(&self) -> &[bool] {
        self.outputs.last().expect("no outputs")
    }
}

/// Runs the garbler (Alice) side of the classic sequential GC protocol
/// with the default streaming configuration.
///
/// `public` is the public input `p`; this engine garbles it like private
/// data (the whole point of the baseline). Outputs are revealed to both
/// parties.
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_garbler(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
) -> Result<GarbleOutcome, ProtocolError> {
    run_garbler_with(
        circuit,
        alice,
        public,
        cycles,
        ch,
        ot,
        prg,
        StreamConfig::default(),
    )
}

/// [`run_garbler`] with an explicit table-streaming configuration.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_garbler_with(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    stream: StreamConfig,
) -> Result<GarbleOutcome, ProtocolError> {
    run_garbler_sharded(
        circuit,
        alice,
        public,
        cycles,
        ch,
        Vec::new(),
        ot,
        prg,
        stream,
        ShardConfig::single(),
    )
}

/// [`run_garbler_with`] over a sharded table stream: each shard's slice
/// of every cycle's tables travels on its own channel from `shard_chs`,
/// framed and sent by a dedicated worker thread. With
/// [`ShardConfig::single`] (and no shard channels) this is exactly
/// [`run_garbler_with`].
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_garbler_sharded(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    stream: StreamConfig,
    shards: ShardConfig,
) -> Result<GarbleOutcome, ProtocolError> {
    run_garbler_scheduled(
        circuit,
        alice,
        public,
        cycles,
        ch,
        shard_chs,
        ot,
        prg,
        stream,
        shards,
        ScheduleMode::Netlist,
    )
}

/// [`run_garbler_sharded`] with an explicit execution schedule.
///
/// With [`ScheduleMode::Layered`] the circuit is levelled once
/// ([`LayerSchedule::of`]) and the same schedule drives every cycle:
/// each topological level's nonlinear gates hash through the wide AES
/// core in a single batch, and the cycle's tables are emitted in exact
/// netlist gate order afterwards — the wire transcript is
/// byte-identical to [`ScheduleMode::Netlist`].
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_garbler_scheduled(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    stream: StreamConfig,
    shards: ShardConfig,
    mode: ScheduleMode,
) -> Result<GarbleOutcome, ProtocolError> {
    let mut session = GarblerSession::establish_sharded(ch, shard_chs, ot, prg, stream, shards)?;
    let d = session.delta().as_label();
    let garbler = HalfGateGarbler::new(session.delta());
    let mut labels = vec![Label::ZERO; circuit.wire_count()];

    // --- Input label distribution -------------------------------------
    let mut direct: Vec<Label> = Vec::new();
    let mut ot_pairs: Vec<(Label, Label)> = Vec::new();

    for &(w, v) in circuit.consts() {
        let x0 = session.fresh_label();
        labels[w.index()] = x0;
        direct.push(if v { x0 ^ d } else { x0 });
    }
    for dff in circuit.dffs() {
        let x0 = session.fresh_label();
        labels[dff.q.index()] = x0;
        match dff.init {
            DffInit::Const(v) => direct.push(if v { x0 ^ d } else { x0 }),
            DffInit::Public(i) => {
                let v = public.init[i as usize];
                direct.push(if v { x0 ^ d } else { x0 });
            }
            DffInit::Alice(i) => {
                let v = alice.init[i as usize];
                direct.push(if v { x0 ^ d } else { x0 });
            }
            DffInit::Bob(_) => ot_pairs.push((x0, x0 ^ d)),
        }
    }
    // Fresh labels for every (cycle, input wire).
    let mut stream_labels: Vec<Vec<Label>> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let mut per_cycle = Vec::with_capacity(circuit.inputs().len());
        let mut idx = [0usize; 3];
        for input in circuit.inputs() {
            let x0 = session.fresh_label();
            per_cycle.push(x0);
            match input.role {
                Role::Alice => {
                    let v = alice.stream[cycle][idx[0]];
                    idx[0] += 1;
                    direct.push(if v { x0 ^ d } else { x0 });
                }
                Role::Public => {
                    let v = public.stream[cycle][idx[2]];
                    idx[2] += 1;
                    direct.push(if v { x0 ^ d } else { x0 });
                }
                Role::Bob => {
                    idx[1] += 1;
                    ot_pairs.push((x0, x0 ^ d));
                }
            }
        }
        stream_labels.push(per_cycle);
    }

    session.send_direct_labels(&direct)?;
    session.ot_send(&ot_pairs)?;

    // --- Cycle loop ----------------------------------------------------
    // Netlist mode walks gates in netlist order through the wavefront
    // batcher; layered mode executes the precomputed level schedule
    // (computed once here, reused every cycle), batching each level's
    // nonlinear gates in one hash call. Either way the emitted table
    // stream is byte-identical to a strictly sequential walk.
    let schedule = match mode {
        ScheduleMode::Netlist => None,
        ScheduleMode::Layered => Some(LayerSchedule::of(circuit)),
    };
    let mut wavefront = GarbleWavefront::new(circuit.wire_count());
    let mut layered = schedule.as_ref().map(|s| GarbleLayered::new(s.levels()));
    let non_xor = circuit.non_xor_count();
    let mut tweak = 0u64;
    let mut cycles_run = 0usize;
    let mut decode_bits: Vec<bool> = Vec::new();
    for (cycle, cycle_labels) in stream_labels.iter().enumerate() {
        session.begin_cycle(non_xor as usize);
        for (input, &x0) in circuit.inputs().iter().zip(cycle_labels) {
            labels[input.wire.index()] = x0;
        }
        if let (Some(sched), Some(drv)) = (&schedule, &mut layered) {
            drv.begin_cycle(non_xor as usize);
            for level in 0..sched.levels() {
                let (linear, nonlinear) = sched.level_split(level);
                for &gi in linear {
                    let gate = &circuit.gates()[gi as usize];
                    labels[gate.out.index()] = garbler.linear_zero(
                        gate.op,
                        labels[gate.a.index()],
                        labels[gate.b.index()],
                    );
                }
                for &gi in nonlinear {
                    let gate = &circuit.gates()[gi as usize];
                    let slot = sched
                        .nonlinear_ordinal(gi as usize)
                        .expect("nonlinear gate has an emission slot")
                        as usize;
                    drv.garble(
                        &labels,
                        gate.op,
                        gate.a.index(),
                        gate.b.index(),
                        gate.out.index(),
                        tweak + slot as u64,
                        slot,
                    );
                }
                drv.end_level(&garbler, &mut labels);
            }
            drv.end_cycle(&mut |t| session.push_table(&t.to_bytes()))?;
            tweak += non_xor;
        } else {
            for gate in circuit.gates() {
                let (a, b, out) = (gate.a.index(), gate.b.index(), gate.out.index());
                if gate.op.is_linear() {
                    wavefront.linear(&garbler, &mut labels, gate.op, a, b, out);
                } else {
                    wavefront.garble(
                        &garbler,
                        &mut labels,
                        gate.op,
                        a,
                        b,
                        out,
                        tweak,
                        &mut |t| session.push_table(&t.to_bytes()),
                    )?;
                    tweak += 1;
                }
            }
            wavefront.flush(&garbler, &mut labels, &mut |t| {
                session.push_table(&t.to_bytes())
            })?;
        }
        session.end_cycle()?;

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            decode_bits.extend(circuit.outputs().iter().map(|w| labels[w.index()].colour()));
        }
        let next: Vec<Label> = circuit.dffs().iter().map(|f| labels[f.d.index()]).collect();
        for (dff, l) in circuit.dffs().iter().zip(next) {
            labels[dff.q.index()] = l;
        }
        cycles_run = cycle + 1;
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        decode_bits.extend(circuit.outputs().iter().map(|w| labels[w.index()].colour()));
    }

    // --- Output revelation ---------------------------------------------
    let values = session.reveal_outputs(&decode_bits)?;
    let outputs = chunk_outputs(circuit, values);
    let s = session.stats();
    let batching = layered.map_or_else(|| wavefront.stats(), |drv| drv.stats());
    Ok(GarbleOutcome {
        outputs,
        stats: GarbleStats {
            garbled_tables: s.garbled_tables,
            table_bytes: s.table_bytes,
            ots: s.ots,
            cycles_run,
        },
        batching,
    })
}

/// Runs the evaluator (Bob) side of the classic sequential GC protocol.
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_evaluator(
    circuit: &Circuit,
    bob: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtReceiver,
) -> Result<GarbleOutcome, ProtocolError> {
    run_evaluator_sharded(
        circuit,
        bob,
        cycles,
        ch,
        Vec::new(),
        ot,
        ShardConfig::single(),
    )
}

/// [`run_evaluator`] over a sharded table stream; the mirror of
/// [`run_garbler_sharded`].
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_evaluator_sharded(
    circuit: &Circuit,
    bob: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    shards: ShardConfig,
) -> Result<GarbleOutcome, ProtocolError> {
    run_evaluator_scheduled(
        circuit,
        bob,
        cycles,
        ch,
        shard_chs,
        ot,
        shards,
        ScheduleMode::Netlist,
    )
}

/// [`run_evaluator_sharded`] with an explicit execution schedule; the
/// mirror of [`run_garbler_scheduled`]. The two parties may use
/// *different* schedule modes — the transcript does not depend on it.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_evaluator_scheduled(
    circuit: &Circuit,
    bob: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    shards: ShardConfig,
    mode: ScheduleMode,
) -> Result<GarbleOutcome, ProtocolError> {
    let evaluator = HalfGateEvaluator::new();
    let mut session =
        EvaluatorSession::establish_sharded(ch, shard_chs, ot, GarbledTable::BYTES, shards)?;
    let mut active = vec![Label::ZERO; circuit.wire_count()];

    // --- Input labels ----------------------------------------------------
    let mut direct = session.recv_direct_labels()?.into_iter();

    let mut choices: Vec<bool> = Vec::new();
    for dff in circuit.dffs() {
        if let DffInit::Bob(i) = dff.init {
            choices.push(bob.init[i as usize]);
        }
    }
    for cycle in 0..cycles {
        let mut bidx = 0usize;
        for input in circuit.inputs() {
            if input.role == Role::Bob {
                choices.push(bob.stream[cycle][bidx]);
                bidx += 1;
            }
        }
    }
    let mut ot_labels = session.ot_receive(&choices)?.into_iter();

    // Distribute in the same order the garbler produced.
    for &(w, _) in circuit.consts() {
        active[w.index()] = direct.next().ok_or(ProtocolError::Malformed("consts"))?;
    }
    for dff in circuit.dffs() {
        active[dff.q.index()] = match dff.init {
            DffInit::Bob(_) => ot_labels.next().ok_or(ProtocolError::Malformed("ot"))?,
            _ => direct.next().ok_or(ProtocolError::Malformed("dff"))?,
        };
    }
    let mut stream_active: Vec<Vec<Label>> = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let mut per_cycle = Vec::with_capacity(circuit.inputs().len());
        for input in circuit.inputs() {
            per_cycle.push(match input.role {
                Role::Bob => ot_labels.next().ok_or(ProtocolError::Malformed("ot2"))?,
                _ => direct.next().ok_or(ProtocolError::Malformed("stream"))?,
            });
        }
        stream_active.push(per_cycle);
    }

    // --- Cycle loop ----------------------------------------------------
    // Mirror of the garbler's scheduling: netlist mode pulls tables in
    // gate order as it walks, layered mode pulls the cycle's tables up
    // front (same byte consumption) and hashes per schedule level.
    let schedule = match mode {
        ScheduleMode::Netlist => None,
        ScheduleMode::Layered => Some(LayerSchedule::of(circuit)),
    };
    let mut wavefront = EvalWavefront::new(circuit.wire_count());
    let mut layered = schedule.as_ref().map(|s| EvalLayered::new(s.levels()));
    let mut cycle_tables: Vec<GarbledTable> = Vec::new();
    let non_xor = circuit.non_xor_count();
    let mut tweak = 0u64;
    let mut cycles_run = 0usize;
    let mut my_colours: Vec<bool> = Vec::new();
    for (cycle, cycle_labels) in stream_active.iter().enumerate() {
        session.begin_cycle(non_xor as usize);
        for (input, &l) in circuit.inputs().iter().zip(cycle_labels) {
            active[input.wire.index()] = l;
        }
        if let (Some(sched), Some(drv)) = (&schedule, &mut layered) {
            cycle_tables.clear();
            for _ in 0..non_xor {
                cycle_tables.push(GarbledTable::from_bytes(
                    session.next_table(GarbledTable::BYTES)?,
                ));
            }
            for level in 0..sched.levels() {
                let (linear, nonlinear) = sched.level_split(level);
                for &gi in linear {
                    let gate = &circuit.gates()[gi as usize];
                    active[gate.out.index()] = evaluator.linear_active(
                        gate.op,
                        active[gate.a.index()],
                        active[gate.b.index()],
                    );
                }
                for &gi in nonlinear {
                    let gate = &circuit.gates()[gi as usize];
                    let slot = sched
                        .nonlinear_ordinal(gi as usize)
                        .expect("nonlinear gate has an emission slot")
                        as usize;
                    drv.eval(
                        &active,
                        gate.a.index(),
                        gate.b.index(),
                        gate.out.index(),
                        cycle_tables[slot],
                        tweak + slot as u64,
                    );
                }
                drv.end_level(&evaluator, &mut active);
            }
            tweak += non_xor;
        } else {
            for gate in circuit.gates() {
                let (a, b, out) = (gate.a.index(), gate.b.index(), gate.out.index());
                if gate.op.is_linear() {
                    wavefront.linear(&evaluator, &mut active, gate.op, a, b, out);
                } else {
                    let t = GarbledTable::from_bytes(session.next_table(GarbledTable::BYTES)?);
                    wavefront.eval(&evaluator, &mut active, a, b, out, t, tweak);
                    tweak += 1;
                }
            }
            wavefront.flush(&evaluator, &mut active);
        }

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            my_colours.extend(circuit.outputs().iter().map(|w| active[w.index()].colour()));
        }
        let next: Vec<Label> = circuit.dffs().iter().map(|f| active[f.d.index()]).collect();
        for (dff, l) in circuit.dffs().iter().zip(next) {
            active[dff.q.index()] = l;
        }
        cycles_run = cycle + 1;
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        my_colours.extend(circuit.outputs().iter().map(|w| active[w.index()].colour()));
    }

    // --- Output revelation ----------------------------------------------
    let values = session.reveal_outputs(&my_colours)?;
    let outputs = chunk_outputs(circuit, values);
    let s = session.stats();
    let batching = layered.map_or_else(|| wavefront.stats(), |drv| drv.stats());
    Ok(GarbleOutcome {
        outputs,
        stats: GarbleStats {
            garbled_tables: s.garbled_tables,
            table_bytes: s.table_bytes,
            ots: s.ots,
            cycles_run,
        },
        batching,
    })
}

fn chunk_outputs(circuit: &Circuit, values: Vec<bool>) -> Vec<Vec<bool>> {
    let per = circuit.outputs().len();
    if per == 0 {
        return Vec::new();
    }
    values.chunks(per).map(|c| c.to_vec()).collect()
}
