//! The two-party sequential GC protocol (no SkipGate).
//!
//! Alice garbles every gate of every cycle and streams the tables; Bob
//! evaluates them. Input labels are delivered up front: direct transfer
//! for wires whose value Alice knows (her inputs, constants and the
//! public input `p` — which this baseline deliberately treats as secret
//! data, exactly like the paper's "conventional GC" columns), and OT for
//! Bob's inputs.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::{Circuit, DffInit, Op, OutputMode, Role};
use arm2gc_comm::{Channel, ChannelClosed};
use arm2gc_crypto::{Delta, Label, Prg};
use arm2gc_ot::{OtError, OtReceiver, OtSender};

use crate::halfgate::{GarbledTable, HalfGateEvaluator, HalfGateGarbler};

use std::error::Error;
use std::fmt;

/// Failures of the two-party protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure.
    Channel(ChannelClosed),
    /// Oblivious-transfer failure.
    Ot(OtError),
    /// The peer sent something structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Channel(e) => write!(f, "protocol channel failure: {e}"),
            ProtocolError::Ot(e) => write!(f, "protocol ot failure: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed protocol message: {m}"),
        }
    }
}

impl Error for ProtocolError {}

impl From<ChannelClosed> for ProtocolError {
    fn from(e: ChannelClosed) -> Self {
        ProtocolError::Channel(e)
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        ProtocolError::Ot(e)
    }
}

/// Cost accounting for one protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GarbleStats {
    /// Garbled tables transferred (= garbled non-XOR gates) — the paper's
    /// headline metric.
    pub garbled_tables: u64,
    /// Bytes of garbled tables.
    pub table_bytes: u64,
    /// Number of OTs executed for Bob's input bits.
    pub ots: u64,
    /// Clock cycles executed.
    pub cycles_run: usize,
}

/// Result of one protocol run.
#[derive(Clone, Debug)]
pub struct GarbleOutcome {
    /// Output bits, one vector per scheduled read (see
    /// [`OutputMode`]).
    pub outputs: Vec<Vec<bool>>,
    /// Cost counters.
    pub stats: GarbleStats,
}

impl GarbleOutcome {
    /// The last (or only) output vector.
    ///
    /// # Panics
    /// Panics if the circuit has no outputs.
    pub fn final_output(&self) -> &[bool] {
        self.outputs.last().expect("no outputs")
    }
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect()
}

/// Zero-label of a *linear* gate output on the garbler side.
fn linear_zero(op: Op, a0: Label, b0: Label, delta: Label) -> Label {
    match op {
        Op::XOR => a0 ^ b0,
        Op::XNOR => a0 ^ b0 ^ delta,
        Op::BUF_A => a0,
        Op::NOT_A => a0 ^ delta,
        Op::BUF_B => b0,
        Op::NOT_B => b0 ^ delta,
        _ => panic!("constant-valued gate {op} must not appear in a netlist"),
    }
}

/// Active label of a *linear* gate output on the evaluator side.
fn linear_active(op: Op, a: Label, b: Label) -> Label {
    match op {
        Op::XOR | Op::XNOR => a ^ b,
        Op::BUF_A | Op::NOT_A => a,
        Op::BUF_B | Op::NOT_B => b,
        _ => panic!("constant-valued gate {op} must not appear in a netlist"),
    }
}

/// Runs the garbler (Alice) side of the classic sequential GC protocol.
///
/// `public` is the public input `p`; this engine garbles it like private
/// data (the whole point of the baseline). Outputs are revealed to both
/// parties.
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_garbler(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
) -> Result<GarbleOutcome, ProtocolError> {
    let delta = Delta::random(prg);
    let d = delta.as_label();
    let garbler = HalfGateGarbler::new(delta);
    let mut labels = vec![Label::ZERO; circuit.wire_count()];
    let mut stats = GarbleStats::default();

    // --- Input label distribution -------------------------------------
    let mut direct: Vec<Label> = Vec::new();
    let mut ot_pairs: Vec<(Label, Label)> = Vec::new();

    for &(w, v) in circuit.consts() {
        let x0 = Label::random(prg);
        labels[w.index()] = x0;
        direct.push(if v { x0 ^ d } else { x0 });
    }
    for dff in circuit.dffs() {
        let x0 = Label::random(prg);
        labels[dff.q.index()] = x0;
        match dff.init {
            DffInit::Const(v) => direct.push(if v { x0 ^ d } else { x0 }),
            DffInit::Public(i) => {
                let v = public.init[i as usize];
                direct.push(if v { x0 ^ d } else { x0 });
            }
            DffInit::Alice(i) => {
                let v = alice.init[i as usize];
                direct.push(if v { x0 ^ d } else { x0 });
            }
            DffInit::Bob(_) => ot_pairs.push((x0, x0 ^ d)),
        }
    }
    // Fresh labels for every (cycle, input wire).
    let mut stream_labels: Vec<Vec<Label>> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let mut per_cycle = Vec::with_capacity(circuit.inputs().len());
        let mut idx = [0usize; 3];
        for input in circuit.inputs() {
            let x0 = Label::random(prg);
            per_cycle.push(x0);
            match input.role {
                Role::Alice => {
                    let v = alice.stream[cycle][idx[0]];
                    idx[0] += 1;
                    direct.push(if v { x0 ^ d } else { x0 });
                }
                Role::Public => {
                    let v = public.stream[cycle][idx[2]];
                    idx[2] += 1;
                    direct.push(if v { x0 ^ d } else { x0 });
                }
                Role::Bob => {
                    idx[1] += 1;
                    ot_pairs.push((x0, x0 ^ d));
                }
            }
        }
        stream_labels.push(per_cycle);
    }

    let direct_bytes: Vec<u8> = direct.iter().flat_map(|l| l.to_bytes()).collect();
    ch.send(&direct_bytes)?;
    if !ot_pairs.is_empty() {
        ot.send(ch, &ot_pairs)?;
    }
    stats.ots = ot_pairs.len() as u64;

    // --- Cycle loop ----------------------------------------------------
    let mut tweak = 0u64;
    let mut decode_bits: Vec<bool> = Vec::new();
    for cycle in 0..cycles {
        for (input, &x0) in circuit.inputs().iter().zip(&stream_labels[cycle]) {
            labels[input.wire.index()] = x0;
        }
        let mut tables: Vec<u8> = Vec::new();
        for gate in circuit.gates() {
            let a0 = labels[gate.a.index()];
            let b0 = labels[gate.b.index()];
            labels[gate.out.index()] = if gate.op.is_linear() {
                linear_zero(gate.op, a0, b0, d)
            } else {
                let (c0, table) = garbler.garble(gate.op, a0, b0, tweak);
                tweak += 1;
                tables.extend_from_slice(&table.to_bytes());
                stats.garbled_tables += 1;
                c0
            };
        }
        stats.table_bytes += tables.len() as u64;
        ch.send(&tables)?;

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            decode_bits.extend(circuit.outputs().iter().map(|w| labels[w.index()].colour()));
        }
        let next: Vec<Label> = circuit.dffs().iter().map(|f| labels[f.d.index()]).collect();
        for (dff, l) in circuit.dffs().iter().zip(next) {
            labels[dff.q.index()] = l;
        }
        stats.cycles_run = cycle + 1;
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        decode_bits.extend(circuit.outputs().iter().map(|w| labels[w.index()].colour()));
    }

    // --- Output revelation ---------------------------------------------
    ch.send(&pack_bits(&decode_bits))?;
    let value_bytes = ch.recv()?;
    let values = unpack_bits(&value_bytes, decode_bits.len());
    let outputs = chunk_outputs(circuit, values);
    Ok(GarbleOutcome { outputs, stats })
}

/// Runs the evaluator (Bob) side of the classic sequential GC protocol.
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_evaluator(
    circuit: &Circuit,
    bob: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtReceiver,
) -> Result<GarbleOutcome, ProtocolError> {
    let evaluator = HalfGateEvaluator::new();
    let mut active = vec![Label::ZERO; circuit.wire_count()];
    let mut stats = GarbleStats::default();

    // --- Input labels ----------------------------------------------------
    let direct_bytes = ch.recv()?;
    let mut direct = direct_bytes
        .chunks_exact(16)
        .map(|c| Label::from_bytes(c.try_into().expect("16")));

    let mut choices: Vec<bool> = Vec::new();
    for dff in circuit.dffs() {
        if let DffInit::Bob(i) = dff.init {
            choices.push(bob.init[i as usize]);
        }
    }
    for cycle in 0..cycles {
        let mut bidx = 0usize;
        for input in circuit.inputs() {
            if input.role == Role::Bob {
                choices.push(bob.stream[cycle][bidx]);
                bidx += 1;
            }
        }
    }
    let mut ot_labels = if choices.is_empty() {
        Vec::new()
    } else {
        ot.receive(ch, &choices)?
    }
    .into_iter();
    stats.ots = choices.len() as u64;

    // Distribute in the same order the garbler produced.
    for &(w, _) in circuit.consts() {
        active[w.index()] = direct.next().ok_or(ProtocolError::Malformed("consts"))?;
    }
    for dff in circuit.dffs() {
        active[dff.q.index()] = match dff.init {
            DffInit::Bob(_) => ot_labels.next().ok_or(ProtocolError::Malformed("ot"))?,
            _ => direct.next().ok_or(ProtocolError::Malformed("dff"))?,
        };
    }
    let mut stream_active: Vec<Vec<Label>> = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let mut per_cycle = Vec::with_capacity(circuit.inputs().len());
        for input in circuit.inputs() {
            per_cycle.push(match input.role {
                Role::Bob => ot_labels.next().ok_or(ProtocolError::Malformed("ot2"))?,
                _ => direct.next().ok_or(ProtocolError::Malformed("stream"))?,
            });
        }
        stream_active.push(per_cycle);
    }

    // --- Cycle loop ----------------------------------------------------
    let mut tweak = 0u64;
    let mut my_colours: Vec<bool> = Vec::new();
    for cycle in 0..cycles {
        for (input, &l) in circuit.inputs().iter().zip(&stream_active[cycle]) {
            active[input.wire.index()] = l;
        }
        let table_bytes = ch.recv()?;
        if table_bytes.len() % GarbledTable::BYTES != 0 {
            return Err(ProtocolError::Malformed("table stream"));
        }
        let mut tables = table_bytes
            .chunks_exact(GarbledTable::BYTES)
            .map(GarbledTable::from_bytes);
        stats.table_bytes += table_bytes.len() as u64;

        for gate in circuit.gates() {
            let a = active[gate.a.index()];
            let b = active[gate.b.index()];
            active[gate.out.index()] = if gate.op.is_linear() {
                linear_active(gate.op, a, b)
            } else {
                let t = tables.next().ok_or(ProtocolError::Malformed("tables"))?;
                stats.garbled_tables += 1;
                let out = evaluator.eval(a, b, &t, tweak);
                tweak += 1;
                out
            };
        }
        if tables.next().is_some() {
            return Err(ProtocolError::Malformed("extra tables"));
        }

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            my_colours.extend(circuit.outputs().iter().map(|w| active[w.index()].colour()));
        }
        let next: Vec<Label> = circuit.dffs().iter().map(|f| active[f.d.index()]).collect();
        for (dff, l) in circuit.dffs().iter().zip(next) {
            active[dff.q.index()] = l;
        }
        stats.cycles_run = cycle + 1;
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        my_colours.extend(circuit.outputs().iter().map(|w| active[w.index()].colour()));
    }

    // --- Output revelation ----------------------------------------------
    let decode = unpack_bits(&ch.recv()?, my_colours.len());
    let values: Vec<bool> = my_colours
        .iter()
        .zip(&decode)
        .map(|(&c, &z)| c ^ z)
        .collect();
    ch.send(&pack_bits(&values))?;
    let outputs = chunk_outputs(circuit, values);
    Ok(GarbleOutcome { outputs, stats })
}

fn chunk_outputs(circuit: &Circuit, values: Vec<bool>) -> Vec<Vec<bool>> {
    let per = circuit.outputs().len();
    if per == 0 {
        return Vec::new();
    }
    values.chunks(per).map(|c| c.to_vec()).collect()
}
