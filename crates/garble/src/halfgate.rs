//! Half-gate garbling (Zahur–Rosulek–Evans, "Two Halves Make a Whole").
//!
//! Any nonlinear 2-input gate factors as `((a⊕α) ∧ (b⊕β)) ⊕ γ`
//! ([`Op::and_form`]); the garbler absorbs α/β/γ into its label
//! bookkeeping, so the evaluator runs one op-independent formula and each
//! nonlinear gate costs exactly two ciphertexts (32 bytes).

use arm2gc_circuit::Op;
use arm2gc_crypto::{Delta, GarbleHash, HashScratch, Label};

/// A nonlinear gate queued for batch garbling.
#[derive(Clone, Copy, Debug)]
pub struct GarbleJob {
    /// Gate operation (must be nonlinear).
    pub op: Op,
    /// Zero-label of input `a`.
    pub a0: Label,
    /// Zero-label of input `b`.
    pub b0: Label,
    /// The gate's unique tweak.
    pub tweak: u64,
}

/// A nonlinear gate queued for batch evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EvalJob {
    /// Active label of input `a`.
    pub a: Label,
    /// Active label of input `b`.
    pub b: Label,
    /// The gate's two-ciphertext table.
    pub table: GarbledTable,
    /// The gate's unique tweak.
    pub tweak: u64,
}

/// Reusable buffers for the batch garble/eval entry points.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    inputs: Vec<(Label, u64)>,
    hashes: Vec<Label>,
    hash: HashScratch,
}

/// The two ciphertexts of one garbled nonlinear gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GarbledTable {
    /// Generator-half ciphertext.
    pub tg: Label,
    /// Evaluator-half ciphertext.
    pub te: Label,
}

impl GarbledTable {
    /// Size on the wire in bytes.
    pub const BYTES: usize = 32;

    /// Serialises the two ciphertexts.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(&self.tg.to_bytes());
        out[16..].copy_from_slice(&self.te.to_bytes());
        out
    }

    /// Deserialises two ciphertexts.
    pub fn from_bytes(b: &[u8]) -> Self {
        Self {
            tg: Label::from_bytes(b[..16].try_into().expect("16 bytes")),
            te: Label::from_bytes(b[16..32].try_into().expect("16 bytes")),
        }
    }
}

/// Garbler-side half-gate context.
#[derive(Clone, Debug)]
pub struct HalfGateGarbler {
    delta: Delta,
    hash: GarbleHash,
}

impl HalfGateGarbler {
    /// Creates a garbler with the global free-XOR offset `delta`.
    pub fn new(delta: Delta) -> Self {
        Self {
            delta,
            hash: GarbleHash::fixed(),
        }
    }

    /// The global offset.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// The four hash inputs of one gate: `(a0', j0), (a1', j0),
    /// (b0', j1), (b1', j1)` where `x' = x ⊕ α/β·Δ` (the and-form
    /// zero-point swap).
    fn hash_points(&self, job: &GarbleJob) -> [(Label, u64); 4] {
        let (alpha, beta, _) = job.op.and_form();
        let d = self.delta.as_label();
        // Work with the labels of a' = a⊕α and b' = b⊕β: same label set,
        // swapped zero point.
        let a0p = if alpha { job.a0 ^ d } else { job.a0 };
        let b0p = if beta { job.b0 ^ d } else { job.b0 };
        let (j0, j1) = (
            job.tweak.wrapping_mul(2),
            job.tweak.wrapping_mul(2).wrapping_add(1),
        );
        [(a0p, j0), (a0p ^ d, j0), (b0p, j1), (b0p ^ d, j1)]
    }

    /// Combines one gate's four hashes into its output zero-label and
    /// table — the shared tail of the scalar and batch paths.
    fn combine(&self, job: &GarbleJob, h: [Label; 4]) -> (Label, GarbledTable) {
        let (alpha, beta, gamma) = job.op.and_form();
        let d = self.delta.as_label();
        let a0p = if alpha { job.a0 ^ d } else { job.a0 };
        let b0p = if beta { job.b0 ^ d } else { job.b0 };
        let pa = a0p.colour();
        let pb = b0p.colour();
        let [ha0, ha1, hb0, hb1] = h;

        // Generator half.
        let mut tg = ha0 ^ ha1;
        if pb {
            tg ^= d;
        }
        let mut wg = ha0;
        if pa {
            wg ^= tg;
        }

        // Evaluator half.
        let te = hb0 ^ hb1 ^ a0p;
        let mut we = hb0;
        if pb {
            we ^= te ^ a0p;
        }

        let mut c0 = wg ^ we;
        if gamma {
            c0 ^= d;
        }
        (c0, GarbledTable { tg, te })
    }

    /// Garbles a nonlinear `op` gate with input zero-labels `a0`, `b0`.
    /// Returns the output zero-label and the two-ciphertext table. `tweak`
    /// must be unique per garbled gate (two consecutive values are used).
    ///
    /// # Panics
    /// Panics if `op` is linear.
    pub fn garble(&self, op: Op, a0: Label, b0: Label, tweak: u64) -> (Label, GarbledTable) {
        let job = GarbleJob { op, a0, b0, tweak };
        let points = self.hash_points(&job);
        let h = points.map(|(l, t)| self.hash.hash(l, t));
        self.combine(&job, h)
    }

    /// Garbles a batch of *independent* nonlinear gates, hashing all of
    /// them through the wide AES pipeline together. Byte-identical to
    /// calling [`HalfGateGarbler::garble`] on each job in order.
    pub fn garble_batch(&self, jobs: &[GarbleJob]) -> Vec<(Label, GarbledTable)> {
        let mut out = Vec::new();
        self.garble_batch_with(jobs, &mut BatchScratch::default(), &mut out);
        out
    }

    /// Allocation-free [`HalfGateGarbler::garble_batch`]: clears and
    /// fills `out`, reusing `scratch` across calls.
    pub fn garble_batch_with(
        &self,
        jobs: &[GarbleJob],
        scratch: &mut BatchScratch,
        out: &mut Vec<(Label, GarbledTable)>,
    ) {
        out.clear();
        if let [job] = jobs {
            // Tiny wavefront: skip the batch buffers.
            out.push(self.garble(job.op, job.a0, job.b0, job.tweak));
            return;
        }
        scratch.inputs.clear();
        for job in jobs {
            scratch.inputs.extend(self.hash_points(job));
        }
        self.hash
            .hash_batch_with(&scratch.inputs, &mut scratch.hash, &mut scratch.hashes);
        for (job, h) in jobs.iter().zip(scratch.hashes.chunks_exact(4)) {
            out.push(self.combine(job, [h[0], h[1], h[2], h[3]]));
        }
    }

    /// Zero-label of a *linear* gate output (free on the wire).
    ///
    /// # Panics
    /// Panics on constant-valued ops (the builder never emits them).
    pub fn linear_zero(&self, op: Op, a0: Label, b0: Label) -> Label {
        let d = self.delta.as_label();
        match op {
            Op::XOR => a0 ^ b0,
            Op::XNOR => a0 ^ b0 ^ d,
            Op::BUF_A => a0,
            Op::NOT_A => a0 ^ d,
            Op::BUF_B => b0,
            Op::NOT_B => b0 ^ d,
            _ => panic!("constant-valued gate {op} must not appear in a netlist"),
        }
    }
}

/// Evaluator-side half-gate context.
#[derive(Clone, Debug)]
pub struct HalfGateEvaluator {
    hash: GarbleHash,
}

impl Default for HalfGateEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl HalfGateEvaluator {
    /// Creates an evaluator (fixed-key hash, no secrets).
    pub fn new() -> Self {
        Self {
            hash: GarbleHash::fixed(),
        }
    }

    /// Combines one gate's two hashes with its table — the shared tail
    /// of the scalar and batch paths.
    fn combine(job: &EvalJob, ha: Label, hb: Label) -> Label {
        let mut wg = ha;
        if job.a.colour() {
            wg ^= job.table.tg;
        }
        let mut we = hb;
        if job.b.colour() {
            we ^= job.table.te ^ job.a;
        }
        wg ^ we
    }

    /// Evaluates a garbled nonlinear gate on active labels `a`, `b`.
    /// The formula is independent of the gate's truth table — the garbler
    /// encoded it in the labels.
    pub fn eval(&self, a: Label, b: Label, table: &GarbledTable, tweak: u64) -> Label {
        let (j0, j1) = (tweak.wrapping_mul(2), tweak.wrapping_mul(2).wrapping_add(1));
        let ha = self.hash.hash(a, j0);
        let hb = self.hash.hash(b, j1);
        Self::combine(
            &EvalJob {
                a,
                b,
                table: *table,
                tweak,
            },
            ha,
            hb,
        )
    }

    /// Evaluates a batch of *independent* garbled gates, hashing all of
    /// them through the wide AES pipeline together. Byte-identical to
    /// calling [`HalfGateEvaluator::eval`] on each job in order.
    pub fn eval_batch(&self, jobs: &[EvalJob]) -> Vec<Label> {
        let mut out = Vec::new();
        self.eval_batch_with(jobs, &mut BatchScratch::default(), &mut out);
        out
    }

    /// Allocation-free [`HalfGateEvaluator::eval_batch`]: clears and
    /// fills `out`, reusing `scratch` across calls.
    pub fn eval_batch_with(
        &self,
        jobs: &[EvalJob],
        scratch: &mut BatchScratch,
        out: &mut Vec<Label>,
    ) {
        out.clear();
        if let [job] = jobs {
            out.push(self.eval(job.a, job.b, &job.table, job.tweak));
            return;
        }
        scratch.inputs.clear();
        for job in jobs {
            let (j0, j1) = (
                job.tweak.wrapping_mul(2),
                job.tweak.wrapping_mul(2).wrapping_add(1),
            );
            scratch.inputs.push((job.a, j0));
            scratch.inputs.push((job.b, j1));
        }
        self.hash
            .hash_batch_with(&scratch.inputs, &mut scratch.hash, &mut scratch.hashes);
        for (job, h) in jobs.iter().zip(scratch.hashes.chunks_exact(2)) {
            out.push(Self::combine(job, h[0], h[1]));
        }
    }

    /// Active label of a *linear* gate output (free on the wire).
    ///
    /// # Panics
    /// Panics on constant-valued ops (the builder never emits them).
    pub fn linear_active(&self, op: Op, a: Label, b: Label) -> Label {
        match op {
            Op::XOR | Op::XNOR => a ^ b,
            Op::BUF_A | Op::NOT_A => a,
            Op::BUF_B | Op::NOT_B => b,
            _ => panic!("constant-valued gate {op} must not appear in a netlist"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_crypto::Prg;

    /// Exhaustive correctness: every nonlinear op × every input combo.
    #[test]
    fn all_nonlinear_ops_all_inputs() {
        let mut prg = Prg::from_seed([13; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();
        let d = delta.as_label();

        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            if op.is_linear() {
                continue;
            }
            let a0 = Label::random(&mut prg);
            let b0 = Label::random(&mut prg);
            let (c0, table) = g.garble(op, a0, b0, tt as u64);
            for a in [false, true] {
                for b in [false, true] {
                    let la = if a { a0 ^ d } else { a0 };
                    let lb = if b { b0 ^ d } else { b0 };
                    let got = e.eval(la, lb, &table, tt as u64);
                    let want = if op.eval(a, b) { c0 ^ d } else { c0 };
                    assert_eq!(got, want, "op={op} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn tweak_uniqueness_matters() {
        // Same gate garbled under two tweaks yields different tables.
        let mut prg = Prg::from_seed([14; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let a0 = Label::random(&mut prg);
        let b0 = Label::random(&mut prg);
        let (_, t1) = g.garble(Op::AND, a0, b0, 1);
        let (_, t2) = g.garble(Op::AND, a0, b0, 2);
        assert_ne!(t1, t2);
    }

    /// Batch garbling/evaluation is byte-identical to the scalar calls,
    /// for every nonlinear op and a spread of batch sizes.
    #[test]
    fn batch_matches_scalar() {
        let mut prg = Prg::from_seed([16; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();
        let d = delta.as_label();

        let nonlinear: Vec<Op> = (0u8..16)
            .map(Op::from_table)
            .filter(|op| !op.is_linear())
            .collect();
        for n in [1usize, 2, 5, 8, 17] {
            let jobs: Vec<GarbleJob> = (0..n)
                .map(|i| GarbleJob {
                    op: nonlinear[i % nonlinear.len()],
                    a0: Label::random(&mut prg),
                    b0: Label::random(&mut prg),
                    tweak: 1000 + i as u64,
                })
                .collect();
            let batch = g.garble_batch(&jobs);
            let scalar: Vec<_> = jobs
                .iter()
                .map(|j| g.garble(j.op, j.a0, j.b0, j.tweak))
                .collect();
            assert_eq!(batch, scalar, "garble n={n}");

            // Evaluate each gate on a random input combination.
            let eval_jobs: Vec<EvalJob> = jobs
                .iter()
                .zip(&batch)
                .enumerate()
                .map(|(i, (j, (_, table)))| EvalJob {
                    a: if i % 2 == 0 { j.a0 } else { j.a0 ^ d },
                    b: if i % 3 == 0 { j.b0 } else { j.b0 ^ d },
                    table: *table,
                    tweak: j.tweak,
                })
                .collect();
            let got = e.eval_batch(&eval_jobs);
            let want: Vec<Label> = eval_jobs
                .iter()
                .map(|j| e.eval(j.a, j.b, &j.table, j.tweak))
                .collect();
            assert_eq!(got, want, "eval n={n}");
        }
    }

    #[test]
    fn table_roundtrip() {
        let mut prg = Prg::from_seed([15; 16]);
        let t = GarbledTable {
            tg: Label::random(&mut prg),
            te: Label::random(&mut prg),
        };
        assert_eq!(GarbledTable::from_bytes(&t.to_bytes()), t);
    }
}
