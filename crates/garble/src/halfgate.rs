//! Half-gate garbling (Zahur–Rosulek–Evans, "Two Halves Make a Whole").
//!
//! Any nonlinear 2-input gate factors as `((a⊕α) ∧ (b⊕β)) ⊕ γ`
//! ([`Op::and_form`]); the garbler absorbs α/β/γ into its label
//! bookkeeping, so the evaluator runs one op-independent formula and each
//! nonlinear gate costs exactly two ciphertexts (32 bytes).

use arm2gc_circuit::Op;
use arm2gc_crypto::{Delta, GarbleHash, Label};

/// The two ciphertexts of one garbled nonlinear gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GarbledTable {
    /// Generator-half ciphertext.
    pub tg: Label,
    /// Evaluator-half ciphertext.
    pub te: Label,
}

impl GarbledTable {
    /// Size on the wire in bytes.
    pub const BYTES: usize = 32;

    /// Serialises the two ciphertexts.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(&self.tg.to_bytes());
        out[16..].copy_from_slice(&self.te.to_bytes());
        out
    }

    /// Deserialises two ciphertexts.
    pub fn from_bytes(b: &[u8]) -> Self {
        Self {
            tg: Label::from_bytes(b[..16].try_into().expect("16 bytes")),
            te: Label::from_bytes(b[16..32].try_into().expect("16 bytes")),
        }
    }
}

/// Garbler-side half-gate context.
#[derive(Clone, Debug)]
pub struct HalfGateGarbler {
    delta: Delta,
    hash: GarbleHash,
}

impl HalfGateGarbler {
    /// Creates a garbler with the global free-XOR offset `delta`.
    pub fn new(delta: Delta) -> Self {
        Self {
            delta,
            hash: GarbleHash::fixed(),
        }
    }

    /// The global offset.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// Garbles a nonlinear `op` gate with input zero-labels `a0`, `b0`.
    /// Returns the output zero-label and the two-ciphertext table. `tweak`
    /// must be unique per garbled gate (two consecutive values are used).
    ///
    /// # Panics
    /// Panics if `op` is linear.
    pub fn garble(&self, op: Op, a0: Label, b0: Label, tweak: u64) -> (Label, GarbledTable) {
        let (alpha, beta, gamma) = op.and_form();
        let d = self.delta.as_label();
        // Work with the labels of a' = a⊕α and b' = b⊕β: same label set,
        // swapped zero point.
        let a0p = if alpha { a0 ^ d } else { a0 };
        let b0p = if beta { b0 ^ d } else { b0 };
        let a1p = a0p ^ d;
        let b1p = b0p ^ d;
        let pa = a0p.colour();
        let pb = b0p.colour();
        let (j0, j1) = (tweak.wrapping_mul(2), tweak.wrapping_mul(2).wrapping_add(1));

        // Generator half.
        let ha0 = self.hash.hash(a0p, j0);
        let ha1 = self.hash.hash(a1p, j0);
        let mut tg = ha0 ^ ha1;
        if pb {
            tg ^= d;
        }
        let mut wg = ha0;
        if pa {
            wg ^= tg;
        }

        // Evaluator half.
        let hb0 = self.hash.hash(b0p, j1);
        let hb1 = self.hash.hash(b1p, j1);
        let te = hb0 ^ hb1 ^ a0p;
        let mut we = hb0;
        if pb {
            we ^= te ^ a0p;
        }

        let mut c0 = wg ^ we;
        if gamma {
            c0 ^= d;
        }
        (c0, GarbledTable { tg, te })
    }
}

/// Evaluator-side half-gate context.
#[derive(Clone, Debug)]
pub struct HalfGateEvaluator {
    hash: GarbleHash,
}

impl Default for HalfGateEvaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl HalfGateEvaluator {
    /// Creates an evaluator (fixed-key hash, no secrets).
    pub fn new() -> Self {
        Self {
            hash: GarbleHash::fixed(),
        }
    }

    /// Evaluates a garbled nonlinear gate on active labels `a`, `b`.
    /// The formula is independent of the gate's truth table — the garbler
    /// encoded it in the labels.
    pub fn eval(&self, a: Label, b: Label, table: &GarbledTable, tweak: u64) -> Label {
        let (j0, j1) = (tweak.wrapping_mul(2), tweak.wrapping_mul(2).wrapping_add(1));
        let mut wg = self.hash.hash(a, j0);
        if a.colour() {
            wg ^= table.tg;
        }
        let mut we = self.hash.hash(b, j1);
        if b.colour() {
            we ^= table.te ^ a;
        }
        wg ^= we;
        wg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_crypto::Prg;

    /// Exhaustive correctness: every nonlinear op × every input combo.
    #[test]
    fn all_nonlinear_ops_all_inputs() {
        let mut prg = Prg::from_seed([13; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();
        let d = delta.as_label();

        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            if op.is_linear() {
                continue;
            }
            let a0 = Label::random(&mut prg);
            let b0 = Label::random(&mut prg);
            let (c0, table) = g.garble(op, a0, b0, tt as u64);
            for a in [false, true] {
                for b in [false, true] {
                    let la = if a { a0 ^ d } else { a0 };
                    let lb = if b { b0 ^ d } else { b0 };
                    let got = e.eval(la, lb, &table, tt as u64);
                    let want = if op.eval(a, b) { c0 ^ d } else { c0 };
                    assert_eq!(got, want, "op={op} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn tweak_uniqueness_matters() {
        // Same gate garbled under two tweaks yields different tables.
        let mut prg = Prg::from_seed([14; 16]);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let a0 = Label::random(&mut prg);
        let b0 = Label::random(&mut prg);
        let (_, t1) = g.garble(Op::AND, a0, b0, 1);
        let (_, t2) = g.garble(Op::AND, a0, b0, 2);
        assert_ne!(t1, t2);
    }

    #[test]
    fn table_roundtrip() {
        let mut prg = Prg::from_seed([15; 16]);
        let t = GarbledTable {
            tg: Label::random(&mut prg),
            te: Label::random(&mut prg),
        };
        assert_eq!(GarbledTable::from_bytes(&t.to_bytes()), t);
    }
}
