//! Tests for the alias mechanism (circuit-wide identical-label
//! detection) and the engine options, through the full two-party
//! protocol.

use arm2gc_circuit::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
use arm2gc_circuit::sim::{PartyData, Simulator};
use arm2gc_circuit::{CircuitBuilder, Role};
use arm2gc_core::{run_two_party, run_two_party_with, SkipGateOptions};

/// The paper's §3 illustrative example, end to end: a MUX (built the
/// GC-optimised way, `f ⊕ (sel ∧ (t ⊕ f))`) with a public selector must
/// cost only the selected sub-circuit.
#[test]
fn public_selector_mux_collapses() {
    let build = |sel_public: bool| {
        let mut b = CircuitBuilder::new("mux_demo");
        let sel = b.input(if sel_public {
            Role::Public
        } else {
            Role::Alice
        });
        let x0 = b.input(Role::Alice);
        let x1 = b.input(Role::Alice);
        let y = b.input(Role::Bob);
        let f0 = b.and(x0, y); // sub-circuit feeding mux input 0
        let f1 = b.and(x1, y); // sub-circuit feeding mux input 1
        let m = b.mux(sel, f1, f0);
        b.output(m);
        b.build()
    };

    // Public selector: one AND garbled, the dead branch skipped.
    let c = build(true);
    let alice = PartyData::from_stream(vec![vec![true, false]]);
    let bob = PartyData::from_stream(vec![vec![true]]);
    let public = PartyData::from_stream(vec![vec![true]]);
    let sim = Simulator::new(&c).run(&alice, &bob, &public, 1);
    let (a_out, b_out) = run_two_party(&c, &alice, &bob, &public, 1);
    assert_eq!(a_out.outputs, sim.outputs);
    assert_eq!(b_out.outputs, sim.outputs);
    assert_eq!(a_out.stats.garbled_tables, 1, "only the live branch");
    assert_eq!(a_out.stats.skipped_nonlinear, 1, "dead branch skipped");

    // Secret selector: both branches plus the mux AND are garbled.
    let c = build(false);
    let alice = PartyData::from_stream(vec![vec![true, true, false]]);
    let (a_out, _) = run_two_party(&c, &alice, &bob, &PartyData::default(), 1);
    assert_eq!(a_out.stats.garbled_tables, 3);
}

/// A chain of public-selector muxes (the register-file pattern): depth
/// does not change the single-AND cost of the selected path.
#[test]
fn mux_tree_with_public_address_is_one_path() {
    let mut b = CircuitBuilder::new("mux_tree");
    let addr = b.inputs(Role::Public, 3);
    let xs = b.inputs(Role::Alice, 8);
    let ys = b.inputs(Role::Bob, 8);
    let leaves: Vec<_> = xs.iter().zip(&ys).map(|(&x, &y)| b.and(x, y)).collect();
    let mut layer = leaves;
    for &bit in &addr {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(b.mux(bit, pair[1], pair[0]));
        }
        layer = next;
    }
    b.output(layer[0]);
    let c = b.build();

    let alice = PartyData::from_stream(vec![vec![true; 8]]);
    let bob = PartyData::from_stream(vec![vec![true; 8]]);
    let public = PartyData::from_stream(vec![vec![true, false, true]]); // select leaf 5
    let sim = Simulator::new(&c).run(&alice, &bob, &public, 1);
    let (a_out, _) = run_two_party(&c, &alice, &bob, &public, 1);
    assert_eq!(a_out.outputs, sim.outputs);
    // 8 leaf ANDs exist; only the selected one garbles. The mux layers
    // are free (public selectors).
    assert_eq!(a_out.stats.garbled_tables, 1);
    assert_eq!(a_out.stats.skipped_nonlinear, 7);
}

/// Disabling the dead-gate filter (the ablation switch) must preserve
/// correctness while sending at least as many tables.
#[test]
fn filter_off_correct_but_costlier() {
    let mut rng = TestRng::new(808);
    for i in 0..10 {
        let c = random_circuit(&mut rng, RandomCircuitParams::default());
        let cycles = 1 + i % 3;
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let on = run_two_party_with(&c, &a, &b, &p, cycles, SkipGateOptions::default());
        let off = run_two_party_with(
            &c,
            &a,
            &b,
            &p,
            cycles,
            SkipGateOptions {
                filter_dead_gates: false,
            },
        );
        assert_eq!(on.0.outputs, sim.outputs, "iteration {i} (filter on)");
        assert_eq!(off.0.outputs, sim.outputs, "iteration {i} (filter off)");
        assert!(
            off.0.stats.garbled_tables >= on.0.stats.garbled_tables,
            "iteration {i}"
        );
    }
}

/// Alice's and Bob's statistics must agree bit for bit — the "shared
/// decision engine" synchronisation property.
#[test]
fn party_stats_agree() {
    let mut rng = TestRng::new(909);
    for i in 0..10 {
        let c = random_circuit(&mut rng, RandomCircuitParams::default());
        let cycles = 1 + i % 4;
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let (a_out, b_out) = run_two_party(&c, &a, &b, &p, cycles);
        assert_eq!(a_out.stats.garbled_tables, b_out.stats.garbled_tables);
        assert_eq!(a_out.stats.skipped_nonlinear, b_out.stats.skipped_nonlinear);
        assert_eq!(a_out.stats.public_gates, b_out.stats.public_gates);
        assert_eq!(a_out.stats.free_xor, b_out.stats.free_xor);
        assert_eq!(a_out.stats.cycles_run, b_out.stats.cycles_run);
    }
}

/// XOR cancellation through chains: (x ⊕ y) ⊕ y carries x's lineage, so
/// comparing it with x is category iii, and XORing with x is public.
#[test]
fn xor_cancellation_detected_globally() {
    let mut b = CircuitBuilder::new("cancel");
    let x = b.input(Role::Alice);
    let y = b.input(Role::Bob);
    let t = b.xor(x, y);
    let u = b.xor(t, y); // u ≡ x
    let same = b.xnor(u, x); // always 1, category iii
    let dead = b.and(u, x); // ≡ x AND x = pass, category iii
    b.output(same);
    b.output(dead);
    let c = b.build();
    let alice = PartyData::from_stream(vec![vec![true]]);
    let bob = PartyData::from_stream(vec![vec![false]]);
    let sim = Simulator::new(&c).run(&alice, &bob, &PartyData::default(), 1);
    let (a_out, _) = run_two_party(&c, &alice, &bob, &PartyData::default(), 1);
    assert_eq!(a_out.outputs, sim.outputs);
    assert_eq!(
        a_out.stats.garbled_tables, 0,
        "pure lineage algebra: no tables at all"
    );
}
