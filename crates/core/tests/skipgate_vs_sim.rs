//! Differential and cost tests for the SkipGate engine.
//!
//! Correctness: SkipGate must produce exactly the simulator's outputs on
//! every circuit, with any mix of public and private data.
//! Cost: the surviving-table counts must reproduce the paper's Table 1/2
//! circuit rows.

use arm2gc_circuit::bench_circuits::{self, BenchCircuit};
use arm2gc_circuit::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
use arm2gc_circuit::sim::Simulator;
use arm2gc_circuit::OutputMode;
use arm2gc_core::{run_two_party, SkipGateOutcome};

fn check(bc: &BenchCircuit) -> SkipGateOutcome {
    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);
    let (alice_out, bob_out) =
        run_two_party(&bc.circuit, &bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(alice_out.outputs, sim.outputs, "{}", bc.circuit.name());
    assert_eq!(bob_out.outputs, sim.outputs, "{}", bc.circuit.name());
    assert_eq!(
        alice_out.stats.garbled_tables, bob_out.stats.garbled_tables,
        "parties disagree on table count"
    );
    alice_out
}

/// Paper Table 1/2: Sum 32 → 31 garbled non-XORs (the final carry dies).
#[test]
fn sum_32_costs_31() {
    let out = check(&bench_circuits::sum(32, 0xdead_beef, 0x600d_f00d));
    assert_eq!(out.stats.garbled_tables, 31);
}

/// Paper Table 1/2: Sum 1024 → 1,023.
#[test]
fn sum_1024_costs_1023() {
    let out = check(&bench_circuits::sum(1024, u64::MAX, 12345));
    assert_eq!(out.stats.garbled_tables, 1023);
}

/// Paper Table 1/2: Compare 32 → 32 (SkipGate saves nothing here).
#[test]
fn compare_32_costs_32() {
    let out = check(&bench_circuits::compare(32, 77, 99));
    assert_eq!(out.stats.garbled_tables, 32);
}

/// Paper Table 1: Hamming 32: 160 static → 145 with SkipGate.
#[test]
fn hamming_32_costs_match_paper() {
    let out = check(&bench_circuits::hamming(32, &[0xffff_0000], &[0x00ff_ff00]));
    assert_eq!(out.stats.garbled_tables, 145);
}

/// Paper Table 1: Hamming 160: 1,120 static → 1,092 with SkipGate.
#[test]
fn hamming_160_costs_match_paper() {
    let a: Vec<u32> = (0..5).map(|i| 0x0135_7bdfu32.rotate_left(3 * i)).collect();
    let b: Vec<u32> = (0..5).map(|i| 0x8eca_8642u32.rotate_left(5 * i)).collect();
    let out = check(&bench_circuits::hamming(160, &a, &b));
    assert_eq!(out.stats.garbled_tables, 1092);
}

/// Paper Table 1/2: Mult 32 = 2,016 static; SkipGate trims the one dead
/// top carry.
#[test]
fn mult_32_costs() {
    let out = check(&bench_circuits::mult(32, 0xdead_beef, 0x1234_5678));
    assert!(
        out.stats.garbled_tables <= 2016 && out.stats.garbled_tables >= 2015,
        "got {}",
        out.stats.garbled_tables
    );
}

/// Paper Table 2 (ARM2GC column): MatrixMult3x3 32 = 27,369.
#[test]
fn matmul_3x3_costs_27369() {
    let a: Vec<u32> = (0..9).map(|i| i * 31 + 7).collect();
    let b: Vec<u32> = (0..9).map(|i| i * 17 + 3).collect();
    let out = check(&bench_circuits::matrix_mult(3, &a, &b));
    assert_eq!(out.stats.garbled_tables, 27_369);
}

/// Paper Table 1/2: SHA3-256 = 38,400 with SkipGate (24 × 1600 χ ANDs;
/// the public round controller vanishes). We measure 37,056: our run
/// reveals only the 256 digest bits, so in the final round the 1,344
/// χ ANDs outside the digest's cone die by fanout reduction — a strict
/// improvement over the paper's figure with identical semantics
/// (documented in EXPERIMENTS.md).
#[test]
fn sha3_256_costs_37056() {
    let out = check(&bench_circuits::sha3_256(b"skipgate"));
    assert_eq!(out.stats.garbled_tables, 23 * 1600 + 256);
    assert!(out.stats.garbled_tables <= 38_400);
}

/// Paper Table 1/2: AES-128 = 6,400 with the 32-AND S-box; ours is the
/// 36-AND tower S-box → 7,200 (controller still vanishes entirely).
#[test]
fn aes_128_costs_7200() {
    let key: Vec<u8> = (10..26).collect();
    let pt: Vec<u8> = (200..216).collect();
    let out = check(&bench_circuits::aes128(
        key.try_into().unwrap(),
        pt.try_into().unwrap(),
    ));
    assert_eq!(out.stats.garbled_tables, 7_200);
}

/// SkipGate must agree with the cleartext simulator on arbitrary random
/// sequential circuits with mixed public/private inputs.
#[test]
fn random_circuits_match_simulator() {
    let mut rng = TestRng::new(777);
    for i in 0..40 {
        let params = RandomCircuitParams {
            inputs: (2 + i % 3, 2, 1 + i % 3),
            dffs: 2 + i % 5,
            gates: 25 + 7 * (i % 6),
            outputs: 5,
            output_mode: if i % 2 == 0 {
                OutputMode::PerCycle
            } else {
                OutputMode::FinalOnly
            },
        };
        let c = random_circuit(&mut rng, params);
        let cycles = 1 + i % 6;
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (alice_out, bob_out) = run_two_party(&c, &a, &b, &p, cycles);
        assert_eq!(alice_out.outputs, sim.outputs, "alice, iteration {i}");
        assert_eq!(bob_out.outputs, sim.outputs, "bob, iteration {i}");
    }
}

/// SkipGate never sends more tables than the classic baseline.
#[test]
fn never_worse_than_baseline() {
    let mut rng = TestRng::new(31337);
    for i in 0..15 {
        let c = random_circuit(&mut rng, RandomCircuitParams::default());
        let cycles = 1 + i % 4;
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let (alice_out, _) = run_two_party(&c, &a, &b, &p, cycles);
        let baseline = arm2gc_garble::static_non_xor_cost(&c, cycles);
        assert!(
            (alice_out.stats.garbled_tables as u128) <= baseline,
            "iteration {i}: {} > {baseline}",
            alice_out.stats.garbled_tables
        );
    }
}

/// The halt wire stops both parties early without communication.
#[test]
fn public_halt_stops_early() {
    use arm2gc_circuit::sim::PartyData;
    use arm2gc_circuit::{CircuitBuilder, DffInit};

    let mut b = CircuitBuilder::new("halting");
    let cnt = b.dff_bus(8, |_| DffInit::Const(false));
    let (next, _) = b.inc(&cnt);
    b.connect_dff_bus(&cnt, &next);
    let halt = b.eq_const(&cnt, 5);
    b.set_halt(halt);
    b.outputs(&cnt);
    let c = b.build();

    let (alice_out, bob_out) = run_two_party(
        &c,
        &PartyData::default(),
        &PartyData::default(),
        &PartyData::default(),
        1000,
    );
    assert_eq!(alice_out.stats.cycles_run, 6);
    assert_eq!(bob_out.stats.cycles_run, 6);
    // The counter is public throughout: zero tables.
    assert_eq!(alice_out.stats.garbled_tables, 0);
    let sim = Simulator::new(&c).run(
        &PartyData::default(),
        &PartyData::default(),
        &PartyData::default(),
        1000,
    );
    assert_eq!(alice_out.outputs, sim.outputs);
}
