//! The shared per-cycle decision engine (Algorithms 3–6 of the paper).
//!
//! Both parties run exactly this code on exactly the same data (public
//! wire values and secret tags), so their gate classifications and
//! skip decisions agree by construction. Alice then garbles the
//! surviving category-iv gates and Bob evaluates them.

use arm2gc_circuit::ir::Unary;
use arm2gc_circuit::{Circuit, Op, OutputMode, WireId};

use crate::state::WireVal;
use crate::tag::TagAllocator;

/// Outcome of classifying one gate for one cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateDecision {
    /// Categories i / ii / iii with constant result: both parties computed
    /// the output locally; no labels involved.
    PublicOut(bool),
    /// The gate acts as a wire (or inverter) from one input to its
    /// output: labels flow through for free.
    Pass {
        /// Which input the label comes from (`true` = first input).
        from_a: bool,
        /// Whether the logical value is inverted on the way through.
        flip: bool,
    },
    /// Category-iv linear gate (XOR/XNOR on unrelated secrets): free.
    FreeXor {
        /// XNOR (inverted output).
        flip: bool,
    },
    /// A free-XOR result whose lineage cancelled down to an *existing*
    /// live wire (e.g. the output of a public-selector XOR-trick mux):
    /// both parties copy that wire's label instead of keeping the XOR
    /// operands alive. This generalises §3.3's identical-label detection
    /// from gate inputs to the whole cycle and is what lets a mux built
    /// as `f ⊕ (sel ∧ (t ⊕ f))` release the dead sub-circuit.
    Alias {
        /// The earlier wire carrying the same lineage.
        src: WireId,
        /// Label flip (Alice XORs Δ; Bob copies unchanged).
        flip: bool,
    },
    /// Category-iv nonlinear gate that must be garbled and transferred.
    Garble,
    /// Category-iv nonlinear gate whose `label_fanout` reached zero: its
    /// table is never sent (Alg. 4 line 18 / Alg. 5 line 18).
    Skipped,
    /// Pass/FreeXor gate whose output label ended the cycle unused; no
    /// labels are computed for it.
    SkippedFree,
}

/// Per-cycle classification counts (feeds the evaluation tables).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionCounts {
    /// Gates resolved to a public constant (categories i–iii).
    pub public_out: u64,
    /// Gates acting as wires/inverters (categories ii–iii).
    pub pass: u64,
    /// Free XOR/XNOR gates garbled at zero cost.
    pub free_xor: u64,
    /// Free-XOR results aliased to an existing wire.
    pub aliased: u64,
    /// Nonlinear gates garbled and transferred.
    pub garbled: u64,
    /// Nonlinear gates skipped by fanout reduction.
    pub skipped_nonlinear: u64,
    /// Linear gates skipped by fanout reduction.
    pub skipped_free: u64,
}

/// All decisions for one cycle.
#[derive(Clone, Debug)]
pub struct CycleDecisions {
    /// One decision per gate, in circuit order.
    pub decisions: Vec<GateDecision>,
    /// Aggregated counts.
    pub counts: DecisionCounts,
}

/// Precomputed circuit metadata for the per-cycle decision passes.
#[derive(Clone, Debug)]
pub struct DecideContext<'c> {
    circuit: &'c Circuit,
    /// Static per-wire fanout from gate inputs only.
    base_fan: Vec<u32>,
    /// Flip-flop `d` wires, every cycle except (conditionally) the last.
    dff_d: Vec<WireId>,
    /// `d` wires of flip-flops whose `q` is a circuit output.
    output_dff_d: Vec<WireId>,
    /// Output wires that are not flip-flop `q`s.
    non_q_outputs: Vec<WireId>,
    /// Disable the dead-gate filter (ablation only).
    pub filter_dead: bool,
}

impl<'c> DecideContext<'c> {
    /// Builds the context for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        let mut base_fan = vec![0u32; circuit.wire_count()];
        for g in circuit.gates() {
            base_fan[g.a.index()] += 1;
            base_fan[g.b.index()] += 1;
        }
        let q_set: std::collections::HashSet<WireId> = circuit.dffs().iter().map(|d| d.q).collect();
        let output_set: std::collections::HashSet<WireId> =
            circuit.outputs().iter().copied().collect();
        Self {
            circuit,
            base_fan,
            dff_d: circuit.dffs().iter().map(|d| d.d).collect(),
            output_dff_d: circuit
                .dffs()
                .iter()
                .filter(|d| output_set.contains(&d.q))
                .map(|d| d.d)
                .collect(),
            non_q_outputs: circuit
                .outputs()
                .iter()
                .copied()
                .filter(|w| !q_set.contains(w))
                .collect(),
            filter_dead: true,
        }
    }

    /// Initial `label_fanout` for this cycle (§3.2: gate fanout plus the
    /// cycle's sinks — scheduled outputs and flip-flop data inputs).
    fn init_fan(&self, is_last: bool) -> Vec<u32> {
        let mut fan = self.base_fan.clone();
        match self.circuit.output_mode() {
            OutputMode::PerCycle => {
                for w in self.circuit.outputs() {
                    fan[w.index()] += 1;
                }
            }
            OutputMode::FinalOnly if is_last => {
                for w in &self.output_dff_d {
                    fan[w.index()] += 1;
                }
                for w in &self.non_q_outputs {
                    fan[w.index()] += 1;
                }
            }
            OutputMode::FinalOnly => {}
        }
        if !is_last {
            for w in &self.dff_d {
                fan[w.index()] += 1;
            }
        } else if matches!(self.circuit.output_mode(), OutputMode::PerCycle) {
            // Last cycle of a per-cycle circuit: state dies with the run.
        }
        fan
    }

    /// Runs Phases 1 and 2's classification plus the recursive fanout
    /// reduction for one cycle, updating `states` with every gate's
    /// output knowledge.
    pub fn decide_cycle(
        &self,
        states: &mut [WireVal],
        alloc: &mut TagAllocator,
        is_last: bool,
    ) -> CycleDecisions {
        let circuit = self.circuit;
        let mut fan = self.init_fan(is_last);
        let mut decisions = Vec::with_capacity(circuit.gates().len());

        let release = |fan: &mut [u32], states: &[WireVal], w: WireId| {
            if states[w.index()].is_secret() {
                let f = &mut fan[w.index()];
                debug_assert!(*f > 0, "fanout underflow on {w}");
                *f = f.saturating_sub(1);
            }
        };

        // Representative wire per live tag hash: the earliest wire whose
        // label carries that lineage this cycle. Seeded from flip-flop
        // outputs and primary inputs (their labels are always valid).
        let mut rep: std::collections::HashMap<u128, WireId> = std::collections::HashMap::new();
        for dff in circuit.dffs() {
            if let WireVal::Secret(t) = states[dff.q.index()] {
                rep.entry(t.hash).or_insert(dff.q);
            }
        }
        for input in circuit.inputs() {
            if let WireVal::Secret(t) = states[input.wire.index()] {
                rep.entry(t.hash).or_insert(input.wire);
            }
        }

        // ---- Forward pass: categories i–iv -----------------------------
        for gate in circuit.gates() {
            let sa = states[gate.a.index()];
            let sb = states[gate.b.index()];
            let decision = match (sa, sb) {
                // Category i.
                (WireVal::Public(va), WireVal::Public(vb)) => {
                    GateDecision::PublicOut(gate.op.eval(va, vb))
                }
                // Category ii.
                (WireVal::Public(va), WireVal::Secret(tb)) => match gate.op.restrict_a(va) {
                    Unary::Const(c) => {
                        release(&mut fan, states, gate.b);
                        GateDecision::PublicOut(c)
                    }
                    Unary::Pass => {
                        let _ = tb;
                        GateDecision::Pass {
                            from_a: false,
                            flip: false,
                        }
                    }
                    Unary::Inv => GateDecision::Pass {
                        from_a: false,
                        flip: true,
                    },
                },
                (WireVal::Secret(_), WireVal::Public(vb)) => match gate.op.restrict_b(vb) {
                    Unary::Const(c) => {
                        release(&mut fan, states, gate.a);
                        GateDecision::PublicOut(c)
                    }
                    Unary::Pass => GateDecision::Pass {
                        from_a: true,
                        flip: false,
                    },
                    Unary::Inv => GateDecision::Pass {
                        from_a: true,
                        flip: true,
                    },
                },
                (WireVal::Secret(ta), WireVal::Secret(tb)) => {
                    // Category iii: identical or inverted lineage.
                    let related = if ta.identical(tb) {
                        Some(gate.op.diagonal())
                    } else if ta.inverted_of(tb) {
                        Some(gate.op.antidiagonal())
                    } else {
                        None
                    };
                    match related {
                        Some(Unary::Const(c)) => {
                            release(&mut fan, states, gate.a);
                            release(&mut fan, states, gate.b);
                            GateDecision::PublicOut(c)
                        }
                        Some(Unary::Pass) => {
                            release(&mut fan, states, gate.b);
                            GateDecision::Pass {
                                from_a: true,
                                flip: false,
                            }
                        }
                        Some(Unary::Inv) => {
                            release(&mut fan, states, gate.b);
                            GateDecision::Pass {
                                from_a: true,
                                flip: true,
                            }
                        }
                        // Category iv.
                        None => match gate.op {
                            Op::XOR => GateDecision::FreeXor { flip: false },
                            Op::XNOR => GateDecision::FreeXor { flip: true },
                            Op::BUF_A => {
                                release(&mut fan, states, gate.b);
                                GateDecision::Pass {
                                    from_a: true,
                                    flip: false,
                                }
                            }
                            Op::NOT_A => {
                                release(&mut fan, states, gate.b);
                                GateDecision::Pass {
                                    from_a: true,
                                    flip: true,
                                }
                            }
                            Op::BUF_B => {
                                release(&mut fan, states, gate.a);
                                GateDecision::Pass {
                                    from_a: false,
                                    flip: false,
                                }
                            }
                            Op::NOT_B => {
                                release(&mut fan, states, gate.a);
                                GateDecision::Pass {
                                    from_a: false,
                                    flip: true,
                                }
                            }
                            _ => GateDecision::Garble,
                        },
                    }
                }
            };

            // Record the output's knowledge state; FreeXor results whose
            // lineage already lives on some earlier wire become aliases.
            let (decision, out_state) = match decision {
                GateDecision::PublicOut(v) => (decision, WireVal::Public(v)),
                GateDecision::Pass { from_a, flip } => {
                    let src = if from_a { sa } else { sb };
                    let tag = src.as_secret().expect("pass source must be secret");
                    (
                        decision,
                        WireVal::Secret(if flip { tag.inverted() } else { tag }),
                    )
                }
                GateDecision::FreeXor { flip } => {
                    let (ta, tb) = (
                        sa.as_secret().expect("xor input"),
                        sb.as_secret().expect("xor input"),
                    );
                    let mut t = ta.xor(tb);
                    t.flip ^= flip;
                    debug_assert_ne!(t.hash, 0, "cat-iv XOR of related tags");
                    match rep.get(&t.hash) {
                        Some(&src) if src != gate.out => {
                            let fr = states[src.index()]
                                .as_secret()
                                .expect("representative must be secret")
                                .flip;
                            release(&mut fan, states, gate.a);
                            release(&mut fan, states, gate.b);
                            fan[src.index()] += 1;
                            (
                                GateDecision::Alias {
                                    src,
                                    flip: fr ^ t.flip,
                                },
                                WireVal::Secret(t),
                            )
                        }
                        _ => (decision, WireVal::Secret(t)),
                    }
                }
                GateDecision::Garble => (decision, WireVal::Secret(alloc.fresh())),
                GateDecision::Alias { .. } | GateDecision::Skipped | GateDecision::SkippedFree => {
                    unreachable!()
                }
            };
            states[gate.out.index()] = out_state;
            if let WireVal::Secret(t) = out_state {
                rep.entry(t.hash).or_insert(gate.out);
            }
            decisions.push(decision);
        }

        // ---- Backward sweep: recursive fanout reduction (Alg. 6) -------
        if self.filter_dead {
            for (gi, gate) in circuit.gates().iter().enumerate().rev() {
                if fan[gate.out.index()] > 0 {
                    continue;
                }
                match decisions[gi] {
                    GateDecision::Pass { from_a, .. } => {
                        release(&mut fan, states, if from_a { gate.a } else { gate.b });
                        decisions[gi] = GateDecision::SkippedFree;
                    }
                    GateDecision::FreeXor { .. } => {
                        release(&mut fan, states, gate.a);
                        release(&mut fan, states, gate.b);
                        decisions[gi] = GateDecision::SkippedFree;
                    }
                    GateDecision::Alias { src, .. } => {
                        release(&mut fan, states, src);
                        decisions[gi] = GateDecision::SkippedFree;
                    }
                    GateDecision::Garble => {
                        release(&mut fan, states, gate.a);
                        release(&mut fan, states, gate.b);
                        decisions[gi] = GateDecision::Skipped;
                    }
                    GateDecision::PublicOut(_)
                    | GateDecision::Skipped
                    | GateDecision::SkippedFree => {}
                }
            }
        }

        let mut counts = DecisionCounts::default();
        for d in &decisions {
            match d {
                GateDecision::PublicOut(_) => counts.public_out += 1,
                GateDecision::Pass { .. } => counts.pass += 1,
                GateDecision::FreeXor { .. } => counts.free_xor += 1,
                GateDecision::Alias { .. } => counts.aliased += 1,
                GateDecision::Garble => counts.garbled += 1,
                GateDecision::Skipped => counts.skipped_nonlinear += 1,
                GateDecision::SkippedFree => counts.skipped_free += 1,
            }
        }
        CycleDecisions { decisions, counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_circuit::{CircuitBuilder, Role};

    fn states_for(c: &Circuit, alloc: &mut TagAllocator) -> Vec<WireVal> {
        // All Alice/Bob inputs secret, public inputs = arbitrary values.
        let mut states = vec![WireVal::Public(false); c.wire_count()];
        for input in c.inputs() {
            states[input.wire.index()] = match input.role {
                Role::Public => WireVal::Public(true),
                _ => WireVal::Secret(alloc.fresh()),
            };
        }
        for &(w, v) in c.consts() {
            states[w.index()] = WireVal::Public(v);
        }
        states
    }

    /// Figure 1 of the paper: category i–ii rewrites.
    #[test]
    fn figure_1_phase1_examples() {
        let mut b = CircuitBuilder::new("fig1");
        let s = b.input(Role::Alice); // secret
        let p0 = b.constant(false);
        let p1 = b.constant(true);
        let g_and0 = b.and(p1, p0); // cat i: 1 AND 0 = 0
        let g_and_s0 = b.and(s, p0); // cat ii: S AND 0 = 0
        let g_and_s1 = b.and(s, p1); // cat ii: S AND 1 = wire
        let g_xor_s1 = b.xor(s, p1); // cat ii: S XOR 1 = inverter
        b.outputs(&[g_and0, g_and_s0, g_and_s1, g_xor_s1]);
        let c = b.build();

        let mut alloc = TagAllocator::new();
        let mut states = states_for(&c, &mut alloc);
        let ctx = DecideContext::new(&c);
        let res = ctx.decide_cycle(&mut states, &mut alloc, true);
        assert_eq!(res.decisions[0], GateDecision::PublicOut(false));
        assert_eq!(res.decisions[1], GateDecision::PublicOut(false));
        assert_eq!(
            res.decisions[2],
            GateDecision::Pass {
                from_a: true,
                flip: false
            }
        );
        assert_eq!(
            res.decisions[3],
            GateDecision::Pass {
                from_a: true,
                flip: true
            }
        );
        assert_eq!(res.counts.garbled, 0);
    }

    /// Figure 2 of the paper: category iii–iv rewrites.
    #[test]
    fn figure_2_phase2_examples() {
        let mut b = CircuitBuilder::new("fig2");
        let s = b.input(Role::Alice);
        let t = b.input(Role::Bob);
        let ns = b.not(s); // pass w/ flip
        let xor_same = b.xor(s, s); // cat iii: identical → public 0
        let xor_inv = b.xor(s, ns); // cat iii: inverted → public 1
        let and_same = b.and(s, s); // cat iii: identical → wire
        let and_unrelated = b.and(s, t); // cat iv: garble
        b.outputs(&[xor_same, xor_inv, and_same, and_unrelated]);
        let c = b.build();

        let mut alloc = TagAllocator::new();
        let mut states = states_for(&c, &mut alloc);
        let ctx = DecideContext::new(&c);
        let res = ctx.decide_cycle(&mut states, &mut alloc, true);
        // Gate order: ns, xor_same, xor_inv, and_same, and_unrelated.
        assert_eq!(res.decisions[1], GateDecision::PublicOut(false));
        assert_eq!(res.decisions[2], GateDecision::PublicOut(true));
        assert_eq!(
            res.decisions[3],
            GateDecision::Pass {
                from_a: true,
                flip: false
            }
        );
        assert_eq!(res.decisions[4], GateDecision::Garble);
        assert_eq!(res.counts.garbled, 1);
    }

    /// Figure 3 of the paper: recursive fanout reduction — a chain of
    /// garbleable gates whose only consumer is killed by a public 0 AND.
    #[test]
    fn figure_3_recursive_reduction() {
        let mut b = CircuitBuilder::new("fig3");
        let s1 = b.input(Role::Alice);
        let s2 = b.input(Role::Bob);
        let s3 = b.input(Role::Alice);
        let zero = b.constant(false);
        // A chain: g1 = s1 & s2; g2 = g1 | s3; g3 = g2 & 0 (public!).
        let g1 = b.and(s1, s2);
        let g2 = b.or(g1, s3);
        let g3 = b.and(g2, zero);
        // And a surviving gate to show selectivity.
        let live = b.and(s1, s3);
        b.outputs(&[g3, live]);
        let c = b.build();

        let mut alloc = TagAllocator::new();
        let mut states = states_for(&c, &mut alloc);
        let ctx = DecideContext::new(&c);
        let res = ctx.decide_cycle(&mut states, &mut alloc, true);
        // g3's public 0 kills g2, which recursively kills g1.
        assert_eq!(res.decisions[0], GateDecision::Skipped, "g1 skipped");
        assert_eq!(res.decisions[1], GateDecision::Skipped, "g2 skipped");
        assert_eq!(res.decisions[2], GateDecision::PublicOut(false));
        assert_eq!(res.decisions[3], GateDecision::Garble, "live gate garbles");
        assert_eq!(res.counts.garbled, 1);
        assert_eq!(res.counts.skipped_nonlinear, 2);
    }

    #[test]
    fn filter_can_be_disabled_for_ablation() {
        let mut b = CircuitBuilder::new("abl");
        let s1 = b.input(Role::Alice);
        let s2 = b.input(Role::Bob);
        let zero = b.constant(false);
        let g1 = b.and(s1, s2);
        let g2 = b.and(g1, zero);
        b.output(g2);
        let c = b.build();

        let mut alloc = TagAllocator::new();
        let mut states = states_for(&c, &mut alloc);
        let mut ctx = DecideContext::new(&c);
        ctx.filter_dead = false;
        let res = ctx.decide_cycle(&mut states, &mut alloc, true);
        assert_eq!(res.decisions[0], GateDecision::Garble);
        assert_eq!(res.counts.garbled, 1);
    }

    #[test]
    fn mux_with_public_selector_is_free() {
        // The paper's §3 illustrative example: a MUX whose selector is
        // public costs nothing; the unused sub-circuit is skipped.
        let mut b = CircuitBuilder::new("mux");
        let sel = b.input(Role::Public);
        let x0 = b.input(Role::Alice);
        let x1 = b.input(Role::Alice);
        let y = b.input(Role::Bob);
        // Two "sub-circuits": f0 = x0 & y (feeds input 0), f1 = x1 & y.
        let f0 = b.and(x0, y);
        let f1 = b.and(x1, y);
        let m = b.mux(sel, f1, f0);
        b.output(m);
        let c = b.build();

        let mut alloc = TagAllocator::new();
        let mut states = states_for(&c, &mut alloc); // sel = public true
        let ctx = DecideContext::new(&c);
        let res = ctx.decide_cycle(&mut states, &mut alloc, true);
        // With sel = 1 only f1 must be garbled; f0 is skipped and the MUX
        // itself is wires.
        assert_eq!(res.counts.garbled, 1);
        assert_eq!(res.counts.skipped_nonlinear, 1);
    }
}
