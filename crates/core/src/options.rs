//! The unified session-configuration surface: [`SessionOptions`].
//!
//! Historically every knob combination grew its own entry point —
//! `run_skipgate_garbler`, `_with`, `_sharded`, `_scheduled`,
//! `_instanced`, and the `run_two_party{,_with,_cfg,_instanced_cfg}`
//! harness quartet. [`SessionOptions`] collapses the matrix into one
//! builder consumed by exactly two drivers
//! ([`drive_garbler`](crate::drive::drive_garbler) /
//! [`drive_evaluator`](crate::drive::drive_evaluator)); the legacy
//! names survive as thin forwarding wrappers pinned byte-identical.
//!
//! # Migration map
//!
//! | Legacy entry point | Unified form |
//! |---|---|
//! | `run_skipgate_garbler(…, options)` | `drive_garbler(…, &SessionOptions::new().filter_dead_gates(options.filter_dead_gates))` |
//! | `run_skipgate_garbler_with(…, stream)` | `… .stream(stream)` |
//! | `run_skipgate_garbler_sharded(…, shards)` | `… .shards(shards.shards)` |
//! | `run_skipgate_garbler_scheduled(…, mode)` | `… .schedule(mode)` |
//! | `run_skipgate_garbler_instanced(…)` | `… .instances(n)` |
//! | `run_evaluator*` (baseline crate) | `… .engine(EngineKind::Baseline)` |
//! | `run_two_party{,_with,_cfg,_instanced_cfg}` | [`run_two_party_opts`](crate::drive::run_two_party_opts) |
//!
//! Counts are validated when a driver starts — a zero shard or
//! instance count is a typed [`ConfigError`] at the session boundary,
//! never a downstream panic inside channel setup.
//!
//! ```
//! use arm2gc_core::SessionOptions;
//! let opts = SessionOptions::new().shards(2).instances(8);
//! assert!(opts.validate().is_ok());
//! assert!(SessionOptions::new().shards(0).validate().is_err());
//! ```

use arm2gc_circuit::ScheduleMode;
use arm2gc_proto::{ConfigError, OtBackend, OtConfig, ShardConfig, StreamConfig};

use crate::engine::SkipGateOptions;

/// Which garbling engine a session runs.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The classic sequential-GC baseline (`arm2gc_garble`): every
    /// nonlinear gate is garbled, every cycle.
    Baseline,
    /// The SkipGate engine (this crate): only category-iv gates with
    /// surviving label fanout cost tables.
    #[default]
    SkipGate,
}

/// Unified configuration of one garbling session, whichever side drives
/// it.
///
/// Build with [`SessionOptions::new`] plus the chained setters; the
/// struct is `#[non_exhaustive]` so new knobs can land without breaking
/// downstream builds. Counts (`shards`, `instances`) are plain integers
/// here — they are validated into typed errors by [`validate`] /
/// [`shard_config`], which every driver calls before any protocol state
/// exists.
///
/// [`validate`]: Self::validate
/// [`shard_config`]: Self::shard_config
#[non_exhaustive]
#[derive(Clone, Copy, Debug)]
pub struct SessionOptions {
    /// Which engine garbles ([`EngineKind::SkipGate`] by default).
    pub engine: EngineKind,
    /// How each cycle's label computations are ordered. Transport-only:
    /// both modes are byte-identical on the wire. Ignored by instanced
    /// sessions, which are always layer-scheduled.
    pub schedule: ScheduleMode,
    /// Parallel table-stream sub-channels (1 = the legacy single
    /// stream). Validated into a [`ShardConfig`] at drive time.
    pub shards: usize,
    /// Independent circuit instances (lanes) batched through one
    /// session. `1` is a plain single-instance run; more requires the
    /// SkipGate engine.
    pub instances: usize,
    /// Which OT stack delivers the evaluator's input labels.
    pub ot: OtBackend,
    /// The base-OT group the [`OtBackend::NaorPinkasIknp`] stack runs
    /// over. Defaults to the production 1279-bit group
    /// ([`OtConfig::STANDARD`]); tests opt into [`OtConfig::TEST`].
    /// Ignored by [`OtBackend::Insecure`].
    pub ot_config: OtConfig,
    /// Garbler-side table-streaming (chunking) configuration.
    pub stream: StreamConfig,
    /// SkipGate decision-engine options (unused by the baseline).
    pub skipgate: SkipGateOptions,
    /// Socket read/write deadline for transports that support one
    /// (`SO_RCVTIMEO`/`SO_SNDTIMEO` on TCP). `None` — the default —
    /// blocks forever, matching historical behaviour. The in-memory
    /// channels the core drivers use ignore it; the garbler service and
    /// its client apply it to every session socket, so a stalled peer
    /// surfaces as a typed timeout instead of a wedged thread.
    pub io_timeout: Option<std::time::Duration>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            engine: EngineKind::default(),
            schedule: ScheduleMode::default(),
            shards: 1,
            instances: 1,
            ot: OtBackend::default(),
            ot_config: OtConfig::default(),
            stream: StreamConfig::default(),
            skipgate: SkipGateOptions::default(),
            io_timeout: None,
        }
    }
}

impl SessionOptions {
    /// A single-instance, unsharded SkipGate session with default OT
    /// and streaming — the starting point for the chained setters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the garbling engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the per-cycle execution schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the table-stream shard count (validated at drive time).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the lane count for cross-instance batching (validated at
    /// drive time).
    #[must_use]
    pub fn instances(mut self, instances: usize) -> Self {
        self.instances = instances;
        self
    }

    /// Selects the OT backend.
    #[must_use]
    pub fn ot(mut self, ot: OtBackend) -> Self {
        self.ot = ot;
        self
    }

    /// Selects the Naor–Pinkas base-OT group.
    #[must_use]
    pub fn ot_config(mut self, ot_config: OtConfig) -> Self {
        self.ot_config = ot_config;
        self
    }

    /// Sets the garbler-side table-streaming configuration.
    #[must_use]
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Toggles SkipGate's dead-gate filtering (Alg. 4 line 18); only
    /// the ablation benchmark turns it off.
    #[must_use]
    pub fn filter_dead_gates(mut self, on: bool) -> Self {
        self.skipgate.filter_dead_gates = on;
        self
    }

    /// Sets (or clears, with `None`) the per-session socket read/write
    /// deadline. See the field docs: only socket-backed transports
    /// honour it.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Validates every count against the limits the wire format and the
    /// engines impose.
    ///
    /// # Errors
    /// [`ConfigError::ZeroShards`] / [`ConfigError::TooManyShards`] for
    /// a shard count outside `1..=255`;
    /// [`ConfigError::ZeroInstances`] / [`ConfigError::TooManyInstances`]
    /// for a lane count outside `1..=65535`;
    /// [`ConfigError::BaselineInstanced`] when the baseline engine is
    /// paired with more than one lane.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.shard_config()?;
        match self.instances {
            0 => return Err(ConfigError::ZeroInstances),
            n if n > u16::MAX as usize => return Err(ConfigError::TooManyInstances(n)),
            _ => {}
        }
        if self.engine == EngineKind::Baseline && self.instances > 1 {
            return Err(ConfigError::BaselineInstanced);
        }
        Ok(())
    }

    /// The configuration expressed by a legacy
    /// [`TwoPartyConfig`](crate::engine::TwoPartyConfig): a single-lane
    /// SkipGate session.
    fn from_legacy(cfg: crate::engine::TwoPartyConfig) -> Self {
        let mut opts = Self::new()
            .schedule(cfg.schedule)
            .shards(cfg.shards.shards)
            .ot(cfg.ot)
            .ot_config(cfg.ot_config)
            .stream(cfg.stream);
        opts.skipgate = cfg.options;
        opts
    }

    /// The validated [`ShardConfig`] this session opens channels with.
    ///
    /// # Errors
    /// [`ConfigError::ZeroShards`] / [`ConfigError::TooManyShards`]
    /// when the count is outside `1..=255`.
    pub fn shard_config(&self) -> Result<ShardConfig, ConfigError> {
        ShardConfig::try_new(self.shards)
    }
}

impl From<crate::engine::TwoPartyConfig> for SessionOptions {
    fn from(cfg: crate::engine::TwoPartyConfig) -> Self {
        Self::from_legacy(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_knob() {
        let opts = SessionOptions::new()
            .engine(EngineKind::Baseline)
            .schedule(ScheduleMode::Layered)
            .shards(3)
            .instances(1)
            .filter_dead_gates(false)
            .io_timeout(Some(std::time::Duration::from_millis(250)));
        assert_eq!(opts.engine, EngineKind::Baseline);
        assert_eq!(opts.schedule, ScheduleMode::Layered);
        assert_eq!(opts.shards, 3);
        assert_eq!(opts.instances, 1);
        assert!(!opts.skipgate.filter_dead_gates);
        assert_eq!(opts.io_timeout, Some(std::time::Duration::from_millis(250)));
        assert_eq!(SessionOptions::new().io_timeout, None);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn zero_counts_are_typed_errors_not_panics() {
        assert_eq!(
            SessionOptions::new().shards(0).validate(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            SessionOptions::new().instances(0).validate(),
            Err(ConfigError::ZeroInstances)
        );
        assert_eq!(
            SessionOptions::new().shards(256).validate(),
            Err(ConfigError::TooManyShards(256))
        );
        assert_eq!(
            SessionOptions::new().instances(1 << 17).validate(),
            Err(ConfigError::TooManyInstances(1 << 17))
        );
    }

    #[test]
    fn baseline_rejects_instancing() {
        assert_eq!(
            SessionOptions::new()
                .engine(EngineKind::Baseline)
                .instances(8)
                .validate(),
            Err(ConfigError::BaselineInstanced)
        );
        assert!(SessionOptions::new().instances(8).validate().is_ok());
    }
}
