//! The two unified session drivers: [`drive_garbler`] and
//! [`drive_evaluator`].
//!
//! One [`SessionOptions`] value selects everything a session can vary —
//! engine, schedule, shard count, lane count, OT backend, streaming —
//! and the drivers dispatch to the same engine internals the legacy
//! `run_*` explosion called directly, so transcripts are byte-identical
//! to the historical entry points (see the migration map on
//! [`crate::options`]). Both drivers validate the configuration *first*:
//! a zero shard or lane count is a typed
//! [`ConfigError`] carried as
//! [`ProtocolError::Config`], raised before any protocol state exists.
//!
//! Inputs are always lane-shaped (`&[PartyData]`, one entry per
//! configured instance) and the result is always an
//! [`InstancedOutcome`]; a single-instance run is simply `lanes.len()
//! == 1`. This keeps one signature across the whole mode matrix.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::Circuit;
use arm2gc_comm::{duplex, Channel};
use arm2gc_crypto::Prg;
use arm2gc_garble::engine::ProtocolError;
use arm2gc_garble::GarbleOutcome;
use arm2gc_ot::{OtReceiver, OtSender};
use arm2gc_proto::ConfigError;

use crate::engine::{
    run_skipgate_evaluator_instanced, run_skipgate_evaluator_scheduled,
    run_skipgate_garbler_instanced, run_skipgate_garbler_scheduled, shard_duplexes,
    InstancedOutcome, SkipGateOutcome, SkipGateStats,
};
use crate::options::{EngineKind, SessionOptions};

/// Checks the lane-shaped inputs against the configured instance count.
fn check_lanes(opts: &SessionOptions, got: usize) -> Result<(), ProtocolError> {
    if got != opts.instances {
        return Err(ConfigError::LaneCount {
            expected: opts.instances,
            got,
        }
        .into());
    }
    Ok(())
}

/// Lifts a baseline outcome into the SkipGate shape: the classic engine
/// garbles every nonlinear gate, so the SkipGate-only counters are
/// identically zero.
fn lift_baseline(o: GarbleOutcome) -> SkipGateOutcome {
    SkipGateOutcome {
        outputs: o.outputs,
        stats: SkipGateStats {
            garbled_tables: o.stats.garbled_tables,
            table_bytes: o.stats.table_bytes,
            ots: o.stats.ots,
            cycles_run: o.stats.cycles_run,
            ..SkipGateStats::default()
        },
        batching: o.batching,
    }
}

fn singleton(outcome: SkipGateOutcome) -> InstancedOutcome {
    let batching = outcome.batching;
    InstancedOutcome {
        lanes: vec![outcome],
        batching,
    }
}

/// Runs the garbler (Alice) side of a session described by `opts`.
///
/// `alices` and `publics` carry one [`PartyData`] per configured lane
/// (`opts.instances` entries each). Dispatch:
///
/// * [`EngineKind::Baseline`] — the classic engine's scheduled run
///   (single lane only; [`ConfigError::BaselineInstanced`] otherwise);
/// * [`EngineKind::SkipGate`], one lane — the scheduled SkipGate run,
///   honouring `opts.schedule`;
/// * [`EngineKind::SkipGate`], several lanes — the cross-instance
///   batched run (always layer-scheduled).
///
/// # Errors
/// [`ProtocolError::Config`] when `opts` fails validation or the lane
/// arrays disagree with `opts.instances`; otherwise propagates channel
/// and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn drive_garbler(
    circuit: &Circuit,
    alices: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    opts: &SessionOptions,
) -> Result<InstancedOutcome, ProtocolError> {
    opts.validate()?;
    let shards = opts.shard_config()?;
    check_lanes(opts, alices.len())?;
    check_lanes(opts, publics.len())?;
    match (opts.engine, opts.instances) {
        (EngineKind::Baseline, _) => arm2gc_garble::engine::run_garbler_scheduled(
            circuit,
            &alices[0],
            &publics[0],
            cycles,
            ch,
            shard_chs,
            ot,
            prg,
            opts.stream,
            shards,
            opts.schedule,
        )
        .map(lift_baseline)
        .map(singleton),
        (EngineKind::SkipGate, 1) => run_skipgate_garbler_scheduled(
            circuit,
            &alices[0],
            &publics[0],
            cycles,
            ch,
            shard_chs,
            ot,
            prg,
            opts.skipgate,
            opts.stream,
            shards,
            opts.schedule,
        )
        .map(singleton),
        (EngineKind::SkipGate, _) => run_skipgate_garbler_instanced(
            circuit,
            alices,
            publics,
            cycles,
            ch,
            shard_chs,
            ot,
            prg,
            opts.skipgate,
            opts.stream,
            shards,
        ),
    }
}

/// Runs the evaluator (Bob) side of a session described by `opts`; the
/// mirror of [`drive_garbler`]. Both parties must drive with equal
/// `opts` (shard and lane counts are out-of-band session
/// configuration).
///
/// # Errors
/// [`ProtocolError::Config`] when `opts` fails validation or the lane
/// arrays disagree with `opts.instances`; otherwise propagates channel
/// and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn drive_evaluator(
    circuit: &Circuit,
    bobs: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    opts: &SessionOptions,
) -> Result<InstancedOutcome, ProtocolError> {
    opts.validate()?;
    let shards = opts.shard_config()?;
    check_lanes(opts, bobs.len())?;
    check_lanes(opts, publics.len())?;
    match (opts.engine, opts.instances) {
        (EngineKind::Baseline, _) => arm2gc_garble::engine::run_evaluator_scheduled(
            circuit,
            &bobs[0],
            cycles,
            ch,
            shard_chs,
            ot,
            shards,
            opts.schedule,
        )
        .map(lift_baseline)
        .map(singleton),
        (EngineKind::SkipGate, 1) => run_skipgate_evaluator_scheduled(
            circuit,
            &bobs[0],
            &publics[0],
            cycles,
            ch,
            shard_chs,
            ot,
            opts.skipgate,
            shards,
            opts.schedule,
        )
        .map(singleton),
        (EngineKind::SkipGate, _) => run_skipgate_evaluator_instanced(
            circuit,
            bobs,
            publics,
            cycles,
            ch,
            shard_chs,
            ot,
            opts.skipgate,
            shards,
        ),
    }
}

/// Convenience: drives both parties on two threads over in-memory
/// channels — the unified replacement for the
/// `run_two_party{,_with,_cfg,_instanced_cfg}` quartet. Returns
/// `(alice_outcome, bob_outcome)`.
///
/// # Panics
/// Panics if either party fails (test harness semantics), including on
/// configuration errors — validate `opts` first when a typed error is
/// wanted.
pub fn run_two_party_opts(
    circuit: &Circuit,
    alices: &[PartyData],
    bobs: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    opts: &SessionOptions,
) -> (InstancedOutcome, InstancedOutcome) {
    let (mut ca, mut cb) = duplex();
    let shards = opts.shard_config().expect("shard config");
    let (g_shards, e_shards) = shard_duplexes(shards);
    crossbeam::thread::scope(|s| {
        let garbler = s.spawn(move |_| {
            let mut prg = Prg::from_entropy();
            let mut ot = opts.ot.sender(opts.ot_config, &mut prg);
            drive_garbler(
                circuit,
                alices,
                publics,
                cycles,
                &mut ca,
                g_shards,
                ot.as_mut(),
                &mut prg,
                opts,
            )
            .expect("session garbler")
        });
        let mut prg = Prg::from_entropy();
        let mut ot = opts.ot.receiver(opts.ot_config, &mut prg);
        let bob_outcome = drive_evaluator(
            circuit,
            bobs,
            publics,
            cycles,
            &mut cb,
            e_shards,
            ot.as_mut(),
            opts,
        )
        .expect("session evaluator");
        (garbler.join().expect("garbler thread"), bob_outcome)
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_circuit::{CircuitBuilder, Role};
    use arm2gc_ot::InsecureOt;
    use arm2gc_proto::ProtoError;

    fn tiny_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("and2");
        let a = b.input(Role::Alice);
        let c = b.input(Role::Bob);
        let out = b.and(a, c);
        b.output(out);
        b.build()
    }

    #[test]
    fn both_drivers_reject_bad_counts_with_typed_errors() {
        let circuit = tiny_circuit();
        let lanes = [PartyData::from_stream(vec![vec![true]])];
        let (mut ca, _cb) = duplex();
        let mut prg = Prg::from_entropy();
        let mut ot_s = InsecureOt;
        let bad = SessionOptions::new().shards(0);
        let err = drive_garbler(
            &circuit,
            &lanes,
            &lanes,
            1,
            &mut ca,
            Vec::new(),
            &mut ot_s,
            &mut prg,
            &bad,
        )
        .unwrap_err();
        assert!(matches!(err, ProtoError::Config(ConfigError::ZeroShards)));

        let mut ot_r = InsecureOt;
        let bad = SessionOptions::new().instances(0);
        let err = drive_evaluator(
            &circuit,
            &lanes,
            &lanes,
            1,
            &mut ca,
            Vec::new(),
            &mut ot_r,
            &bad,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ProtoError::Config(ConfigError::ZeroInstances)
        ));
    }

    #[test]
    fn lane_count_mismatch_is_a_typed_error() {
        let circuit = tiny_circuit();
        let lanes = [
            PartyData::from_stream(vec![vec![true]]),
            PartyData::from_stream(vec![vec![false]]),
        ];
        let (mut ca, _cb) = duplex();
        let mut prg = Prg::from_entropy();
        let mut ot_s = InsecureOt;
        let opts = SessionOptions::new().instances(4);
        let err = drive_garbler(
            &circuit,
            &lanes,
            &lanes,
            1,
            &mut ca,
            Vec::new(),
            &mut ot_s,
            &mut prg,
            &opts,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ProtoError::Config(ConfigError::LaneCount {
                expected: 4,
                got: 2
            })
        ));
    }
}
