//! Secret-wire fingerprints.
//!
//! Under free-XOR every secret wire's zero-label is an XOR of "base"
//! labels (fresh garbled-gate outputs and input labels) plus an optional
//! global Δ. A [`SecretTag`] mirrors exactly that linear structure with a
//! 128-bit XOR-homomorphic hash, so two wires carry identical labels iff
//! their tags are equal, and inverted labels iff the tags differ only in
//! [`SecretTag::flip`]. Both parties can compute tags — no labels needed —
//! which is how the shared decision engine detects the paper's
//! category-iii gates (§3.3).

/// Fingerprint of a secret wire's label lineage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SecretTag {
    /// XOR of the base fingerprints contributing to this wire.
    pub hash: u128,
    /// Whether the wire's Boolean value is the complement of the
    /// underlying linear combination (tracks free inverters).
    pub flip: bool,
}

impl SecretTag {
    /// Combines two tags as free-XOR does labels.
    #[must_use]
    pub fn xor(self, other: SecretTag) -> SecretTag {
        SecretTag {
            hash: self.hash ^ other.hash,
            flip: self.flip ^ other.flip,
        }
    }

    /// The same lineage, inverted value.
    #[must_use]
    pub fn inverted(self) -> SecretTag {
        SecretTag {
            hash: self.hash,
            flip: !self.flip,
        }
    }

    /// True if `other` carries the identical secret value.
    pub fn identical(self, other: SecretTag) -> bool {
        self == other
    }

    /// True if `other` carries the complemented secret value.
    pub fn inverted_of(self, other: SecretTag) -> bool {
        self.hash == other.hash && self.flip != other.flip
    }
}

/// Deterministic allocator of fresh base fingerprints.
///
/// Both parties construct one with the same (implicit) sequence and
/// allocate in the same order — the protocol's only synchronisation
/// requirement. Fingerprints are spread by two independent splitmix64
/// streams so that XOR combinations collide only with probability
/// ≈ 2⁻¹²⁸ per pair.
#[derive(Clone, Debug, Default)]
pub struct TagAllocator {
    counter: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TagAllocator {
    /// A fresh allocator starting at the first fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next base tag (non-zero hash, no flip).
    pub fn fresh(&mut self) -> SecretTag {
        self.counter += 1;
        let lo = splitmix64(self.counter);
        let hi = splitmix64(self.counter ^ 0xa5a5_a5a5_a5a5_a5a5);
        SecretTag {
            hash: ((hi as u128) << 64) | lo as u128,
            flip: false,
        }
    }

    /// Number of base tags handed out so far.
    pub fn allocated(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tags_are_distinct_and_nonzero() {
        let mut alloc = TagAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let t = alloc.fresh();
            assert_ne!(t.hash, 0);
            assert!(seen.insert(t.hash), "collision");
        }
    }

    #[test]
    fn xor_mirrors_linear_algebra() {
        let mut alloc = TagAllocator::new();
        let a = alloc.fresh();
        let b = alloc.fresh();
        // a ⊕ b ⊕ b = a (cancellation, as with free-XOR labels).
        assert_eq!(a.xor(b).xor(b), a);
        // a ⊕ a has hash 0 — a publicly-known value.
        assert_eq!(a.xor(a).hash, 0);
    }

    #[test]
    fn inversion_detection() {
        let mut alloc = TagAllocator::new();
        let a = alloc.fresh();
        assert!(a.inverted_of(a.inverted()));
        assert!(a.inverted().inverted_of(a));
        assert!(a.identical(a));
        assert!(!a.identical(a.inverted()));
        let b = alloc.fresh();
        assert!(!a.inverted_of(b));
    }

    #[test]
    fn two_allocators_agree() {
        // The Alice/Bob synchronisation property.
        let mut a = TagAllocator::new();
        let mut b = TagAllocator::new();
        for _ in 0..100 {
            assert_eq!(a.fresh(), b.fresh());
        }
    }
}
