//! **SkipGate** — the paper's primary contribution (§3), plus the
//! two-party protocol runner built around it.
//!
//! SkipGate wraps the sequential GC protocol and, each clock cycle,
//! classifies every gate by what the parties *publicly* know about its
//! inputs:
//!
//! * **category i** — two public inputs: computed locally, free;
//! * **category ii** — one public input: the gate collapses to a
//!   constant, a wire, or an inverter;
//! * **category iii** — two secret inputs carrying identical or inverted
//!   labels: collapses likewise;
//! * **category iv** — unrelated secret inputs: garbled normally
//!   (free-XOR for linear gates, half-gates otherwise) — *unless* its
//!   `label_fanout` drops to zero, in which case the garbled table is
//!   never sent (Alg. 4 line 18).
//!
//! The result: a public-input-heavy circuit like a garbled processor
//! costs only the gates that actually touch private data.
//!
//! # Implementation notes (relative to the paper's Algorithms 1–6)
//!
//! * Both parties run one *shared deterministic decision engine*
//!   ([`decide`]); Alice layers zero-labels and Bob active labels on top.
//!   This realises §3.3's "identical/inverted label" detection with a
//!   [`tag::SecretTag`] — an XOR-homomorphic fingerprint of each secret
//!   wire's free-XOR lineage — instead of comparing raw labels, which
//!   makes the two parties' category decisions equal *by construction*
//!   (the paper's Bob needs placeholder labels + a validity flag for the
//!   same purpose, Alg. 5 line 18).
//! * `label_fanout` bookkeeping (Alg. 6) is per-wire: constant-output
//!   categories release their secret inputs during the forward pass, and
//!   one backward sweep retires every gate whose output label ends the
//!   cycle unused. Because fanouts only ever decrease within a cycle,
//!   the surviving-table set is identical to the paper's
//!   garble-then-filter formulation.
//!
//! # Example
//!
//! ```
//! use arm2gc_circuit::{CircuitBuilder, Role};
//! use arm2gc_circuit::sim::PartyData;
//! use arm2gc_core::run_two_party;
//!
//! // c = (a & a) — the paper's Table 3 "a = a op a" row: zero tables.
//! let mut b = CircuitBuilder::new("a_and_a");
//! let a = b.input(Role::Alice);
//! let out = b.and(a, a);
//! b.output(out);
//! let c = b.build();
//!
//! let alice = PartyData::from_stream(vec![vec![true]]);
//! let bob = PartyData::default();
//! let public = PartyData::default();
//! let (alice_out, _bob_out) = run_two_party(&c, &alice, &bob, &public, 1);
//! assert_eq!(alice_out.outputs[0], vec![true]);
//! assert_eq!(alice_out.stats.garbled_tables, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decide;
pub mod drive;
pub mod engine;
pub mod options;
pub mod state;
pub mod tag;

pub use decide::{CycleDecisions, DecideContext, DecisionCounts, GateDecision};
pub use drive::{drive_evaluator, drive_garbler, run_two_party_opts};
pub use engine::{
    run_skipgate_evaluator, run_skipgate_evaluator_instanced, run_skipgate_evaluator_scheduled,
    run_skipgate_evaluator_sharded, run_skipgate_garbler, run_skipgate_garbler_instanced,
    run_skipgate_garbler_scheduled, run_skipgate_garbler_sharded, run_skipgate_garbler_with,
    run_two_party, run_two_party_cfg, run_two_party_instanced_cfg, run_two_party_with,
    shard_duplexes, InstancedOutcome, SkipGateOptions, SkipGateOutcome, SkipGateStats,
    TwoPartyConfig,
};
pub use options::{EngineKind, SessionOptions};
pub use state::WireVal;
pub use tag::{SecretTag, TagAllocator};

pub use arm2gc_circuit::{LayerSchedule, ScheduleMode};
pub use arm2gc_garble::{ProtocolError, WavefrontStats};
pub use arm2gc_proto::{ConfigError, OtBackend, OtConfig, ShardConfig, StreamConfig};
