//! The two-party SkipGate protocol (Algorithms 1 and 2).
//!
//! Differences from the classic engine in `arm2gc_garble`:
//!
//! * the public input `p` (constants, `Public` flip-flop initialisation,
//!   `Public` input streams) never gets labels — both parties track its
//!   values locally, for free;
//! * each cycle first runs the shared [`DecideContext`] pass, then Alice
//!   garbles / Bob evaluates only the surviving category-iv gates;
//! * when the circuit's halt wire becomes publicly 1, both parties stop
//!   without any extra communication;
//! * output bits on public wires are reported without interaction; only
//!   secret outputs go through the colour-bit exchange.
//!
//! Transport is the shared typed session layer ([`arm2gc_proto`]): both
//! engines deliver labels, stream tables and reveal outputs through the
//! same [`GarblerSession`]/[`EvaluatorSession`] code paths. The
//! `_sharded` entry points split the table stream across several
//! sub-channels ([`ShardConfig`]): the SkipGate decision pass is shared
//! and deterministic, so each cycle's surviving-table count — and hence
//! the per-cycle shard partition — is known to both parties without
//! coordination.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::{
    Circuit, CycleDep, CyclePatch, DffInit, LayerSchedule, Op, OutputMode, Role, ScheduleMode,
    WireId,
};
use arm2gc_comm::{duplex, Channel};
use arm2gc_crypto::{Label, Prg};
use arm2gc_garble::engine::ProtocolError;
use arm2gc_garble::{
    EvalInstanced, EvalLayered, EvalWavefront, GarbleInstanced, GarbleLayered, GarbleWavefront,
    GarbledTable, HalfGateEvaluator, HalfGateGarbler, WavefrontStats,
};
use arm2gc_ot::{OtReceiver, OtSender};
use arm2gc_proto::{
    EvaluatorSession, GarblerSession, OtBackend, OtConfig, ShardConfig, StreamConfig,
};

use crate::decide::{CycleDecisions, DecideContext, GateDecision};
use crate::state::WireVal;
use crate::tag::TagAllocator;

/// Cost accounting for a SkipGate run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipGateStats {
    /// Garbled tables actually transferred — the paper's "# of garbled
    /// non-XOR with SkipGate".
    pub garbled_tables: u64,
    /// Nonlinear gates skipped because their `label_fanout` hit zero.
    pub skipped_nonlinear: u64,
    /// Gates resolved to public constants (categories i–iii).
    pub public_gates: u64,
    /// Gates that acted as wires/inverters or aliases.
    pub pass_gates: u64,
    /// Free XOR/XNOR gates.
    pub free_xor: u64,
    /// Bytes of garbled tables sent.
    pub table_bytes: u64,
    /// OTs executed for Bob's inputs.
    pub ots: u64,
    /// Cycles executed (may stop early at a public halt).
    pub cycles_run: usize,
}

/// Result of a SkipGate protocol run.
#[derive(Clone, Debug)]
pub struct SkipGateOutcome {
    /// Output bits per scheduled read.
    pub outputs: Vec<Vec<bool>>,
    /// Cost counters.
    pub stats: SkipGateStats,
    /// How well the surviving nonlinear gates batched through the wide
    /// AES core (wavefront or layer-scheduled, per [`ScheduleMode`]).
    /// Not a protocol cost — identical transcripts can batch
    /// differently.
    pub batching: WavefrontStats,
}

impl SkipGateOutcome {
    /// The last (or only) output vector.
    ///
    /// # Panics
    /// Panics if the circuit has no outputs.
    pub fn final_output(&self) -> &[bool] {
        self.outputs.last().expect("no outputs")
    }
}

/// An output bit scheduled for revelation.
#[derive(Clone, Copy, Debug)]
enum OutBit {
    Known(bool),
    Secret, // consumes the next slot of the colour exchange
}

/// Shared (party-independent) protocol state.
struct Shared<'c> {
    circuit: &'c Circuit,
    ctx: DecideContext<'c>,
    states: Vec<WireVal>,
    alloc: TagAllocator,
    frames: Vec<Vec<OutBit>>,
    stats: SkipGateStats,
    /// Cycle-persistent scratch for the flip-flop state copy.
    dff_scratch: Vec<WireVal>,
}

impl<'c> Shared<'c> {
    fn new(circuit: &'c Circuit, filter_dead: bool) -> Self {
        let mut ctx = DecideContext::new(circuit);
        ctx.filter_dead = filter_dead;
        Self {
            circuit,
            ctx,
            states: vec![WireVal::Public(false); circuit.wire_count()],
            alloc: TagAllocator::new(),
            frames: Vec::new(),
            stats: SkipGateStats::default(),
            dff_scratch: Vec::new(),
        }
    }

    /// Initialises constant wires and flip-flop states; returns the wires
    /// (in deterministic order) that need Alice labels / Bob OT.
    fn init_states(&mut self, public: &PartyData) -> (Vec<WireId>, Vec<WireId>) {
        let mut alice_wires = Vec::new();
        let mut bob_wires = Vec::new();
        for &(w, v) in self.circuit.consts() {
            self.states[w.index()] = WireVal::Public(v);
        }
        for dff in self.circuit.dffs() {
            self.states[dff.q.index()] = match dff.init {
                DffInit::Const(v) => WireVal::Public(v),
                DffInit::Public(i) => WireVal::Public(public.init[i as usize]),
                DffInit::Alice(_) => {
                    alice_wires.push(dff.q);
                    WireVal::Secret(self.alloc.fresh())
                }
                DffInit::Bob(_) => {
                    bob_wires.push(dff.q);
                    WireVal::Secret(self.alloc.fresh())
                }
            };
        }
        (alice_wires, bob_wires)
    }

    /// Sets the per-cycle input wire states; secret wires get fresh tags.
    fn set_cycle_inputs(&mut self, cycle: usize, public: &PartyData) {
        let mut pidx = 0usize;
        for input in self.circuit.inputs() {
            self.states[input.wire.index()] = match input.role {
                Role::Public => {
                    let v = public.stream[cycle][pidx];
                    pidx += 1;
                    WireVal::Public(v)
                }
                Role::Alice | Role::Bob => WireVal::Secret(self.alloc.fresh()),
            };
        }
    }

    fn record_frame(&mut self) {
        let frame = self
            .circuit
            .outputs()
            .iter()
            .map(|w| match self.states[w.index()] {
                WireVal::Public(v) => OutBit::Known(v),
                WireVal::Secret(_) => OutBit::Secret,
            })
            .collect();
        self.frames.push(frame);
    }

    fn halted(&self) -> bool {
        self.circuit
            .halt_wire()
            .map(|w| self.states[w.index()] == WireVal::Public(true))
            .unwrap_or(false)
    }

    fn copy_dffs(&mut self) {
        let Shared {
            circuit,
            states,
            dff_scratch,
            ..
        } = self;
        dff_scratch.clear();
        dff_scratch.extend(circuit.dffs().iter().map(|d| states[d.d.index()]));
        for (dff, &v) in circuit.dffs().iter().zip(dff_scratch.iter()) {
            states[dff.q.index()] = v;
        }
    }

    fn absorb_counts(&mut self, counts: &crate::decide::DecisionCounts) {
        self.stats.public_gates += counts.public_out;
        self.stats.pass_gates += counts.pass + counts.aliased;
        self.stats.free_xor += counts.free_xor;
        self.stats.garbled_tables += counts.garbled;
        self.stats.skipped_nonlinear += counts.skipped_nonlinear;
    }

    /// Merges the secret-output values from the colour exchange with the
    /// publicly known bits.
    fn assemble_outputs(&self, secret_values: &[bool]) -> Vec<Vec<bool>> {
        let mut it = secret_values.iter();
        self.frames
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .map(|ob| match ob {
                        OutBit::Known(v) => *v,
                        OutBit::Secret => *it.next().expect("secret output slot"),
                    })
                    .collect()
            })
            .collect()
    }
}

/// Options for the SkipGate engines.
#[derive(Clone, Copy, Debug)]
pub struct SkipGateOptions {
    /// Keep Alg. 4 line 18's dead-gate filtering on (default). Turn off
    /// only for the ablation benchmark.
    pub filter_dead_gates: bool,
}

impl Default for SkipGateOptions {
    fn default() -> Self {
        Self {
            filter_dead_gates: true,
        }
    }
}

/// Full configuration of an in-process two-party run: SkipGate options
/// plus the session layer's OT backend, table-streaming chunking and
/// table-stream sharding.
///
/// `#[non_exhaustive]`: construct with [`TwoPartyConfig::new`] (or
/// `default()`) and the chained setters, not a struct literal. New code
/// should prefer the engine-agnostic
/// [`SessionOptions`](crate::options::SessionOptions) +
/// [`run_two_party_opts`](crate::drive::run_two_party_opts) surface;
/// this type remains the configuration of the legacy
/// [`run_two_party_cfg`] / [`run_two_party_instanced_cfg`] harnesses.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoPartyConfig {
    /// SkipGate decision-engine options.
    pub options: SkipGateOptions,
    /// Which OT stack the parties use.
    pub ot: OtBackend,
    /// The base-OT group for [`OtBackend::NaorPinkasIknp`] (ignored by
    /// the insecure backend). Defaults to the production group.
    pub ot_config: OtConfig,
    /// Garbler-side table-streaming configuration.
    pub stream: StreamConfig,
    /// How many parallel sub-streams carry the table stream.
    pub shards: ShardConfig,
    /// How each cycle's label computations are ordered (netlist-order
    /// wavefront vs precomputed topological layers). Transport-only
    /// for the transcript: both modes are byte-identical on the wire.
    pub schedule: ScheduleMode,
}

impl TwoPartyConfig {
    /// The default configuration (SkipGate defaults, insecure OT,
    /// default streaming, unsharded, netlist schedule).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the SkipGate decision-engine options.
    #[must_use]
    pub fn options(mut self, options: SkipGateOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the OT backend.
    #[must_use]
    pub fn ot(mut self, ot: OtBackend) -> Self {
        self.ot = ot;
        self
    }

    /// Selects the Naor–Pinkas base-OT group.
    #[must_use]
    pub fn ot_config(mut self, ot_config: OtConfig) -> Self {
        self.ot_config = ot_config;
        self
    }

    /// Sets the garbler-side table-streaming configuration.
    #[must_use]
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the table-stream shard configuration.
    #[must_use]
    pub fn shards(mut self, shards: ShardConfig) -> Self {
        self.shards = shards;
        self
    }

    /// Selects the per-cycle execution schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Per-cycle layering plan: fills `ordinals` with each gate's emission
/// slot (its index among `Garble` decisions in netlist order, or
/// `u32::MAX`) and prepares `patch` for the cycle. The decision pass
/// may alias a gate's output to *any* earlier-netlist wire — including
/// one produced at a deeper topological level — and for such a cycle
/// the static levels are re-leveled incrementally: only the aliased
/// gate and its transitively-late dependents move to deeper levels
/// ([`LayerSchedule::relevel_cycle`]); everything else keeps its static
/// slot. Both parties run identical decisions, so they compute the
/// identical patch without coordination. Emission slots are netlist
/// ordinals either way, so the wire transcript never depends on the
/// patch.
///
/// Returns whether the cycle was re-leveled (`patch` is the identity
/// otherwise).
fn layer_cycle_plan(
    sched: &LayerSchedule,
    circuit: &Circuit,
    decisions: &[GateDecision],
    ordinals: &mut Vec<u32>,
    patch: &mut CyclePatch,
) -> bool {
    ordinals.clear();
    ordinals.resize(decisions.len(), u32::MAX);
    let mut next = 0u32;
    let mut safe = true;
    for (gi, d) in decisions.iter().enumerate() {
        match *d {
            GateDecision::Garble => {
                ordinals[gi] = next;
                next += 1;
            }
            GateDecision::Alias { src, .. } => {
                safe &= sched.copy_is_level_safe(gi, src.index());
            }
            _ => {}
        }
    }
    if safe {
        patch.clear();
        return false;
    }
    sched.relevel_cycle(
        circuit,
        |gi| match decisions[gi] {
            GateDecision::PublicOut(_) | GateDecision::Skipped | GateDecision::SkippedFree => {
                CycleDep::Absent
            }
            GateDecision::Pass { from_a, .. } => {
                let g = &circuit.gates()[gi];
                CycleDep::Copy(if from_a { g.a } else { g.b }.index() as u32)
            }
            GateDecision::Alias { src, .. } => CycleDep::Copy(src.index() as u32),
            GateDecision::FreeXor { .. } | GateDecision::Garble => CycleDep::Inputs,
        },
        patch,
    )
}

/// Runs Alice's side (Algorithm 1) with the default streaming
/// configuration: garbles only what SkipGate keeps.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_garbler(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    options: SkipGateOptions,
) -> Result<SkipGateOutcome, ProtocolError> {
    run_skipgate_garbler_with(
        circuit,
        alice,
        public,
        cycles,
        ch,
        ot,
        prg,
        options,
        StreamConfig::default(),
    )
}

/// [`run_skipgate_garbler`] with an explicit table-streaming
/// configuration.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_garbler_with(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    options: SkipGateOptions,
    stream: StreamConfig,
) -> Result<SkipGateOutcome, ProtocolError> {
    run_skipgate_garbler_sharded(
        circuit,
        alice,
        public,
        cycles,
        ch,
        Vec::new(),
        ot,
        prg,
        options,
        stream,
        ShardConfig::single(),
    )
}

/// [`run_skipgate_garbler_with`] over a sharded table stream: each
/// shard's slice of every cycle's surviving tables travels on its own
/// channel from `shard_chs`, framed and sent by a dedicated worker
/// thread. With [`ShardConfig::single`] (and no shard channels) this is
/// exactly [`run_skipgate_garbler_with`].
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_garbler_sharded(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    options: SkipGateOptions,
    stream: StreamConfig,
    shards: ShardConfig,
) -> Result<SkipGateOutcome, ProtocolError> {
    run_skipgate_garbler_scheduled(
        circuit,
        alice,
        public,
        cycles,
        ch,
        shard_chs,
        ot,
        prg,
        options,
        stream,
        shards,
        ScheduleMode::Netlist,
    )
}

/// [`run_skipgate_garbler_sharded`] with an explicit execution
/// schedule. With [`ScheduleMode::Layered`] the circuit is levelled
/// once and the schedule is reused every cycle: each level's surviving
/// `Garble` gates hash in one batch and tables are emitted in netlist
/// order. Cycles whose alias edges the static levels cannot honour are
/// re-leveled incrementally — only the affected gates move to deeper
/// levels for that cycle (both parties compute the identical patch
/// without coordination, since the decision pass is shared) — the
/// transcript is byte-identical to the netlist-order walk either way.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_garbler_scheduled(
    circuit: &Circuit,
    alice: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    options: SkipGateOptions,
    stream: StreamConfig,
    shards: ShardConfig,
    mode: ScheduleMode,
) -> Result<SkipGateOutcome, ProtocolError> {
    let mut session = GarblerSession::establish_sharded(ch, shard_chs, ot, prg, stream, shards)?;
    let d = session.delta().as_label();
    let garbler = HalfGateGarbler::new(session.delta());
    let mut shared = Shared::new(circuit, options.filter_dead_gates);
    let mut labels = vec![Label::ZERO; circuit.wire_count()];

    // --- Input labels ---------------------------------------------------
    let (alice_wires, bob_wires) = shared.init_states(public);
    let mut direct = Vec::new();
    let mut ot_pairs = Vec::new();
    for (w, dff) in circuit
        .dffs()
        .iter()
        .filter(|f| matches!(f.init, DffInit::Alice(_)))
        .map(|f| (f.q, f))
    {
        let x0 = session.fresh_label();
        labels[w.index()] = x0;
        let DffInit::Alice(i) = dff.init else {
            unreachable!()
        };
        direct.push(if alice.init[i as usize] { x0 ^ d } else { x0 });
    }
    for dff in circuit
        .dffs()
        .iter()
        .filter(|f| matches!(f.init, DffInit::Bob(_)))
    {
        let x0 = session.fresh_label();
        labels[dff.q.index()] = x0;
        ot_pairs.push((x0, x0 ^ d));
    }
    debug_assert_eq!(alice_wires.len(), direct.len());
    debug_assert_eq!(bob_wires.len(), ot_pairs.len());

    // Per-cycle secret input labels, generated up front.
    let mut stream_labels: Vec<Vec<(WireId, Label)>> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let mut per_cycle = Vec::new();
        let mut aidx = 0usize;
        for input in circuit.inputs() {
            match input.role {
                Role::Alice => {
                    let x0 = session.fresh_label();
                    let v = alice.stream[cycle][aidx];
                    aidx += 1;
                    direct.push(if v { x0 ^ d } else { x0 });
                    per_cycle.push((input.wire, x0));
                }
                Role::Bob => {
                    let x0 = session.fresh_label();
                    ot_pairs.push((x0, x0 ^ d));
                    per_cycle.push((input.wire, x0));
                }
                Role::Public => {}
            }
        }
        stream_labels.push(per_cycle);
    }
    session.send_direct_labels(&direct)?;
    session.ot_send(&ot_pairs)?;

    // --- Cycle loop -------------------------------------------------------
    // Surviving gates are batched for the wide AES core: netlist mode
    // discovers wavefronts inside the netlist-order walk; layered mode
    // executes the precomputed level schedule (computed once here,
    // reused every cycle). The table stream stays byte-identical to a
    // sequential walk in both modes.
    let schedule = match mode {
        ScheduleMode::Netlist => None,
        ScheduleMode::Layered => Some(LayerSchedule::of(circuit)),
    };
    let mut wavefront = GarbleWavefront::new(circuit.wire_count());
    let mut layered = schedule.as_ref().map(|s| GarbleLayered::new(s.levels()));
    let mut ordinals: Vec<u32> = Vec::new();
    let mut patch = CyclePatch::new();
    let mut releveled_cycles = 0u64;
    let mut patched_gates = 0u64;
    let mut tweak = 0u64;
    let mut decode_bits: Vec<bool> = Vec::new();
    let mut next_dffs: Vec<Label> = Vec::new();
    for (cycle, cycle_labels) in stream_labels.iter().enumerate() {
        shared.set_cycle_inputs(cycle, public);
        for &(w, x0) in cycle_labels {
            labels[w.index()] = x0;
        }
        let is_last = cycle + 1 == cycles;
        let decisions = {
            let Shared {
                ctx, states, alloc, ..
            } = &mut shared;
            ctx.decide_cycle(states, alloc, is_last)
        };
        shared.absorb_counts(&decisions.counts);
        session.begin_cycle(decisions.counts.garbled as usize);

        if let Some(sched) = schedule.as_ref() {
            if layer_cycle_plan(
                sched,
                circuit,
                &decisions.decisions,
                &mut ordinals,
                &mut patch,
            ) {
                releveled_cycles += 1;
                patched_gates += patch.moved_gates();
            }
            let drv = layered.as_mut().expect("layered mode implies driver");
            drv.begin_cycle(decisions.counts.garbled as usize);
            // One decision application, shared by the static walk and
            // the patched (moved-gate) walk below.
            let apply = |gi: usize, labels: &mut [Label], drv: &mut GarbleLayered| {
                let gate = &circuit.gates()[gi];
                match decisions.decisions[gi] {
                    GateDecision::PublicOut(_)
                    | GateDecision::Skipped
                    | GateDecision::SkippedFree => {}
                    GateDecision::Pass { from_a, flip } => {
                        let src = if from_a { gate.a } else { gate.b };
                        labels[gate.out.index()] =
                            labels[src.index()] ^ if flip { d } else { Label::ZERO };
                    }
                    GateDecision::Alias { src, flip } => {
                        labels[gate.out.index()] =
                            labels[src.index()] ^ if flip { d } else { Label::ZERO };
                    }
                    GateDecision::FreeXor { flip } => {
                        labels[gate.out.index()] = labels[gate.a.index()]
                            ^ labels[gate.b.index()]
                            ^ if flip { d } else { Label::ZERO };
                    }
                    GateDecision::Garble => {
                        let slot = ordinals[gi] as usize;
                        drv.garble(
                            labels,
                            gate.op,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                            tweak + slot as u64,
                            slot,
                        );
                    }
                }
            };
            for level in 0..sched.levels().max(patch.levels()) {
                if level < sched.levels() {
                    for &gi in sched.level_gates(level) {
                        let gi = gi as usize;
                        if patch.is_moved(gi) {
                            continue;
                        }
                        apply(gi, &mut labels, drv);
                    }
                }
                for &gi in patch.moved_at(level) {
                    apply(gi as usize, &mut labels, drv);
                }
                drv.end_level(&garbler, &mut labels);
            }
            drv.end_cycle(&mut |t| session.push_table(&t.to_bytes()))?;
            tweak += decisions.counts.garbled;
        } else {
            for (gate, decision) in circuit.gates().iter().zip(&decisions.decisions) {
                match *decision {
                    GateDecision::PublicOut(_)
                    | GateDecision::Skipped
                    | GateDecision::SkippedFree => {}
                    GateDecision::Pass { from_a, flip } => {
                        let src = if from_a { gate.a } else { gate.b };
                        wavefront.copy(&garbler, &mut labels, src.index(), gate.out.index(), flip);
                    }
                    GateDecision::Alias { src, flip } => {
                        wavefront.copy(&garbler, &mut labels, src.index(), gate.out.index(), flip);
                    }
                    GateDecision::FreeXor { flip } => {
                        wavefront.xor(
                            &garbler,
                            &mut labels,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                            flip,
                        );
                    }
                    GateDecision::Garble => {
                        wavefront.garble(
                            &garbler,
                            &mut labels,
                            gate.op,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                            tweak,
                            &mut |t| session.push_table(&t.to_bytes()),
                        )?;
                        tweak += 1;
                    }
                }
            }
            wavefront.flush(&garbler, &mut labels, &mut |t| {
                session.push_table(&t.to_bytes())
            })?;
        }
        session.end_cycle()?;

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            shared.record_frame();
            decode_bits.extend(
                circuit
                    .outputs()
                    .iter()
                    .filter(|&w| shared.states[w.index()].is_secret())
                    .map(|w| labels[w.index()].colour()),
            );
        }
        let halted = shared.halted();

        // Flip-flop copies: states and labels.
        next_dffs.clear();
        next_dffs.extend(circuit.dffs().iter().map(|f| labels[f.d.index()]));
        for (dff, &l) in circuit.dffs().iter().zip(next_dffs.iter()) {
            labels[dff.q.index()] = l;
        }
        shared.copy_dffs();
        shared.stats.cycles_run = cycle + 1;
        if halted {
            break;
        }
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        shared.record_frame();
        decode_bits.extend(
            circuit
                .outputs()
                .iter()
                .filter(|&w| shared.states[w.index()].is_secret())
                .map(|w| labels[w.index()].colour()),
        );
    }

    // --- Output revelation -------------------------------------------------
    let secret_values = session.reveal_outputs(&decode_bits)?;
    let outputs = shared.assemble_outputs(&secret_values);
    let mut stats = shared.stats;
    stats.ots = session.stats().ots;
    stats.table_bytes = session.stats().table_bytes;
    stats.garbled_tables = session.stats().garbled_tables;
    // Exactly one driver ran, but merging both keeps the accounting
    // uniform across modes.
    let mut batching = wavefront.stats();
    if let Some(drv) = layered {
        batching.absorb(drv.stats());
    }
    batching.releveled_cycles = releveled_cycles;
    batching.patched_gates = patched_gates;
    Ok(SkipGateOutcome {
        outputs,
        stats,
        batching,
    })
}

/// Runs Bob's side (Algorithm 2): evaluates only what SkipGate keeps.
///
/// Unlike the classic baseline, Bob needs the public input `p` — that is
/// the whole point of SkipGate.
///
/// # Errors
/// Propagates channel and OT failures.
pub fn run_skipgate_evaluator(
    circuit: &Circuit,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    ot: &mut dyn OtReceiver,
    options: SkipGateOptions,
) -> Result<SkipGateOutcome, ProtocolError> {
    run_skipgate_evaluator_sharded(
        circuit,
        bob,
        public,
        cycles,
        ch,
        Vec::new(),
        ot,
        options,
        ShardConfig::single(),
    )
}

/// [`run_skipgate_evaluator`] over a sharded table stream; the mirror
/// of [`run_skipgate_garbler_sharded`].
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_evaluator_sharded(
    circuit: &Circuit,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    options: SkipGateOptions,
    shards: ShardConfig,
) -> Result<SkipGateOutcome, ProtocolError> {
    run_skipgate_evaluator_scheduled(
        circuit,
        bob,
        public,
        cycles,
        ch,
        shard_chs,
        ot,
        options,
        shards,
        ScheduleMode::Netlist,
    )
}

/// [`run_skipgate_evaluator_sharded`] with an explicit execution
/// schedule; the mirror of [`run_skipgate_garbler_scheduled`]. The
/// transcript does not depend on either party's mode.
///
/// # Errors
/// Propagates channel and OT failures.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_evaluator_scheduled(
    circuit: &Circuit,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    options: SkipGateOptions,
    shards: ShardConfig,
    mode: ScheduleMode,
) -> Result<SkipGateOutcome, ProtocolError> {
    let evaluator = HalfGateEvaluator::new();
    let mut session =
        EvaluatorSession::establish_sharded(ch, shard_chs, ot, GarbledTable::BYTES, shards)?;
    let mut shared = Shared::new(circuit, options.filter_dead_gates);
    let mut active = vec![Label::ZERO; circuit.wire_count()];

    // --- Input labels -----------------------------------------------------
    let (alice_wires, bob_wires) = shared.init_states(public);
    let mut direct = session.recv_direct_labels()?.into_iter();
    for &w in &alice_wires {
        active[w.index()] = direct
            .next()
            .ok_or(ProtocolError::Malformed("alice dffs"))?;
    }

    let mut choices = Vec::new();
    for dff in circuit.dffs() {
        if let DffInit::Bob(i) = dff.init {
            choices.push(bob.init[i as usize]);
        }
    }
    // Per-cycle stream: walk in garbler order, collecting Bob choices and
    // Alice labels.
    let mut stream_slots: Vec<Vec<(WireId, Option<Label>)>> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let mut per_cycle = Vec::new();
        let mut bidx = 0usize;
        for input in circuit.inputs() {
            match input.role {
                Role::Alice => {
                    let l = direct.next().ok_or(ProtocolError::Malformed("stream"))?;
                    per_cycle.push((input.wire, Some(l)));
                }
                Role::Bob => {
                    choices.push(bob.stream[cycle][bidx]);
                    bidx += 1;
                    per_cycle.push((input.wire, None));
                }
                Role::Public => {}
            }
        }
        stream_slots.push(per_cycle);
    }
    let mut ot_iter = session.ot_receive(&choices)?.into_iter();
    for &w in &bob_wires {
        active[w.index()] = ot_iter.next().ok_or(ProtocolError::Malformed("bob ot"))?;
    }
    for per_cycle in &mut stream_slots {
        for (_, slot) in per_cycle.iter_mut() {
            if slot.is_none() {
                *slot = Some(ot_iter.next().ok_or(ProtocolError::Malformed("bob ot2"))?);
            }
        }
    }

    // --- Cycle loop ---------------------------------------------------------
    // Mirror of the garbler's scheduling: netlist mode pulls tables in
    // gate order as it walks; layered mode pulls the cycle's surviving
    // tables up front (same byte consumption) and hashes per schedule
    // level, re-leveling exactly the cycles the garbler does (the
    // decision pass is shared and deterministic).
    let schedule = match mode {
        ScheduleMode::Netlist => None,
        ScheduleMode::Layered => Some(LayerSchedule::of(circuit)),
    };
    let mut wavefront = EvalWavefront::new(circuit.wire_count());
    let mut layered = schedule.as_ref().map(|s| EvalLayered::new(s.levels()));
    let mut ordinals: Vec<u32> = Vec::new();
    let mut cycle_tables: Vec<GarbledTable> = Vec::new();
    let mut patch = CyclePatch::new();
    let mut releveled_cycles = 0u64;
    let mut patched_gates = 0u64;
    let mut tweak = 0u64;
    let mut my_colours: Vec<bool> = Vec::new();
    let mut next_dffs: Vec<Label> = Vec::new();
    for (cycle, cycle_slots) in stream_slots.iter().enumerate() {
        shared.set_cycle_inputs(cycle, public);
        for &(w, l) in cycle_slots {
            active[w.index()] = l.expect("filled above");
        }
        let is_last = cycle + 1 == cycles;
        let decisions = {
            let Shared {
                ctx, states, alloc, ..
            } = &mut shared;
            ctx.decide_cycle(states, alloc, is_last)
        };
        shared.absorb_counts(&decisions.counts);
        session.begin_cycle(decisions.counts.garbled as usize);

        if let Some(sched) = schedule.as_ref() {
            if layer_cycle_plan(
                sched,
                circuit,
                &decisions.decisions,
                &mut ordinals,
                &mut patch,
            ) {
                releveled_cycles += 1;
                patched_gates += patch.moved_gates();
            }
            let drv = layered.as_mut().expect("layered mode implies driver");
            cycle_tables.clear();
            for _ in 0..decisions.counts.garbled {
                cycle_tables.push(GarbledTable::from_bytes(
                    session.next_table(GarbledTable::BYTES)?,
                ));
            }
            let cycle_tables = &cycle_tables;
            let apply = |gi: usize, active: &mut [Label], drv: &mut EvalLayered| {
                let gate = &circuit.gates()[gi];
                match decisions.decisions[gi] {
                    GateDecision::PublicOut(_)
                    | GateDecision::Skipped
                    | GateDecision::SkippedFree => {}
                    GateDecision::Pass { from_a, .. } => {
                        let src = if from_a { gate.a } else { gate.b };
                        active[gate.out.index()] = active[src.index()];
                    }
                    GateDecision::Alias { src, .. } => {
                        active[gate.out.index()] = active[src.index()];
                    }
                    GateDecision::FreeXor { .. } => {
                        active[gate.out.index()] = active[gate.a.index()] ^ active[gate.b.index()];
                    }
                    GateDecision::Garble => {
                        let slot = ordinals[gi] as usize;
                        drv.eval(
                            active,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                            cycle_tables[slot],
                            tweak + slot as u64,
                        );
                    }
                }
            };
            for level in 0..sched.levels().max(patch.levels()) {
                if level < sched.levels() {
                    for &gi in sched.level_gates(level) {
                        let gi = gi as usize;
                        if patch.is_moved(gi) {
                            continue;
                        }
                        apply(gi, &mut active, drv);
                    }
                }
                for &gi in patch.moved_at(level) {
                    apply(gi as usize, &mut active, drv);
                }
                drv.end_level(&evaluator, &mut active);
            }
            tweak += decisions.counts.garbled;
        } else {
            for (gate, decision) in circuit.gates().iter().zip(&decisions.decisions) {
                match *decision {
                    GateDecision::PublicOut(_)
                    | GateDecision::Skipped
                    | GateDecision::SkippedFree => {}
                    GateDecision::Pass { from_a, .. } => {
                        let src = if from_a { gate.a } else { gate.b };
                        wavefront.copy(&mut active, src.index(), gate.out.index());
                    }
                    GateDecision::Alias { src, .. } => {
                        wavefront.copy(&mut active, src.index(), gate.out.index());
                    }
                    GateDecision::FreeXor { .. } => {
                        wavefront.xor(
                            &mut active,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                        );
                    }
                    GateDecision::Garble => {
                        let t = GarbledTable::from_bytes(session.next_table(GarbledTable::BYTES)?);
                        wavefront.eval(
                            &evaluator,
                            &mut active,
                            gate.a.index(),
                            gate.b.index(),
                            gate.out.index(),
                            t,
                            tweak,
                        );
                        tweak += 1;
                    }
                }
            }
            wavefront.flush(&evaluator, &mut active);
        }

        if matches!(circuit.output_mode(), OutputMode::PerCycle) {
            shared.record_frame();
            my_colours.extend(
                circuit
                    .outputs()
                    .iter()
                    .filter(|&w| shared.states[w.index()].is_secret())
                    .map(|w| active[w.index()].colour()),
            );
        }
        let halted = shared.halted();

        next_dffs.clear();
        next_dffs.extend(circuit.dffs().iter().map(|f| active[f.d.index()]));
        for (dff, &l) in circuit.dffs().iter().zip(next_dffs.iter()) {
            active[dff.q.index()] = l;
        }
        shared.copy_dffs();
        shared.stats.cycles_run = cycle + 1;
        if halted {
            break;
        }
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        shared.record_frame();
        my_colours.extend(
            circuit
                .outputs()
                .iter()
                .filter(|&w| shared.states[w.index()].is_secret())
                .map(|w| active[w.index()].colour()),
        );
    }

    // --- Output revelation ----------------------------------------------
    let secret_values = session.reveal_outputs(&my_colours)?;
    let outputs = shared.assemble_outputs(&secret_values);
    let mut stats = shared.stats;
    stats.ots = session.stats().ots;
    stats.table_bytes = session.stats().table_bytes;
    stats.garbled_tables = session.stats().garbled_tables;
    let mut batching = wavefront.stats();
    if let Some(drv) = layered {
        batching.absorb(drv.stats());
    }
    batching.releveled_cycles = releveled_cycles;
    batching.patched_gates = patched_gates;
    Ok(SkipGateOutcome {
        outputs,
        stats,
        batching,
    })
}

/// Result of a cross-instance batched SkipGate run
/// ([`run_skipgate_garbler_instanced`] /
/// [`run_skipgate_evaluator_instanced`]).
#[derive(Clone, Debug)]
pub struct InstancedOutcome {
    /// Per-lane outcomes. Outputs and protocol cost counters are
    /// exactly what `lanes.len()` independent sequential runs on the
    /// same inputs would produce. Each lane's `batching` is a copy of
    /// the session-wide [`InstancedOutcome::batching`]: batch widths
    /// are a property of the whole instanced run, not of one lane.
    pub lanes: Vec<SkipGateOutcome>,
    /// Session-wide batching occupancy: every level's surviving
    /// nonlinear gates across *all* active lanes hash in one batch, so
    /// `instances` is the lane count and batch widths grow up to N×
    /// over a single run.
    pub batching: WavefrontStats,
}

/// One lane's per-cycle streamed-input slots: Alice labels arrive with
/// the direct batch; Bob slots start `None` and are filled from OT.
type LaneStreamSlots = Vec<Vec<(WireId, Option<Label>)>>;

/// Per-lane layering plan for one instanced cycle. Lanes diverge only
/// through their public inputs, so decision vectors usually agree;
/// when a lane's vector equals the cycle's first active lane's, the
/// plan is not recomputed — `reuse_first` marks it and the level walk
/// borrows the first lane's ordinals and patch instead.
struct LanePlan {
    ordinals: Vec<u32>,
    patch: CyclePatch,
    releveled: bool,
    reuse_first: bool,
}

/// Applies one lane's decision for gate `gi` against the
/// struct-of-arrays label store (wire `w`, lane `l` at `w * n + l`).
/// `Garble` gates enqueue into the shared instanced driver: the merged
/// slot (gate-major, lane-minor across active lanes) fixes the table's
/// position in the cycle's wire stream, while the tweak stays
/// lane-local (`lane_tweak` + the lane's netlist ordinal) so each
/// lane's tables are bit-identical to its sequential run.
#[allow(clippy::too_many_arguments)]
fn apply_instanced_garble(
    circuit: &Circuit,
    n: usize,
    lane: usize,
    d: Label,
    dec: &CycleDecisions,
    ordinals: &[u32],
    merged: &[u32],
    lane_tweak: u64,
    gi: usize,
    labels: &mut [Label],
    drv: &mut GarbleInstanced,
) {
    let gate = &circuit.gates()[gi];
    let idx = |w: WireId| w.index() * n + lane;
    match dec.decisions[gi] {
        GateDecision::PublicOut(_) | GateDecision::Skipped | GateDecision::SkippedFree => {}
        GateDecision::Pass { from_a, flip } => {
            let src = if from_a { gate.a } else { gate.b };
            labels[idx(gate.out)] = labels[idx(src)] ^ if flip { d } else { Label::ZERO };
        }
        GateDecision::Alias { src, flip } => {
            labels[idx(gate.out)] = labels[idx(src)] ^ if flip { d } else { Label::ZERO };
        }
        GateDecision::FreeXor { flip } => {
            labels[idx(gate.out)] =
                labels[idx(gate.a)] ^ labels[idx(gate.b)] ^ if flip { d } else { Label::ZERO };
        }
        GateDecision::Garble => {
            let lane_slot = ordinals[gi] as usize;
            drv.garble(
                labels,
                gate.op,
                idx(gate.a),
                idx(gate.b),
                idx(gate.out),
                lane_tweak + lane_slot as u64,
                merged[gi * n + lane] as usize,
            );
        }
    }
}

/// Evaluator mirror of [`apply_instanced_garble`]: the merged slot
/// selects the lane's table from the cycle's up-front pull.
#[allow(clippy::too_many_arguments)]
fn apply_instanced_eval(
    circuit: &Circuit,
    n: usize,
    lane: usize,
    dec: &CycleDecisions,
    ordinals: &[u32],
    merged: &[u32],
    cycle_tables: &[GarbledTable],
    lane_tweak: u64,
    gi: usize,
    active: &mut [Label],
    drv: &mut EvalInstanced,
) {
    let gate = &circuit.gates()[gi];
    let idx = |w: WireId| w.index() * n + lane;
    match dec.decisions[gi] {
        GateDecision::PublicOut(_) | GateDecision::Skipped | GateDecision::SkippedFree => {}
        GateDecision::Pass { from_a, .. } => {
            let src = if from_a { gate.a } else { gate.b };
            active[idx(gate.out)] = active[idx(src)];
        }
        GateDecision::Alias { src, .. } => {
            active[idx(gate.out)] = active[idx(src)];
        }
        GateDecision::FreeXor { .. } => {
            active[idx(gate.out)] = active[idx(gate.a)] ^ active[idx(gate.b)];
        }
        GateDecision::Garble => {
            let lane_slot = ordinals[gi] as usize;
            drv.eval(
                active,
                idx(gate.a),
                idx(gate.b),
                idx(gate.out),
                cycle_tables[merged[gi * n + lane] as usize],
                lane_tweak + lane_slot as u64,
            );
        }
    }
}

/// Runs Alice's side for `alices.len()` independent instances of the
/// same circuit in one session: per-lane inputs and per-lane SkipGate
/// decisions, but one shared [`LayerSchedule`] and one label wavefront
/// — each level's surviving nonlinear gates across every active lane
/// hash through the wide AES core in a single batch. Lanes halt
/// independently; the session ends when every lane has halted or the
/// cycle budget runs out.
///
/// Wire format: the handshake announces the lane count
/// ([`arm2gc_proto::Message::Instances`], protocol v2); input labels,
/// OT pairs and output decode bits are concatenated lane-major; each
/// cycle's tables interleave gate-major/lane-minor. With one lane
/// nothing is announced and the transcript is byte-identical to
/// [`run_skipgate_garbler_scheduled`] in layered mode.
///
/// Instanced execution is always layer-scheduled — the
/// struct-of-arrays batching is the point — so there is no
/// [`ScheduleMode`] parameter.
///
/// # Errors
/// Propagates channel and OT failures.
///
/// # Panics
/// Panics if `alices` and `publics` disagree in length, or if the lane
/// count is zero or exceeds `u16::MAX`.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_garbler_instanced(
    circuit: &Circuit,
    alices: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtSender,
    prg: &mut Prg,
    options: SkipGateOptions,
    stream: StreamConfig,
    shards: ShardConfig,
) -> Result<InstancedOutcome, ProtocolError> {
    let n = alices.len();
    assert_eq!(n, publics.len(), "one public input set per lane");
    assert!(
        (1..=u16::MAX as usize).contains(&n),
        "lane count out of range"
    );
    let mut session =
        GarblerSession::establish_instanced(ch, shard_chs, ot, prg, stream, shards, n as u16)?;
    let d = session.delta().as_label();
    let garbler = HalfGateGarbler::new(session.delta());
    let mut lanes: Vec<Shared> = (0..n)
        .map(|_| Shared::new(circuit, options.filter_dead_gates))
        .collect();
    // Struct-of-arrays labels: wire `w`, lane `l` at `w * n + l`.
    let mut labels = vec![Label::ZERO; circuit.wire_count() * n];

    // --- Input labels, lane-major ----------------------------------------
    // Lane 0 draws exactly the labels a single-instance session would,
    // so the N=1 transcript is pinned byte-identical.
    let mut direct = Vec::new();
    let mut ot_pairs = Vec::new();
    let mut lane_ots = vec![0u64; n];
    let mut stream_labels: Vec<Vec<Vec<(WireId, Label)>>> = Vec::with_capacity(n);
    for (lane, shared) in lanes.iter_mut().enumerate() {
        let (_alice_wires, _bob_wires) = shared.init_states(&publics[lane]);
        let pairs_before = ot_pairs.len();
        for dff in circuit
            .dffs()
            .iter()
            .filter(|f| matches!(f.init, DffInit::Alice(_)))
        {
            let x0 = session.fresh_label();
            labels[dff.q.index() * n + lane] = x0;
            let DffInit::Alice(i) = dff.init else {
                unreachable!()
            };
            direct.push(if alices[lane].init[i as usize] {
                x0 ^ d
            } else {
                x0
            });
        }
        for dff in circuit
            .dffs()
            .iter()
            .filter(|f| matches!(f.init, DffInit::Bob(_)))
        {
            let x0 = session.fresh_label();
            labels[dff.q.index() * n + lane] = x0;
            ot_pairs.push((x0, x0 ^ d));
        }
        let mut per_lane = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let mut per_cycle = Vec::new();
            let mut aidx = 0usize;
            for input in circuit.inputs() {
                match input.role {
                    Role::Alice => {
                        let x0 = session.fresh_label();
                        let v = alices[lane].stream[cycle][aidx];
                        aidx += 1;
                        direct.push(if v { x0 ^ d } else { x0 });
                        per_cycle.push((input.wire, x0));
                    }
                    Role::Bob => {
                        let x0 = session.fresh_label();
                        ot_pairs.push((x0, x0 ^ d));
                        per_cycle.push((input.wire, x0));
                    }
                    Role::Public => {}
                }
            }
            per_lane.push(per_cycle);
        }
        stream_labels.push(per_lane);
        lane_ots[lane] = (ot_pairs.len() - pairs_before) as u64;
    }
    session.send_direct_labels(&direct)?;
    session.ot_send(&ot_pairs)?;

    // --- Cycle loop -------------------------------------------------------
    let sched = LayerSchedule::of(circuit);
    let mut drv = GarbleInstanced::new(sched.levels(), n);
    let mut plans: Vec<LanePlan> = (0..n)
        .map(|_| LanePlan {
            ordinals: Vec::new(),
            patch: CyclePatch::new(),
            releveled: false,
            reuse_first: false,
        })
        .collect();
    let mut decisions: Vec<Option<CycleDecisions>> = (0..n).map(|_| None).collect();
    let mut merged: Vec<u32> = Vec::new();
    let mut releveled_cycles = 0u64;
    let mut patched_gates = 0u64;
    // Per-lane tweak streams: disjoint by the lane tag in the high
    // bits, and lane 0's stream matches a sequential run exactly.
    let mut lane_tweaks: Vec<u64> = (0..n).map(|l| (l as u64) << 48).collect();
    let mut lane_active = vec![true; n];
    let mut decode_bits: Vec<Vec<bool>> = vec![Vec::new(); n];
    let mut next_dffs: Vec<Label> = Vec::new();
    // `cycle` indexes per-lane structures inside the lane loop, which
    // an enumerate over any single one of them cannot express.
    #[allow(clippy::needless_range_loop)]
    for cycle in 0..cycles {
        if !lane_active.iter().any(|&a| a) {
            break;
        }
        let is_last = cycle + 1 == cycles;
        for lane in 0..n {
            if !lane_active[lane] {
                decisions[lane] = None;
                continue;
            }
            let shared = &mut lanes[lane];
            shared.set_cycle_inputs(cycle, &publics[lane]);
            for &(w, x0) in &stream_labels[lane][cycle] {
                labels[w.index() * n + lane] = x0;
            }
            let dec = {
                let Shared {
                    ctx, states, alloc, ..
                } = shared;
                ctx.decide_cycle(states, alloc, is_last)
            };
            shared.absorb_counts(&dec.counts);
            decisions[lane] = Some(dec);
        }

        // Layering plans, with first-active-lane reuse when decision
        // vectors agree.
        let mut first: Option<usize> = None;
        for lane in 0..n {
            let Some(dec) = decisions[lane].as_ref() else {
                continue;
            };
            let reuse = first.is_some_and(|f| {
                decisions[f]
                    .as_ref()
                    .expect("first lane is active")
                    .decisions
                    == dec.decisions
            });
            plans[lane].reuse_first = reuse;
            if reuse {
                continue;
            }
            let plan = &mut plans[lane];
            plan.releveled = layer_cycle_plan(
                &sched,
                circuit,
                &dec.decisions,
                &mut plan.ordinals,
                &mut plan.patch,
            );
            if first.is_none() {
                first = Some(lane);
            }
        }
        let first = first.unwrap_or(0);
        let plan_of = |lane: usize, plans: &'_ [LanePlan]| -> usize {
            if plans[lane].reuse_first {
                first
            } else {
                lane
            }
        };
        let mut max_levels = sched.levels();
        for lane in 0..n {
            if decisions[lane].is_none() {
                continue;
            }
            let plan = &plans[plan_of(lane, &plans)];
            if plan.releveled {
                releveled_cycles += 1;
                patched_gates += plan.patch.moved_gates();
            }
            max_levels = max_levels.max(plan.patch.levels());
        }

        // Merged emission slots: gate-major, lane-minor over the
        // active lanes, reducing to plain netlist ordinals at N=1.
        let total: usize = decisions
            .iter()
            .flatten()
            .map(|dec| dec.counts.garbled as usize)
            .sum();
        session.begin_cycle(total);
        drv.begin_cycle(total);
        merged.clear();
        merged.resize(circuit.gates().len() * n, u32::MAX);
        let mut next_slot = 0u32;
        for gi in 0..circuit.gates().len() {
            for (lane, dec) in decisions.iter().enumerate() {
                if let Some(dec) = dec {
                    if matches!(dec.decisions[gi], GateDecision::Garble) {
                        merged[gi * n + lane] = next_slot;
                        next_slot += 1;
                    }
                }
            }
        }
        debug_assert_eq!(next_slot as usize, total);

        for level in 0..max_levels {
            for lane in 0..n {
                let Some(dec) = decisions[lane].as_ref() else {
                    continue;
                };
                let plan = &plans[plan_of(lane, &plans)];
                if level < sched.levels() {
                    for &gi in sched.level_gates(level) {
                        let gi = gi as usize;
                        if plan.patch.is_moved(gi) {
                            continue;
                        }
                        apply_instanced_garble(
                            circuit,
                            n,
                            lane,
                            d,
                            dec,
                            &plan.ordinals,
                            &merged,
                            lane_tweaks[lane],
                            gi,
                            &mut labels,
                            &mut drv,
                        );
                    }
                }
                for &gi in plan.patch.moved_at(level) {
                    apply_instanced_garble(
                        circuit,
                        n,
                        lane,
                        d,
                        dec,
                        &plan.ordinals,
                        &merged,
                        lane_tweaks[lane],
                        gi as usize,
                        &mut labels,
                        &mut drv,
                    );
                }
            }
            drv.end_level(&garbler, &mut labels);
        }
        drv.end_cycle(&mut |t| session.push_table(&t.to_bytes()))?;
        session.end_cycle()?;

        for lane in 0..n {
            let Some(dec) = decisions[lane].as_ref() else {
                continue;
            };
            lane_tweaks[lane] += dec.counts.garbled;
            let shared = &mut lanes[lane];
            if matches!(circuit.output_mode(), OutputMode::PerCycle) {
                shared.record_frame();
                decode_bits[lane].extend(
                    circuit
                        .outputs()
                        .iter()
                        .filter(|&w| shared.states[w.index()].is_secret())
                        .map(|w| labels[w.index() * n + lane].colour()),
                );
            }
            let halted = shared.halted();
            // Flip-flop copies happen on the halt cycle too, exactly
            // as in the sequential engines.
            next_dffs.clear();
            next_dffs.extend(
                circuit
                    .dffs()
                    .iter()
                    .map(|f| labels[f.d.index() * n + lane]),
            );
            for (dff, &l) in circuit.dffs().iter().zip(next_dffs.iter()) {
                labels[dff.q.index() * n + lane] = l;
            }
            shared.copy_dffs();
            shared.stats.cycles_run = cycle + 1;
            if halted {
                lane_active[lane] = false;
            }
        }
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        for (lane, shared) in lanes.iter_mut().enumerate() {
            shared.record_frame();
            decode_bits[lane].extend(
                circuit
                    .outputs()
                    .iter()
                    .filter(|&w| shared.states[w.index()].is_secret())
                    .map(|w| labels[w.index() * n + lane].colour()),
            );
        }
    }

    // --- Output revelation: one lane-major colour exchange ----------------
    let all_bits: Vec<bool> = decode_bits.iter().flatten().copied().collect();
    let secret_values = session.reveal_outputs(&all_bits)?;
    let mut batching = drv.stats();
    batching.releveled_cycles = releveled_cycles;
    batching.patched_gates = patched_gates;
    let mut out_lanes = Vec::with_capacity(n);
    let mut off = 0usize;
    for (lane, shared) in lanes.into_iter().enumerate() {
        let take = decode_bits[lane].len();
        let outputs = shared.assemble_outputs(&secret_values[off..off + take]);
        off += take;
        let mut stats = shared.stats;
        stats.table_bytes = stats.garbled_tables * GarbledTable::BYTES as u64;
        stats.ots = lane_ots[lane];
        out_lanes.push(SkipGateOutcome {
            outputs,
            stats,
            batching,
        });
    }
    Ok(InstancedOutcome {
        lanes: out_lanes,
        batching,
    })
}

/// Runs Bob's side for `bobs.len()` independent instances of the same
/// circuit in one session; the mirror of
/// [`run_skipgate_garbler_instanced`]. Each cycle's merged table
/// stream is pulled up front and indexed by the shared gate-major/
/// lane-minor slot assignment, which both parties compute from the
/// (deterministic, public-data-only) decision pass without
/// coordination.
///
/// # Errors
/// Propagates channel and OT failures.
///
/// # Panics
/// Panics if `bobs` and `publics` disagree in length, or if the lane
/// count is zero or exceeds `u16::MAX`.
#[allow(clippy::too_many_arguments)]
pub fn run_skipgate_evaluator_instanced(
    circuit: &Circuit,
    bobs: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    ch: &mut dyn Channel,
    shard_chs: Vec<Box<dyn Channel>>,
    ot: &mut dyn OtReceiver,
    options: SkipGateOptions,
    shards: ShardConfig,
) -> Result<InstancedOutcome, ProtocolError> {
    let n = bobs.len();
    assert_eq!(n, publics.len(), "one public input set per lane");
    assert!(
        (1..=u16::MAX as usize).contains(&n),
        "lane count out of range"
    );
    let evaluator = HalfGateEvaluator::new();
    let mut session = EvaluatorSession::establish_instanced(
        ch,
        shard_chs,
        ot,
        GarbledTable::BYTES,
        shards,
        n as u16,
    )?;
    let mut lanes: Vec<Shared> = (0..n)
        .map(|_| Shared::new(circuit, options.filter_dead_gates))
        .collect();
    let mut active = vec![Label::ZERO; circuit.wire_count() * n];

    // --- Input labels, lane-major -----------------------------------------
    let mut direct = session.recv_direct_labels()?.into_iter();
    let mut choices = Vec::new();
    let mut lane_ots = vec![0u64; n];
    let mut bob_wires_by_lane: Vec<Vec<WireId>> = Vec::with_capacity(n);
    let mut stream_slots: Vec<LaneStreamSlots> = Vec::with_capacity(n);
    for (lane, shared) in lanes.iter_mut().enumerate() {
        let (alice_wires, bob_wires) = shared.init_states(&publics[lane]);
        for &w in &alice_wires {
            active[w.index() * n + lane] = direct
                .next()
                .ok_or(ProtocolError::Malformed("alice dffs"))?;
        }
        let before = choices.len();
        for dff in circuit.dffs() {
            if let DffInit::Bob(i) = dff.init {
                choices.push(bobs[lane].init[i as usize]);
            }
        }
        let mut per_lane = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let mut per_cycle = Vec::new();
            let mut bidx = 0usize;
            for input in circuit.inputs() {
                match input.role {
                    Role::Alice => {
                        let l = direct.next().ok_or(ProtocolError::Malformed("stream"))?;
                        per_cycle.push((input.wire, Some(l)));
                    }
                    Role::Bob => {
                        choices.push(bobs[lane].stream[cycle][bidx]);
                        bidx += 1;
                        per_cycle.push((input.wire, None));
                    }
                    Role::Public => {}
                }
            }
            per_lane.push(per_cycle);
        }
        stream_slots.push(per_lane);
        bob_wires_by_lane.push(bob_wires);
        lane_ots[lane] = (choices.len() - before) as u64;
    }
    let mut ot_iter = session.ot_receive(&choices)?.into_iter();
    for (lane, bob_wires) in bob_wires_by_lane.iter().enumerate() {
        for &w in bob_wires {
            active[w.index() * n + lane] =
                ot_iter.next().ok_or(ProtocolError::Malformed("bob ot"))?;
        }
        for per_cycle in &mut stream_slots[lane] {
            for (_, slot) in per_cycle.iter_mut() {
                if slot.is_none() {
                    *slot = Some(ot_iter.next().ok_or(ProtocolError::Malformed("bob ot2"))?);
                }
            }
        }
    }

    // --- Cycle loop ---------------------------------------------------------
    let sched = LayerSchedule::of(circuit);
    let mut drv = EvalInstanced::new(sched.levels(), n);
    let mut plans: Vec<LanePlan> = (0..n)
        .map(|_| LanePlan {
            ordinals: Vec::new(),
            patch: CyclePatch::new(),
            releveled: false,
            reuse_first: false,
        })
        .collect();
    let mut decisions: Vec<Option<CycleDecisions>> = (0..n).map(|_| None).collect();
    let mut merged: Vec<u32> = Vec::new();
    let mut cycle_tables: Vec<GarbledTable> = Vec::new();
    let mut releveled_cycles = 0u64;
    let mut patched_gates = 0u64;
    let mut lane_tweaks: Vec<u64> = (0..n).map(|l| (l as u64) << 48).collect();
    let mut lane_active = vec![true; n];
    let mut my_colours: Vec<Vec<bool>> = vec![Vec::new(); n];
    let mut next_dffs: Vec<Label> = Vec::new();
    // `cycle` indexes per-lane structures inside the lane loop, which
    // an enumerate over any single one of them cannot express.
    #[allow(clippy::needless_range_loop)]
    for cycle in 0..cycles {
        if !lane_active.iter().any(|&a| a) {
            break;
        }
        let is_last = cycle + 1 == cycles;
        for lane in 0..n {
            if !lane_active[lane] {
                decisions[lane] = None;
                continue;
            }
            let shared = &mut lanes[lane];
            shared.set_cycle_inputs(cycle, &publics[lane]);
            for &(w, l) in &stream_slots[lane][cycle] {
                active[w.index() * n + lane] = l.expect("filled above");
            }
            let dec = {
                let Shared {
                    ctx, states, alloc, ..
                } = shared;
                ctx.decide_cycle(states, alloc, is_last)
            };
            shared.absorb_counts(&dec.counts);
            decisions[lane] = Some(dec);
        }

        let mut first: Option<usize> = None;
        for lane in 0..n {
            let Some(dec) = decisions[lane].as_ref() else {
                continue;
            };
            let reuse = first.is_some_and(|f| {
                decisions[f]
                    .as_ref()
                    .expect("first lane is active")
                    .decisions
                    == dec.decisions
            });
            plans[lane].reuse_first = reuse;
            if reuse {
                continue;
            }
            let plan = &mut plans[lane];
            plan.releveled = layer_cycle_plan(
                &sched,
                circuit,
                &dec.decisions,
                &mut plan.ordinals,
                &mut plan.patch,
            );
            if first.is_none() {
                first = Some(lane);
            }
        }
        let first = first.unwrap_or(0);
        let plan_of = |lane: usize, plans: &'_ [LanePlan]| -> usize {
            if plans[lane].reuse_first {
                first
            } else {
                lane
            }
        };
        let mut max_levels = sched.levels();
        for lane in 0..n {
            if decisions[lane].is_none() {
                continue;
            }
            let plan = &plans[plan_of(lane, &plans)];
            if plan.releveled {
                releveled_cycles += 1;
                patched_gates += plan.patch.moved_gates();
            }
            max_levels = max_levels.max(plan.patch.levels());
        }

        let total: usize = decisions
            .iter()
            .flatten()
            .map(|dec| dec.counts.garbled as usize)
            .sum();
        session.begin_cycle(total);
        merged.clear();
        merged.resize(circuit.gates().len() * n, u32::MAX);
        let mut next_slot = 0u32;
        for gi in 0..circuit.gates().len() {
            for (lane, dec) in decisions.iter().enumerate() {
                if let Some(dec) = dec {
                    if matches!(dec.decisions[gi], GateDecision::Garble) {
                        merged[gi * n + lane] = next_slot;
                        next_slot += 1;
                    }
                }
            }
        }
        debug_assert_eq!(next_slot as usize, total);
        cycle_tables.clear();
        for _ in 0..total {
            cycle_tables.push(GarbledTable::from_bytes(
                session.next_table(GarbledTable::BYTES)?,
            ));
        }

        for level in 0..max_levels {
            for lane in 0..n {
                let Some(dec) = decisions[lane].as_ref() else {
                    continue;
                };
                let plan = &plans[plan_of(lane, &plans)];
                if level < sched.levels() {
                    for &gi in sched.level_gates(level) {
                        let gi = gi as usize;
                        if plan.patch.is_moved(gi) {
                            continue;
                        }
                        apply_instanced_eval(
                            circuit,
                            n,
                            lane,
                            dec,
                            &plan.ordinals,
                            &merged,
                            &cycle_tables,
                            lane_tweaks[lane],
                            gi,
                            &mut active,
                            &mut drv,
                        );
                    }
                }
                for &gi in plan.patch.moved_at(level) {
                    apply_instanced_eval(
                        circuit,
                        n,
                        lane,
                        dec,
                        &plan.ordinals,
                        &merged,
                        &cycle_tables,
                        lane_tweaks[lane],
                        gi as usize,
                        &mut active,
                        &mut drv,
                    );
                }
            }
            drv.end_level(&evaluator, &mut active);
        }

        for lane in 0..n {
            let Some(dec) = decisions[lane].as_ref() else {
                continue;
            };
            lane_tweaks[lane] += dec.counts.garbled;
            let shared = &mut lanes[lane];
            if matches!(circuit.output_mode(), OutputMode::PerCycle) {
                shared.record_frame();
                my_colours[lane].extend(
                    circuit
                        .outputs()
                        .iter()
                        .filter(|&w| shared.states[w.index()].is_secret())
                        .map(|w| active[w.index() * n + lane].colour()),
                );
            }
            let halted = shared.halted();
            next_dffs.clear();
            next_dffs.extend(
                circuit
                    .dffs()
                    .iter()
                    .map(|f| active[f.d.index() * n + lane]),
            );
            for (dff, &l) in circuit.dffs().iter().zip(next_dffs.iter()) {
                active[dff.q.index() * n + lane] = l;
            }
            shared.copy_dffs();
            shared.stats.cycles_run = cycle + 1;
            if halted {
                lane_active[lane] = false;
            }
        }
    }
    if matches!(circuit.output_mode(), OutputMode::FinalOnly) {
        for (lane, shared) in lanes.iter_mut().enumerate() {
            shared.record_frame();
            my_colours[lane].extend(
                circuit
                    .outputs()
                    .iter()
                    .filter(|&w| shared.states[w.index()].is_secret())
                    .map(|w| active[w.index() * n + lane].colour()),
            );
        }
    }

    // --- Output revelation ----------------------------------------------
    let all_bits: Vec<bool> = my_colours.iter().flatten().copied().collect();
    let secret_values = session.reveal_outputs(&all_bits)?;
    let mut batching = drv.stats();
    batching.releveled_cycles = releveled_cycles;
    batching.patched_gates = patched_gates;
    let mut out_lanes = Vec::with_capacity(n);
    let mut off = 0usize;
    for (lane, shared) in lanes.into_iter().enumerate() {
        let take = my_colours[lane].len();
        let outputs = shared.assemble_outputs(&secret_values[off..off + take]);
        off += take;
        let mut stats = shared.stats;
        stats.table_bytes = stats.garbled_tables * GarbledTable::BYTES as u64;
        stats.ots = lane_ots[lane];
        out_lanes.push(SkipGateOutcome {
            outputs,
            stats,
            batching,
        });
    }
    Ok(InstancedOutcome {
        lanes: out_lanes,
        batching,
    })
}

/// Convenience: runs both parties on two threads over an in-memory
/// channel with the insecure reference OT (tests/benchmarks). Returns
/// `(alice_outcome, bob_outcome)`.
///
/// # Panics
/// Panics if either party fails (test harness semantics).
pub fn run_two_party(
    circuit: &Circuit,
    alice: &PartyData,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
) -> (SkipGateOutcome, SkipGateOutcome) {
    run_two_party_cfg(
        circuit,
        alice,
        bob,
        public,
        cycles,
        TwoPartyConfig::default(),
    )
}

/// [`run_two_party`] with explicit SkipGate options.
///
/// # Panics
/// Panics if either party fails (test harness semantics).
pub fn run_two_party_with(
    circuit: &Circuit,
    alice: &PartyData,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    options: SkipGateOptions,
) -> (SkipGateOutcome, SkipGateOutcome) {
    run_two_party_cfg(
        circuit,
        alice,
        bob,
        public,
        cycles,
        TwoPartyConfig::new().options(options),
    )
}

/// Connected shard-channel bundles for an in-process sharded run: one
/// [`duplex`] pair per shard (empty vectors when unsharded), garbler
/// ends first. Harnesses and tests building their own two-party runs
/// use this to mirror [`run_two_party_cfg`]'s channel setup.
#[allow(clippy::type_complexity)]
pub fn shard_duplexes(shards: ShardConfig) -> (Vec<Box<dyn Channel>>, Vec<Box<dyn Channel>>) {
    let mut garbler: Vec<Box<dyn Channel>> = Vec::new();
    let mut evaluator: Vec<Box<dyn Channel>> = Vec::new();
    if shards.is_sharded() {
        for _ in 0..shards.shards {
            let (g, e) = duplex();
            garbler.push(Box::new(g));
            evaluator.push(Box::new(e));
        }
    }
    (garbler, evaluator)
}

/// [`run_two_party`] with a full [`TwoPartyConfig`]: pluggable OT
/// backend, table-streaming configuration and table-stream sharding
/// (one extra in-memory channel pair per shard).
///
/// Thin wrapper over the unified
/// [`run_two_party_opts`](crate::drive::run_two_party_opts) (a
/// single-lane SkipGate session); both paths drive the same engine
/// internals with the same thread/PRG/OT construction sequence, so the
/// transcript is byte-identical to the historical direct call.
///
/// # Panics
/// Panics if either party fails (test harness semantics).
pub fn run_two_party_cfg(
    circuit: &Circuit,
    alice: &PartyData,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    cfg: TwoPartyConfig,
) -> (SkipGateOutcome, SkipGateOutcome) {
    let (a, b) = crate::drive::run_two_party_opts(
        circuit,
        std::slice::from_ref(alice),
        std::slice::from_ref(bob),
        std::slice::from_ref(public),
        cycles,
        &cfg.into(),
    );
    let take = |o: InstancedOutcome| o.lanes.into_iter().next().expect("one lane");
    (take(a), take(b))
}

/// [`run_two_party_cfg`] for an instanced session: one garbler and one
/// evaluator thread drive `alices.len()` lanes through a single
/// shared-wavefront run. `cfg.schedule` is ignored — instanced
/// execution is always layer-scheduled.
///
/// # Panics
/// Panics if either party fails (test harness semantics).
pub fn run_two_party_instanced_cfg(
    circuit: &Circuit,
    alices: &[PartyData],
    bobs: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    cfg: TwoPartyConfig,
) -> (InstancedOutcome, InstancedOutcome) {
    let (mut ca, mut cb) = duplex();
    let (g_shards, e_shards) = shard_duplexes(cfg.shards);
    crossbeam::thread::scope(|s| {
        let garbler = s.spawn(move |_| {
            let mut prg = Prg::from_entropy();
            let mut ot = cfg.ot.sender(cfg.ot_config, &mut prg);
            run_skipgate_garbler_instanced(
                circuit,
                alices,
                publics,
                cycles,
                &mut ca,
                g_shards,
                ot.as_mut(),
                &mut prg,
                cfg.options,
                cfg.stream,
                cfg.shards,
            )
            .expect("instanced garbler")
        });
        let mut prg = Prg::from_entropy();
        let mut ot = cfg.ot.receiver(cfg.ot_config, &mut prg);
        let bob_outcome = run_skipgate_evaluator_instanced(
            circuit,
            bobs,
            publics,
            cycles,
            &mut cb,
            e_shards,
            ot.as_mut(),
            cfg.options,
            cfg.shards,
        )
        .expect("instanced evaluator");
        (garbler.join().expect("garbler thread"), bob_outcome)
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Sanity helper used by docs/tests: a netlist must not contain
/// constant-valued gate ops (the builder never emits them).
pub fn assert_no_constant_gates(circuit: &Circuit) {
    for g in circuit.gates() {
        assert!(
            g.op != Op::FALSE && g.op != Op::TRUE,
            "constant gate in netlist"
        );
    }
}
