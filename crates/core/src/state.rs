//! Per-wire knowledge state.

use crate::tag::SecretTag;

/// What both parties publicly know about a wire in the current cycle.
///
/// This is the paper's public/secret wire dichotomy (§3): a wire either
/// carries a Boolean value computable by each party locally, or a garbled
/// label whose lineage is fingerprinted by a [`SecretTag`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireVal {
    /// Value known to both parties.
    Public(bool),
    /// Value hidden; parties hold labels with this lineage.
    Secret(SecretTag),
}

impl WireVal {
    /// Constructs a secret value, normalising the `hash == 0` case (an
    /// XOR combination that cancelled out) to a public constant.
    pub fn secret(tag: SecretTag) -> WireVal {
        if tag.hash == 0 {
            WireVal::Public(tag.flip)
        } else {
            WireVal::Secret(tag)
        }
    }

    /// The public value, if any.
    pub fn as_public(self) -> Option<bool> {
        match self {
            WireVal::Public(v) => Some(v),
            WireVal::Secret(_) => None,
        }
    }

    /// The secret tag, if any.
    pub fn as_secret(self) -> Option<SecretTag> {
        match self {
            WireVal::Public(_) => None,
            WireVal::Secret(t) => Some(t),
        }
    }

    /// True for [`WireVal::Secret`].
    pub fn is_secret(self) -> bool {
        matches!(self, WireVal::Secret(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::TagAllocator;

    #[test]
    fn zero_hash_normalises_to_public() {
        let mut alloc = TagAllocator::new();
        let a = alloc.fresh();
        let cancelled = a.xor(a);
        assert_eq!(WireVal::secret(cancelled), WireVal::Public(false));
        assert_eq!(WireVal::secret(cancelled.inverted()), WireVal::Public(true));
        assert!(WireVal::secret(a).is_secret());
    }
}
