//! The DDH-style group used by the Naor–Pinkas base OT.
//!
//! We work in the multiplicative group of `GF(p)` with `p = 2^e − 1` a
//! Mersenne prime. Mersenne moduli make reduction a cheap bit-fold
//! (`x ≡ (x >> e) + (x & (2^e − 1))`), which lets the whole base OT run
//! on our ~200-line [`BigUint`] without Barrett/Montgomery machinery.
//!
//! **Substitution note (documented in DESIGN.md):** the paper's
//! deployments use standardised DH groups or elliptic curves via crypto
//! libraries we are not allowed to depend on. A 1279-bit Mersenne prime
//! group with 256-bit exponents preserves the protocol structure and a
//! comparable (honest-but-curious) hardness story.

use crate::BigUint;
use arm2gc_crypto::Prg;

/// Mersenne exponents that are known primes.
const KNOWN_MERSENNE_EXPONENTS: &[u32] = &[13, 17, 19, 31, 61, 89, 107, 127, 521, 607, 1279];

/// The multiplicative group of `GF(2^e − 1)`.
#[derive(Clone, Debug)]
pub struct MersenneGroup {
    e: u32,
    p: BigUint,
    /// Exponents are sampled with this many random bits.
    exp_bits: usize,
}

impl MersenneGroup {
    /// The production group: `p = 2^1279 − 1`, 256-bit exponents.
    pub fn standard() -> Self {
        Self::new(1279, 256)
    }

    /// A small, fast group for tests: `p = 2^127 − 1`, 96-bit exponents.
    /// Not for real use.
    pub fn test_group() -> Self {
        Self::new(127, 96)
    }

    /// Builds the group for Mersenne exponent `e`.
    ///
    /// # Panics
    /// Panics if `2^e − 1` is not a known Mersenne prime.
    pub fn new(e: u32, exp_bits: usize) -> Self {
        assert!(
            KNOWN_MERSENNE_EXPONENTS.contains(&e),
            "2^{e} - 1 is not a known Mersenne prime"
        );
        let limbs = (e as usize).div_ceil(64);
        let mut v = vec![u64::MAX; limbs];
        if e as usize % 64 != 0 {
            v[limbs - 1] = (1u64 << (e % 64)) - 1;
        }
        Self {
            e,
            p: BigUint::from_limbs(v),
            exp_bits,
        }
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// A fixed generator-ish base element (7 generates a large subgroup;
    /// correctness of the OT needs no primitive root).
    pub fn base(&self) -> BigUint {
        BigUint::from_u64(7)
    }

    /// Reduces `x` modulo `2^e − 1` by folding high bits.
    pub fn reduce(&self, mut x: BigUint) -> BigUint {
        let e = self.e as usize;
        while x.bits() > e {
            x = x.shr(e).add(&x.low_bits(e));
        }
        if x.cmp_to(&self.p) != core::cmp::Ordering::Less {
            x = x.sub(&self.p);
        }
        x
    }

    /// Modular multiplication.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(a.mul(b))
    }

    /// Modular exponentiation (square-and-multiply, MSB first).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Modular inverse via Fermat: `x^(p−2)`.
    pub fn inv(&self, x: &BigUint) -> BigUint {
        let pm2 = self.p.sub(&BigUint::from_u64(2));
        self.pow(x, &pm2)
    }

    /// Samples a random exponent (`exp_bits` bits) from `prg`.
    pub fn random_exponent(&self, prg: &mut Prg) -> BigUint {
        let mut bytes = vec![0u8; self.exp_bits.div_ceil(8)];
        prg.fill_bytes(&mut bytes);
        BigUint::from_be_bytes(&bytes).low_bits(self.exp_bits)
    }

    /// Serialises a group element as fixed-width big-endian bytes.
    pub fn element_bytes(&self, x: &BigUint) -> Vec<u8> {
        let width = (self.e as usize).div_ceil(8);
        let raw = x.to_be_bytes();
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a group element, reducing into range.
    pub fn element_from_bytes(&self, bytes: &[u8]) -> BigUint {
        self.reduce(BigUint::from_be_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_folds_correctly() {
        let g = MersenneGroup::new(13, 12); // p = 8191
        for x in [0u64, 1, 8190, 8191, 8192, 100_000, u32::MAX as u64] {
            let got = g.reduce(BigUint::from_u64(x));
            let want = x % 8191;
            assert_eq!(got, BigUint::from_u64(want), "x={x}");
        }
    }

    #[test]
    fn pow_matches_small_field() {
        let g = MersenneGroup::new(13, 12);
        let p = 8191u64;
        let modpow = |mut b: u64, mut e: u64| {
            let mut acc = 1u64;
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc * b % p;
                }
                b = b * b % p;
                e >>= 1;
            }
            acc
        };
        for (b, e) in [(7u64, 13u64), (2, 100), (8190, 3), (1234, 4095)] {
            assert_eq!(
                g.pow(&BigUint::from_u64(b), &BigUint::from_u64(e)),
                BigUint::from_u64(modpow(b, e)),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let g = MersenneGroup::test_group();
        let mut prg = Prg::from_seed([11; 16]);
        for _ in 0..4 {
            let x = g.reduce(g.random_exponent(&mut prg));
            if x.is_zero() {
                continue;
            }
            let xi = g.inv(&x);
            assert_eq!(g.mul(&x, &xi), BigUint::one());
        }
    }

    #[test]
    fn element_bytes_roundtrip() {
        let g = MersenneGroup::test_group();
        let mut prg = Prg::from_seed([3; 16]);
        let x = g.reduce(g.random_exponent(&mut prg));
        let bytes = g.element_bytes(&x);
        assert_eq!(bytes.len(), 16);
        assert_eq!(g.element_from_bytes(&bytes), x);
    }
}
