//! The DDH-style group used by the Naor–Pinkas base OT.
//!
//! We work in the multiplicative group of `GF(p)` with `p = 2^e − 1` a
//! Mersenne prime. Mersenne moduli make reduction a cheap bit-fold
//! (`x ≡ (x >> e) + (x & (2^e − 1))`), which lets the whole base OT run
//! on our ~200-line [`BigUint`] without Barrett/Montgomery machinery.
//!
//! **Substitution note (documented in DESIGN.md):** the paper's
//! deployments use standardised DH groups or elliptic curves via crypto
//! libraries we are not allowed to depend on. A 1279-bit Mersenne prime
//! group with 256-bit exponents preserves the protocol structure and a
//! comparable (honest-but-curious) hardness story.

use crate::{BigUint, OtError};
use arm2gc_crypto::Prg;

/// Mersenne exponents that are known primes.
const KNOWN_MERSENNE_EXPONENTS: &[u32] = &[13, 17, 19, 31, 61, 89, 107, 127, 521, 607, 1279];

/// The multiplicative group of `GF(2^e − 1)`.
#[derive(Clone, Debug)]
pub struct MersenneGroup {
    e: u32,
    p: BigUint,
    /// Exponents are sampled with this many random bits.
    exp_bits: usize,
}

impl MersenneGroup {
    /// The production group: `p = 2^1279 − 1`, 256-bit exponents.
    pub fn standard() -> Self {
        Self::new(1279, 256)
    }

    /// A small, fast group for tests: `p = 2^127 − 1`, 96-bit exponents.
    /// Not for real use.
    pub fn test_group() -> Self {
        Self::new(127, 96)
    }

    /// Builds the group for Mersenne exponent `e`.
    ///
    /// # Panics
    /// Panics if `2^e − 1` is not a known Mersenne prime.
    pub fn new(e: u32, exp_bits: usize) -> Self {
        assert!(
            KNOWN_MERSENNE_EXPONENTS.contains(&e),
            "2^{e} - 1 is not a known Mersenne prime"
        );
        let limbs = (e as usize).div_ceil(64);
        let mut v = vec![u64::MAX; limbs];
        if e as usize % 64 != 0 {
            v[limbs - 1] = (1u64 << (e % 64)) - 1;
        }
        Self {
            e,
            p: BigUint::from_limbs(v),
            exp_bits,
        }
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// A fixed generator-ish base element (7 generates a large subgroup;
    /// correctness of the OT needs no primitive root).
    pub fn base(&self) -> BigUint {
        BigUint::from_u64(7)
    }

    /// Reduces `x` modulo `2^e − 1` by folding high bits.
    pub fn reduce(&self, mut x: BigUint) -> BigUint {
        let e = self.e as usize;
        while x.bits() > e {
            x = x.shr(e).add(&x.low_bits(e));
        }
        if x.cmp_to(&self.p) != core::cmp::Ordering::Less {
            x = x.sub(&self.p);
        }
        x
    }

    /// Modular multiplication.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(a.mul(b))
    }

    /// Modular exponentiation (square-and-multiply, MSB first).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Modular inverse via Fermat: `x^(p−2)`.
    pub fn inv(&self, x: &BigUint) -> BigUint {
        let pm2 = self.p.sub(&BigUint::from_u64(2));
        self.pow(x, &pm2)
    }

    /// Samples a random exponent (`exp_bits` bits) from `prg`.
    pub fn random_exponent(&self, prg: &mut Prg) -> BigUint {
        let mut bytes = vec![0u8; self.exp_bits.div_ceil(8)];
        prg.fill_bytes(&mut bytes);
        BigUint::from_be_bytes(&bytes).low_bits(self.exp_bits)
    }

    /// The fixed byte width of a serialised group element.
    pub fn element_width(&self) -> usize {
        (self.e as usize).div_ceil(8)
    }

    /// Serialises a group element as fixed-width big-endian bytes.
    pub fn element_bytes(&self, x: &BigUint) -> Vec<u8> {
        let width = self.element_width();
        let raw = x.to_be_bytes();
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a group element, reducing into range.
    pub fn element_from_bytes(&self, bytes: &[u8]) -> BigUint {
        self.reduce(BigUint::from_be_bytes(bytes))
    }

    /// Parses a group element received off the wire, enforcing the
    /// canonical encoding honest peers produce via
    /// [`element_bytes`](Self::element_bytes).
    ///
    /// Rejected inputs (all typed, none panic):
    /// * a slice that is not exactly [`element_width`] bytes — a hostile
    ///   length must not steer later slicing or allocation,
    /// * a non-canonical value `≥ p` — every element has exactly one
    ///   encoding,
    /// * zero — `inv(0)` under Fermat silently returns 0, which would
    ///   collapse `PK_1 = C · PK_0^{−1}` and both pads into derivable
    ///   values.
    ///
    /// [`element_width`]: Self::element_width
    ///
    /// # Errors
    /// Returns [`OtError::Protocol`] naming the violated rule.
    pub fn element_from_wire(&self, bytes: &[u8]) -> Result<BigUint, OtError> {
        if bytes.len() != self.element_width() {
            return Err(OtError::Protocol("group element has wrong width"));
        }
        let x = BigUint::from_be_bytes(bytes);
        if x.cmp_to(&self.p) != core::cmp::Ordering::Less {
            return Err(OtError::Protocol("group element out of range"));
        }
        if x.is_zero() {
            return Err(OtError::Protocol("zero group element"));
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_folds_correctly() {
        let g = MersenneGroup::new(13, 12); // p = 8191
        for x in [0u64, 1, 8190, 8191, 8192, 100_000, u32::MAX as u64] {
            let got = g.reduce(BigUint::from_u64(x));
            let want = x % 8191;
            assert_eq!(got, BigUint::from_u64(want), "x={x}");
        }
    }

    #[test]
    fn pow_matches_small_field() {
        let g = MersenneGroup::new(13, 12);
        let p = 8191u64;
        let modpow = |mut b: u64, mut e: u64| {
            let mut acc = 1u64;
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc * b % p;
                }
                b = b * b % p;
                e >>= 1;
            }
            acc
        };
        for (b, e) in [(7u64, 13u64), (2, 100), (8190, 3), (1234, 4095)] {
            assert_eq!(
                g.pow(&BigUint::from_u64(b), &BigUint::from_u64(e)),
                BigUint::from_u64(modpow(b, e)),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let g = MersenneGroup::test_group();
        let mut prg = Prg::from_seed([11; 16]);
        for _ in 0..4 {
            let x = g.reduce(g.random_exponent(&mut prg));
            if x.is_zero() {
                continue;
            }
            let xi = g.inv(&x);
            assert_eq!(g.mul(&x, &xi), BigUint::one());
        }
    }

    #[test]
    fn element_bytes_roundtrip() {
        let g = MersenneGroup::test_group();
        let mut prg = Prg::from_seed([3; 16]);
        let x = g.reduce(g.random_exponent(&mut prg));
        let bytes = g.element_bytes(&x);
        assert_eq!(bytes.len(), 16);
        assert_eq!(g.element_from_bytes(&bytes), x);
    }

    #[test]
    fn wire_parse_accepts_canonical_elements() {
        let g = MersenneGroup::test_group();
        let mut prg = Prg::from_seed([5; 16]);
        for _ in 0..8 {
            let x = g.pow(&g.base(), &g.random_exponent(&mut prg));
            let got = g.element_from_wire(&g.element_bytes(&x)).unwrap();
            assert_eq!(got, x);
        }
    }

    #[test]
    fn wire_parse_rejects_wrong_width() {
        let g = MersenneGroup::test_group();
        let canonical = g.element_bytes(&g.base());
        for len in [0, 1, 15, 17, 160] {
            let bytes = vec![1u8; len];
            let err = g.element_from_wire(&bytes).unwrap_err();
            assert!(matches!(err, OtError::Protocol(m) if m.contains("width")));
        }
        // Sanity: the canonical width still parses.
        assert!(g.element_from_wire(&canonical).is_ok());
    }

    #[test]
    fn wire_parse_rejects_zero() {
        let g = MersenneGroup::test_group();
        let zero = vec![0u8; g.element_width()];
        let err = g.element_from_wire(&zero).unwrap_err();
        assert!(matches!(err, OtError::Protocol(m) if m.contains("zero")));
    }

    #[test]
    fn wire_parse_rejects_non_canonical() {
        // p itself (all bits of the width set up to bit e) reduces to
        // zero; anything ≥ p must be refused rather than folded.
        let g = MersenneGroup::test_group();
        let p_bytes = g.modulus().to_be_bytes();
        let mut wire = vec![0u8; g.element_width() - p_bytes.len()];
        wire.extend_from_slice(&p_bytes);
        let err = g.element_from_wire(&wire).unwrap_err();
        assert!(matches!(err, OtError::Protocol(m) if m.contains("range")));
        let all_ones = vec![0xffu8; g.element_width()];
        assert!(g.element_from_wire(&all_ones).is_err());
    }

    #[test]
    #[ignore = "slow: 1279-bit modexp; run with --ignored"]
    fn standard_group_arithmetic_holds() {
        let g = MersenneGroup::standard();
        assert_eq!(g.element_width(), 160);
        let mut prg = Prg::from_seed([13; 16]);
        let x = g.pow(&g.base(), &g.random_exponent(&mut prg));
        let xi = g.inv(&x);
        assert_eq!(g.mul(&x, &xi), BigUint::one());
        let bytes = g.element_bytes(&x);
        assert_eq!(bytes.len(), 160);
        assert_eq!(g.element_from_wire(&bytes).unwrap(), x);
    }
}
