//! Naor–Pinkas 1-out-of-2 oblivious transfer (base OT).
//!
//! Honest-but-curious variant over [`crate::MersenneGroup`]:
//!
//! 1. Sender picks random `c`, publishes `C = g^c`.
//! 2. For each OT the receiver with choice `b` picks random `x`, sets
//!    `PK_b = g^x`, `PK_{1−b} = C · PK_b^{−1}`, and sends `PK_0`.
//! 3. Sender derives `PK_1 = C · PK_0^{−1}`, picks random `r_j` and sends
//!    `(g^{r_j}, H(PK_j^{r_j}) ⊕ m_j)` for `j ∈ {0,1}`.
//! 4. Receiver decrypts its branch with `H((g^{r_b})^x)`.
//!
//! The receiver never reveals `b`: `PK_0` is uniform either way. The
//! unchosen pad `PK_{1−b}^{r}` equals `g^{r(c−x)}`, unknowable without `c`.

use arm2gc_comm::Channel;
use arm2gc_crypto::{GarbleHash, Label, Prg};

use crate::{BigUint, MersenneGroup, OtError, OtReceiver, OtSender};

/// Sender side of the Naor–Pinkas base OT.
#[derive(Debug)]
pub struct NaorPinkasSender {
    group: MersenneGroup,
    prg: Prg,
    hash: GarbleHash,
}

impl NaorPinkasSender {
    /// Creates a sender over `group` with randomness from `prg`.
    pub fn new(group: MersenneGroup, prg: Prg) -> Self {
        Self {
            group,
            prg,
            hash: GarbleHash::fixed(),
        }
    }
}

/// Receiver side of the Naor–Pinkas base OT.
#[derive(Debug)]
pub struct NaorPinkasReceiver {
    group: MersenneGroup,
    prg: Prg,
    hash: GarbleHash,
}

impl NaorPinkasReceiver {
    /// Creates a receiver over `group` with randomness from `prg`.
    pub fn new(group: MersenneGroup, prg: Prg) -> Self {
        Self {
            group,
            prg,
            hash: GarbleHash::fixed(),
        }
    }
}

fn pad(hash: &GarbleHash, group: &MersenneGroup, elem: &BigUint, tweak: u64) -> Label {
    hash.hash_bytes(&group.element_bytes(elem), tweak)
}

impl OtSender for NaorPinkasSender {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        let g = self.group.base();
        let c_exp = self.group.random_exponent(&mut self.prg);
        let big_c = self.group.pow(&g, &c_exp);
        ch.send(&self.group.element_bytes(&big_c))?;

        // Receive all PK_0s.
        let pk0_raw = ch.recv()?;
        let width = self.group.element_bytes(&big_c).len();
        if pk0_raw.len() != width * pairs.len() {
            return Err(OtError::Protocol("PK batch has wrong length"));
        }

        let mut payload = Vec::with_capacity(pairs.len() * (width + 32));
        for (i, pair) in pairs.iter().enumerate() {
            let pk0 = self
                .group
                .element_from_bytes(&pk0_raw[i * width..(i + 1) * width]);
            let pk1 = self.group.mul(&big_c, &self.group.inv(&pk0));
            let r = self.group.random_exponent(&mut self.prg);
            let gr = self.group.pow(&g, &r);
            let e0 = pad(
                &self.hash,
                &self.group,
                &self.group.pow(&pk0, &r),
                2 * i as u64,
            ) ^ pair.0;
            let e1 = pad(
                &self.hash,
                &self.group,
                &self.group.pow(&pk1, &r),
                2 * i as u64 + 1,
            ) ^ pair.1;
            payload.extend_from_slice(&self.group.element_bytes(&gr));
            payload.extend_from_slice(&e0.to_bytes());
            payload.extend_from_slice(&e1.to_bytes());
        }
        ch.send(&payload)?;
        Ok(())
    }
}

impl OtReceiver for NaorPinkasReceiver {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        let g = self.group.base();
        let big_c_raw = ch.recv()?;
        let big_c = self.group.element_from_bytes(&big_c_raw);
        let width = big_c_raw.len();

        let mut exps = Vec::with_capacity(choices.len());
        let mut pk0s = Vec::with_capacity(choices.len() * width);
        for &b in choices {
            let x = self.group.random_exponent(&mut self.prg);
            let pk_b = self.group.pow(&g, &x);
            let pk0 = if b {
                self.group.mul(&big_c, &self.group.inv(&pk_b))
            } else {
                pk_b
            };
            pk0s.extend_from_slice(&self.group.element_bytes(&pk0));
            exps.push(x);
        }
        ch.send(&pk0s)?;

        let payload = ch.recv()?;
        let rec_width = width + 32;
        if payload.len() != rec_width * choices.len() {
            return Err(OtError::Protocol("ciphertext batch has wrong length"));
        }
        let mut out = Vec::with_capacity(choices.len());
        for (i, (&b, x)) in choices.iter().zip(&exps).enumerate() {
            let rec = &payload[i * rec_width..(i + 1) * rec_width];
            let gr = self.group.element_from_bytes(&rec[..width]);
            let key = self.group.pow(&gr, x);
            let tweak = 2 * i as u64 + b as u64;
            let e = if b {
                &rec[width + 16..width + 32]
            } else {
                &rec[width..width + 16]
            };
            let e = Label::from_bytes(e.try_into().expect("16 bytes"));
            out.push(pad(&self.hash, &self.group, &key, tweak) ^ e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;

    #[test]
    fn transfers_chosen_labels_small_group() {
        let group = MersenneGroup::test_group();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([2; 16]);
        let pairs: Vec<(Label, Label)> = (0..16)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..16).map(|i| i % 2 == 1).collect();

        let pairs_clone = pairs.clone();
        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NaorPinkasSender::new(g2, Prg::from_seed([3; 16]));
            s.send(&mut ca, &pairs_clone).unwrap();
        });
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([4; 16]));
        let got = r.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn unchosen_label_stays_hidden() {
        // The receiver's output must differ from the unchosen label
        // (sanity check that pads are branch-specific).
        let group = MersenneGroup::test_group();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([7; 16]);
        let pair = (Label::random(&mut prg), Label::random(&mut prg));

        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NaorPinkasSender::new(g2, Prg::from_seed([8; 16]));
            s.send(&mut ca, &[pair]).unwrap();
        });
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([9; 16]));
        let got = r.receive(&mut cb, &[false]).unwrap();
        sender.join().unwrap();
        assert_eq!(got[0], pair.0);
        assert_ne!(got[0], pair.1);
    }
}
