//! Naor–Pinkas 1-out-of-2 oblivious transfer (base OT).
//!
//! Honest-but-curious variant over [`crate::MersenneGroup`]:
//!
//! 1. Sender picks random `c`, publishes `C = g^c`.
//! 2. For each OT the receiver with choice `b` picks random `x`, sets
//!    `PK_b = g^x`, `PK_{1−b} = C · PK_b^{−1}`, and sends `PK_0`.
//! 3. Sender derives `PK_1 = C · PK_0^{−1}`, picks random `r_j` and sends
//!    `(g^{r_j}, H(PK_j^{r_j}) ⊕ m_j)` for `j ∈ {0,1}`.
//! 4. Receiver decrypts its branch with `H((g^{r_b})^x)`.
//!
//! The receiver never reveals `b`: `PK_0` is uniform either way. The
//! unchosen pad `PK_{1−b}^{r}` equals `g^{r(c−x)}`, unknowable without `c`.
//!
//! Wire bytes are parsed with [`MersenneGroup::element_from_wire`]: every
//! element must arrive at the group's fixed width, in canonical range,
//! and non-zero (`inv(0)` silently returns 0, which would collapse both
//! pads into derivable values). Hash tweaks advance with a
//! batch-persistent counter on each side, so repeated base-OT batches on
//! one endpoint never reuse a (key, tweak) pair.

use arm2gc_comm::Channel;
use arm2gc_crypto::{GarbleHash, Label, Prg};

use crate::{BigUint, MersenneGroup, OtError, OtReceiver, OtSender};

/// Sender side of the Naor–Pinkas base OT.
#[derive(Debug)]
pub struct NaorPinkasSender {
    group: MersenneGroup,
    prg: Prg,
    hash: GarbleHash,
    /// OTs completed by earlier `send` batches; tweaks for OT `i` of the
    /// current batch are `2(counter + i)` and `2(counter + i) + 1`.
    counter: u64,
}

impl NaorPinkasSender {
    /// Creates a sender over `group` with randomness from `prg`.
    pub fn new(group: MersenneGroup, prg: Prg) -> Self {
        Self {
            group,
            prg,
            hash: GarbleHash::fixed(),
            counter: 0,
        }
    }
}

/// Receiver side of the Naor–Pinkas base OT.
#[derive(Debug)]
pub struct NaorPinkasReceiver {
    group: MersenneGroup,
    prg: Prg,
    hash: GarbleHash,
    /// Mirrors [`NaorPinkasSender::counter`]; both sides see the same
    /// batch sizes, so the tweak sequences stay aligned.
    counter: u64,
}

impl NaorPinkasReceiver {
    /// Creates a receiver over `group` with randomness from `prg`.
    pub fn new(group: MersenneGroup, prg: Prg) -> Self {
        Self {
            group,
            prg,
            hash: GarbleHash::fixed(),
            counter: 0,
        }
    }
}

fn pad(hash: &GarbleHash, group: &MersenneGroup, elem: &BigUint, tweak: u64) -> Label {
    hash.hash_bytes(&group.element_bytes(elem), tweak)
}

impl OtSender for NaorPinkasSender {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        let g = self.group.base();
        let c_exp = self.group.random_exponent(&mut self.prg);
        let big_c = self.group.pow(&g, &c_exp);
        ch.send(&self.group.element_bytes(&big_c))?;

        // Receive all PK_0s, each a canonical fixed-width element.
        let pk0_raw = ch.recv()?;
        let width = self.group.element_width();
        if pk0_raw.len() != width * pairs.len() {
            return Err(OtError::Protocol("PK batch has wrong length"));
        }

        let mut payload = Vec::with_capacity(pairs.len() * (width + 32));
        for (i, pair) in pairs.iter().enumerate() {
            let pk0 = self
                .group
                .element_from_wire(&pk0_raw[i * width..(i + 1) * width])?;
            let pk1 = self.group.mul(&big_c, &self.group.inv(&pk0));
            let r = self.group.random_exponent(&mut self.prg);
            let gr = self.group.pow(&g, &r);
            let tweak = 2 * (self.counter + i as u64);
            let e0 = pad(&self.hash, &self.group, &self.group.pow(&pk0, &r), tweak) ^ pair.0;
            let e1 = pad(
                &self.hash,
                &self.group,
                &self.group.pow(&pk1, &r),
                tweak + 1,
            ) ^ pair.1;
            payload.extend_from_slice(&self.group.element_bytes(&gr));
            payload.extend_from_slice(&e0.to_bytes());
            payload.extend_from_slice(&e1.to_bytes());
        }
        self.counter += pairs.len() as u64;
        ch.send(&payload)?;
        Ok(())
    }
}

#[cfg(test)]
impl NaorPinkasSender {
    fn tweak_counter(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
impl NaorPinkasReceiver {
    fn tweak_counter(&self) -> u64 {
        self.counter
    }
}

impl OtReceiver for NaorPinkasReceiver {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        let g = self.group.base();
        // The element width is a group constant — never taken from the
        // frame, so a hostile length cannot steer later slicing or size
        // our allocations.
        let width = self.group.element_width();
        let big_c_raw = ch.recv()?;
        let big_c = self.group.element_from_wire(&big_c_raw)?;

        let mut exps = Vec::with_capacity(choices.len());
        let mut pk0s = Vec::with_capacity(choices.len() * width);
        for &b in choices {
            let x = self.group.random_exponent(&mut self.prg);
            let pk_b = self.group.pow(&g, &x);
            let pk0 = if b {
                self.group.mul(&big_c, &self.group.inv(&pk_b))
            } else {
                pk_b
            };
            pk0s.extend_from_slice(&self.group.element_bytes(&pk0));
            exps.push(x);
        }
        ch.send(&pk0s)?;

        let payload = ch.recv()?;
        let rec_width = width + 32;
        if payload.len() != rec_width * choices.len() {
            return Err(OtError::Protocol("ciphertext batch has wrong length"));
        }
        let mut out = Vec::with_capacity(choices.len());
        for (i, (&b, x)) in choices.iter().zip(&exps).enumerate() {
            let rec = &payload[i * rec_width..(i + 1) * rec_width];
            let gr = self.group.element_from_wire(&rec[..width])?;
            let key = self.group.pow(&gr, x);
            let tweak = 2 * (self.counter + i as u64) + b as u64;
            let e = if b {
                &rec[width + 16..width + 32]
            } else {
                &rec[width..width + 16]
            };
            let e = Label::from_bytes(e.try_into().expect("16 bytes"));
            out.push(pad(&self.hash, &self.group, &key, tweak) ^ e);
        }
        self.counter += choices.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;

    #[test]
    fn transfers_chosen_labels_small_group() {
        let group = MersenneGroup::test_group();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([2; 16]);
        let pairs: Vec<(Label, Label)> = (0..16)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..16).map(|i| i % 2 == 1).collect();

        let pairs_clone = pairs.clone();
        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NaorPinkasSender::new(g2, Prg::from_seed([3; 16]));
            s.send(&mut ca, &pairs_clone).unwrap();
        });
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([4; 16]));
        let got = r.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn unchosen_label_stays_hidden() {
        // The receiver's output must differ from the unchosen label
        // (sanity check that pads are branch-specific).
        let group = MersenneGroup::test_group();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([7; 16]);
        let pair = (Label::random(&mut prg), Label::random(&mut prg));

        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NaorPinkasSender::new(g2, Prg::from_seed([8; 16]));
            s.send(&mut ca, &[pair]).unwrap();
        });
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([9; 16]));
        let got = r.receive(&mut cb, &[false]).unwrap();
        sender.join().unwrap();
        assert_eq!(got[0], pair.0);
        assert_ne!(got[0], pair.1);
    }

    #[test]
    fn repeated_batches_advance_the_tweak_counter() {
        // Tweaks must not restart at 2i per call: the counter persists
        // across batches on both roles, and transfers stay correct.
        let group = MersenneGroup::test_group();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([12; 16]);
        let pairs: Vec<(Label, Label)> = (0..8)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();

        let pairs2 = pairs.clone();
        let choices2 = choices.clone();
        let g2 = group.clone();
        let (got, rx_counter) = std::thread::scope(|s| {
            s.spawn(move || {
                let mut snd = NaorPinkasSender::new(g2, Prg::from_seed([13; 16]));
                snd.send(&mut ca, &pairs2[..5]).unwrap();
                assert_eq!(snd.tweak_counter(), 5);
                snd.send(&mut ca, &pairs2[5..]).unwrap();
                assert_eq!(snd.tweak_counter(), 8);
            });
            let mut rcv = NaorPinkasReceiver::new(group, Prg::from_seed([14; 16]));
            let mut got = rcv.receive(&mut cb, &choices2[..5]).unwrap();
            got.extend(rcv.receive(&mut cb, &choices2[5..]).unwrap());
            (got, rcv.tweak_counter())
        });
        assert_eq!(rx_counter, 8);
        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn receiver_rejects_wrong_width_c() {
        let group = MersenneGroup::test_group();
        let (mut hostile, mut victim) = duplex();
        // 15 bytes instead of the group's fixed 16: a hostile width must
        // not leak into slicing arithmetic.
        hostile.send(&[0x42u8; 15]).unwrap();
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([21; 16]));
        let err = r.receive(&mut victim, &[false, true]).unwrap_err();
        assert!(matches!(err, OtError::Protocol(m) if m.contains("width")));
    }

    #[test]
    fn receiver_rejects_zero_c() {
        let group = MersenneGroup::test_group();
        let (mut hostile, mut victim) = duplex();
        hostile.send(&vec![0u8; group.element_width()]).unwrap();
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([22; 16]));
        let err = r.receive(&mut victim, &[true]).unwrap_err();
        assert!(matches!(err, OtError::Protocol(m) if m.contains("zero")));
    }

    #[test]
    fn receiver_rejects_zero_gr_and_truncated_payload() {
        let group = MersenneGroup::test_group();
        let width = group.element_width();

        // Hostile "sender": valid C, then a payload whose g^r element is
        // zero — the pad key would collapse to H(0).
        let (mut hostile, mut victim) = duplex();
        let mut prg = Prg::from_seed([23; 16]);
        let c = group.pow(&group.base(), &group.random_exponent(&mut prg));
        hostile.send(&group.element_bytes(&c)).unwrap();
        let g2 = group.clone();
        let err = std::thread::scope(|s| {
            s.spawn(move || {
                let _pk0s = hostile.recv().unwrap();
                let mut payload = vec![0u8; width]; // zero g^r
                payload.extend_from_slice(&[0xa5; 32]);
                hostile.send(&payload).unwrap();
            });
            let mut r = NaorPinkasReceiver::new(g2, Prg::from_seed([24; 16]));
            r.receive(&mut victim, &[false]).unwrap_err()
        });
        assert!(matches!(err, OtError::Protocol(m) if m.contains("zero")));

        // Truncated ciphertext batch.
        let (mut hostile, mut victim) = duplex();
        hostile.send(&group.element_bytes(&c)).unwrap();
        let g2 = group.clone();
        let err = std::thread::scope(|s| {
            s.spawn(move || {
                let _pk0s = hostile.recv().unwrap();
                hostile.send(&vec![0xa5u8; width + 31]).unwrap(); // 1 byte short
            });
            let mut r = NaorPinkasReceiver::new(g2, Prg::from_seed([25; 16]));
            r.receive(&mut victim, &[false]).unwrap_err()
        });
        assert!(matches!(err, OtError::Protocol(m) if m.contains("length")));
    }

    #[test]
    fn sender_rejects_zero_and_missized_pk0() {
        let group = MersenneGroup::test_group();
        let width = group.element_width();
        let mut prg = Prg::from_seed([26; 16]);
        let pair = (Label::random(&mut prg), Label::random(&mut prg));

        // Zero PK_0 of the right width: inv(0) = 0 would collapse PK_1.
        let (mut hostile, mut victim) = duplex();
        let g2 = group.clone();
        let err = std::thread::scope(|s| {
            s.spawn(move || {
                let _c = hostile.recv().unwrap();
                hostile.send(&vec![0u8; width]).unwrap();
            });
            let mut snd = NaorPinkasSender::new(g2, Prg::from_seed([27; 16]));
            snd.send(&mut victim, &[pair]).unwrap_err()
        });
        assert!(matches!(err, OtError::Protocol(m) if m.contains("zero")));

        // Missized batch (hostile width) is refused before any parsing.
        let (mut hostile, mut victim) = duplex();
        let err = std::thread::scope(|s| {
            s.spawn(move || {
                let _c = hostile.recv().unwrap();
                hostile.send(&vec![1u8; width + 1]).unwrap();
            });
            let mut snd = NaorPinkasSender::new(group, Prg::from_seed([28; 16]));
            snd.send(&mut victim, &[pair]).unwrap_err()
        });
        assert!(matches!(err, OtError::Protocol(m) if m.contains("length")));
    }

    #[test]
    #[ignore = "slow: 1279-bit base OT; run with --ignored"]
    fn transfers_chosen_labels_standard_group() {
        let group = MersenneGroup::standard();
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([31; 16]);
        let pairs: Vec<(Label, Label)> = (0..4)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices = [true, false, false, true];

        let pairs_clone = pairs.clone();
        let g2 = group.clone();
        let sender = std::thread::spawn(move || {
            let mut s = NaorPinkasSender::new(g2, Prg::from_seed([32; 16]));
            s.send(&mut ca, &pairs_clone).unwrap();
        });
        let mut r = NaorPinkasReceiver::new(group, Prg::from_seed([33; 16]));
        let got = r.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();
        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }
}
