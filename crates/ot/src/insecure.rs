//! A cleartext **non-private** OT used for tests and gate-count
//! benchmarking.

use arm2gc_comm::Channel;
use arm2gc_crypto::Label;

use crate::{OtError, OtReceiver, OtSender};

/// Reference OT that sends the choice bits in the clear.
///
/// The receiver learns exactly the chosen labels and the protocol's
/// message pattern matches a real OT, so engines built on top behave
/// identically — but the *sender learns the choices*. Use only in tests
/// and benchmarks, never for actual privacy.
#[derive(Debug, Default, Clone, Copy)]
pub struct InsecureOt;

impl OtSender for InsecureOt {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        let raw = ch.recv()?;
        if raw.len() != pairs.len() {
            return Err(OtError::Protocol("choice vector length mismatch"));
        }
        let mut out = Vec::with_capacity(pairs.len() * 16);
        for (pair, &c) in pairs.iter().zip(&raw) {
            let l = if c == 1 { pair.1 } else { pair.0 };
            out.extend_from_slice(&l.to_bytes());
        }
        ch.send(&out)?;
        Ok(())
    }
}

impl OtReceiver for InsecureOt {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        let raw: Vec<u8> = choices.iter().map(|&c| c as u8).collect();
        ch.send(&raw)?;
        let data = ch.recv()?;
        if data.len() != choices.len() * 16 {
            return Err(OtError::Protocol("label payload length mismatch"));
        }
        Ok(data
            .chunks_exact(16)
            .map(|c| Label::from_bytes(c.try_into().expect("16-byte chunk")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;
    use arm2gc_crypto::Prg;

    #[test]
    fn transfers_chosen_labels() {
        let (mut ca, mut cb) = duplex();
        let mut prg = Prg::from_seed([1; 16]);
        let pairs: Vec<(Label, Label)> = (0..64)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();

        let pairs_clone = pairs.clone();
        let sender = std::thread::spawn(move || {
            InsecureOt.send(&mut ca, &pairs_clone).unwrap();
        });
        let got = InsecureOt.receive(&mut cb, &choices).unwrap();
        sender.join().unwrap();

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }
}
