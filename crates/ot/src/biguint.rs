//! Minimal arbitrary-precision unsigned integers.
//!
//! Only what the Naor–Pinkas group arithmetic needs: comparison,
//! addition, subtraction, schoolbook multiplication, shifts and bit
//! access. Little-endian `u64` limbs, always normalised (no trailing
//! zero limbs).

use core::cmp::Ordering;
use core::fmt;

/// An unsigned big integer.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// From a single limb.
    pub fn from_u64(v: u64) -> Self {
        let mut b = Self { limbs: vec![v] };
        b.normalise();
        b
    }

    /// From little-endian limbs.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut b = Self { limbs };
        b.normalise();
        b
    }

    /// From big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// To big-endian bytes (no leading zeros, empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self
            .limbs
            .iter()
            .rev()
            .flat_map(|l| l.to_be_bytes())
            .collect();
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => 64 * self.limbs.len() - top.leading_zeros() as usize,
        }
    }

    /// Bit `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .map(|l| (l >> (i % 64)) & 1 == 1)
            .unwrap_or(false)
    }

    fn normalise(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u128;
            let b = *other.limbs.get(i).unwrap_or(&0) as u128;
            let s = a + b + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        out.push(carry);
        Self::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_to(other) != Ordering::Less, "underflow in sub");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut d = a - b - borrow;
            borrow = 0;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            }
            out.push(d as u64);
        }
        Self::from_limbs(out)
    }

    /// Schoolbook `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// `self >> k` for any `k`.
    pub fn shr(&self, k: usize) -> Self {
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..out.len() {
                let hi = if i + 1 < out.len() { out[i + 1] } else { 0 };
                out[i] = (out[i] >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        Self::from_limbs(out)
    }

    /// The low `k` bits of `self`.
    pub fn low_bits(&self, k: usize) -> Self {
        let limbs_needed = k.div_ceil(64);
        let mut out: Vec<u64> = self.limbs.iter().take(limbs_needed).copied().collect();
        if k % 64 != 0 {
            if let Some(top) = out.last_mut() {
                *top &= (1u64 << (k % 64)) - 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Three-way comparison.
    pub fn cmp_to(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0x0");
        }
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn from_u128(v: u128) -> BigUint {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }

    fn to_u128(b: &BigUint) -> u128 {
        b.limbs
            .iter()
            .take(2)
            .enumerate()
            .fold(0u128, |acc, (i, &l)| acc | ((l as u128) << (64 * i)))
    }

    #[test]
    fn byte_roundtrip() {
        let b = BigUint::from_be_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(b.to_be_bytes(), vec![0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(b.bits(), 37);
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u128..1u128 << 126, b in 0u128..1u128 << 126) {
            prop_assert_eq!(to_u128(&from_u128(a).add(&from_u128(b))), a + b);
        }

        #[test]
        fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(to_u128(&from_u128(hi).sub(&from_u128(lo))), hi - lo);
        }

        #[test]
        fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            prop_assert_eq!(
                to_u128(&BigUint::from_u64(a).mul(&BigUint::from_u64(b))),
                a as u128 * b as u128
            );
        }

        #[test]
        fn shr_matches_u128(a in 0u128..u128::MAX, k in 0usize..127) {
            prop_assert_eq!(to_u128(&from_u128(a).shr(k)), a >> k);
        }

        #[test]
        fn low_bits_matches_u128(a in 0u128..u128::MAX, k in 1usize..127) {
            prop_assert_eq!(to_u128(&from_u128(a).low_bits(k)), a & ((1u128 << k) - 1));
        }

        #[test]
        fn cmp_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            prop_assert_eq!(from_u128(a).cmp_to(&from_u128(b)), a.cmp(&b));
        }
    }
}
