//! IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank).
//!
//! Turns `K = 128` base OTs (role-reversed) into arbitrarily many fast
//! OTs using only symmetric crypto:
//!
//! * setup — the extension **sender** acts as base-OT *receiver* with a
//!   random choice vector `s`, obtaining one seed per column; the
//!   extension **receiver** acts as base-OT *sender* with seed pairs.
//! * extend — for `m` OTs the receiver expands both seeds per column
//!   (`t_j = PRG(k⁰_j)`) and sends `u_j = t_j ⊕ PRG(k¹_j) ⊕ r`; the
//!   sender reconstructs `q_j = PRG(seed_j) ⊕ s_j·u_j`, so row-wise
//!   `q_i = t_i ⊕ r_i·s`. Messages are padded with `H(i, q_i)` and
//!   `H(i, q_i ⊕ s)`.

use arm2gc_comm::Channel;
use arm2gc_crypto::{GarbleHash, HashScratch, Label, Prg};

use crate::{OtError, OtReceiver, OtSender};

const K: usize = 128;

/// Sender side of the IKNP extension.
#[derive(Debug)]
pub struct IknpSender {
    s: [bool; K],
    seeds: Vec<Prg>,
    hash: GarbleHash,
    counter: u64,
    // Batch-persistent scratch so repeated extensions (one per input
    // batch) do not reallocate the hash points and pads.
    points: Vec<(Label, u64)>,
    scratch: HashScratch,
    pads: Vec<Label>,
}

impl IknpSender {
    /// Runs the setup phase: `K` base OTs with `base` in the *receiver*
    /// role.
    ///
    /// # Errors
    /// Propagates base-OT failures.
    pub fn setup(
        base: &mut dyn OtReceiver,
        ch: &mut dyn Channel,
        prg: &mut Prg,
    ) -> Result<Self, OtError> {
        let s: [bool; K] = core::array::from_fn(|_| prg.next_bool());
        let seeds_raw = base.receive(ch, &s)?;
        let seeds = seeds_raw
            .into_iter()
            .map(|l| Prg::from_seed(l.to_bytes()))
            .collect();
        Ok(Self {
            s,
            seeds,
            hash: GarbleHash::fixed(),
            counter: 0,
            points: Vec::new(),
            scratch: HashScratch::default(),
            pads: Vec::new(),
        })
    }

    fn s_label(&self) -> Label {
        let mut v = 0u128;
        for (j, &b) in self.s.iter().enumerate() {
            v |= (b as u128) << j;
        }
        Label::from_u128(v)
    }
}

impl OtSender for IknpSender {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        let m = pairs.len();
        if m == 0 {
            return Ok(());
        }
        let bytes_per_col = m.div_ceil(8);
        let u = ch.recv()?;
        if u.len() != K * bytes_per_col {
            return Err(OtError::Protocol("u matrix has wrong size"));
        }
        // q columns: PRG(seed_j) ⊕ s_j · u_j.
        let mut q_cols = vec![vec![0u8; bytes_per_col]; K];
        for (j, col) in q_cols.iter_mut().enumerate() {
            self.seeds[j].fill_bytes(col);
            if self.s[j] {
                for (b, &ub) in col.iter_mut().zip(&u[j * bytes_per_col..]) {
                    *b ^= ub;
                }
            }
        }
        // Transpose to rows and pad the messages; both pads of every OT
        // are derived in one batched hash over the wide AES pipeline.
        let s_lab = self.s_label();
        self.points.clear();
        self.points.reserve(2 * m);
        for i in 0..m {
            let mut row = 0u128;
            for (j, col) in q_cols.iter().enumerate() {
                let bit = (col[i / 8] >> (i % 8)) & 1;
                row |= (bit as u128) << j;
            }
            let q = Label::from_u128(row);
            let t = self.counter + i as u64;
            self.points.push((q, t));
            self.points.push((q ^ s_lab, t));
        }
        self.hash
            .hash_batch_with(&self.points, &mut self.scratch, &mut self.pads);
        let mut payload = Vec::with_capacity(m * 32);
        for (pair, pad) in pairs.iter().zip(self.pads.chunks_exact(2)) {
            payload.extend_from_slice(&(pad[0] ^ pair.0).to_bytes());
            payload.extend_from_slice(&(pad[1] ^ pair.1).to_bytes());
        }
        self.counter += m as u64;
        ch.send(&payload)?;
        Ok(())
    }
}

/// Receiver side of the IKNP extension.
#[derive(Debug)]
pub struct IknpReceiver {
    seeds: Vec<(Prg, Prg)>,
    hash: GarbleHash,
    counter: u64,
    // Batch-persistent scratch, mirroring [`IknpSender`].
    points: Vec<(Label, u64)>,
    scratch: HashScratch,
    pads: Vec<Label>,
}

impl IknpReceiver {
    /// Runs the setup phase: `K` base OTs with `base` in the *sender*
    /// role, transferring random seed pairs.
    ///
    /// # Errors
    /// Propagates base-OT failures.
    pub fn setup(
        base: &mut dyn OtSender,
        ch: &mut dyn Channel,
        prg: &mut Prg,
    ) -> Result<Self, OtError> {
        let pairs: Vec<(Label, Label)> = (0..K)
            .map(|_| (Label::random(prg), Label::random(prg)))
            .collect();
        base.send(ch, &pairs)?;
        let seeds = pairs
            .into_iter()
            .map(|(a, b)| (Prg::from_seed(a.to_bytes()), Prg::from_seed(b.to_bytes())))
            .collect();
        Ok(Self {
            seeds,
            hash: GarbleHash::fixed(),
            counter: 0,
            points: Vec::new(),
            scratch: HashScratch::default(),
            pads: Vec::new(),
        })
    }
}

impl OtReceiver for IknpReceiver {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        let m = choices.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        let bytes_per_col = m.div_ceil(8);
        let mut r_bits = vec![0u8; bytes_per_col];
        for (i, &c) in choices.iter().enumerate() {
            if c {
                r_bits[i / 8] |= 1 << (i % 8);
            }
        }
        // t columns from seed 0; u = t ⊕ PRG(seed 1) ⊕ r.
        let mut t_cols = vec![vec![0u8; bytes_per_col]; K];
        let mut u = Vec::with_capacity(K * bytes_per_col);
        for (j, col) in t_cols.iter_mut().enumerate() {
            self.seeds[j].0.fill_bytes(col);
            let mut other = vec![0u8; bytes_per_col];
            self.seeds[j].1.fill_bytes(&mut other);
            for ((&t, o), r) in col.iter().zip(&other).zip(&r_bits) {
                u.push(t ^ o ^ r);
            }
        }
        ch.send(&u)?;

        let payload = ch.recv()?;
        if payload.len() != m * 32 {
            return Err(OtError::Protocol("padded messages have wrong size"));
        }
        // One batched hash derives every row's pad through the wide AES
        // pipeline.
        self.points.clear();
        self.points.reserve(m);
        self.points.extend((0..m).map(|i| {
            let mut row = 0u128;
            for (j, col) in t_cols.iter().enumerate() {
                let bit = (col[i / 8] >> (i % 8)) & 1;
                row |= (bit as u128) << j;
            }
            (Label::from_u128(row), self.counter + i as u64)
        }));
        self.hash
            .hash_batch_with(&self.points, &mut self.scratch, &mut self.pads);
        let mut out = Vec::with_capacity(m);
        for ((i, &c), &pad) in choices.iter().enumerate().zip(&self.pads) {
            let off = 32 * i + if c { 16 } else { 0 };
            let y = Label::from_bytes(payload[off..off + 16].try_into().expect("16 bytes"));
            out.push(pad ^ y);
        }
        self.counter += m as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InsecureOt, MersenneGroup, NaorPinkasReceiver, NaorPinkasSender};
    use arm2gc_comm::duplex;

    fn run_extension(mut base_s: impl OtSender + Send + 'static, base_r: impl OtReceiver) {
        let (mut ca, mut cb) = duplex();
        let mut prg_a = Prg::from_seed([21; 16]);
        let mut prg_b = Prg::from_seed([22; 16]);

        let m = 300usize;
        let mut gen = Prg::from_seed([23; 16]);
        let pairs: Vec<(Label, Label)> = (0..m)
            .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
            .collect();
        let choices: Vec<bool> = (0..m).map(|i| (i * 7) % 3 == 1).collect();

        let pairs_clone = pairs.clone();
        let sender = std::thread::spawn(move || {
            // Extension receiver drives the base OTs as *sender*.
            let mut ext_r = IknpReceiver::setup(&mut base_s, &mut ca, &mut prg_a).unwrap();
            let choices_inner: Vec<bool> = (0..m).map(|i| (i * 7) % 3 == 1).collect();
            ext_r.receive(&mut ca, &choices_inner).unwrap()
        });

        let mut base_r = base_r;
        let mut ext_s = IknpSender::setup(&mut base_r, &mut cb, &mut prg_b).unwrap();
        ext_s.send(&mut cb, &pairs_clone).unwrap();
        let got = sender.join().unwrap();

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn extension_over_insecure_base() {
        run_extension(InsecureOt, InsecureOt);
    }

    #[test]
    fn extension_over_naor_pinkas_base() {
        let group = MersenneGroup::test_group();
        run_extension(
            NaorPinkasSender::new(group.clone(), Prg::from_seed([31; 16])),
            NaorPinkasReceiver::new(group, Prg::from_seed([32; 16])),
        );
    }

    #[test]
    fn multiple_batches_reuse_setup() {
        let (mut ca, mut cb) = duplex();
        let mut prg_a = Prg::from_seed([41; 16]);
        let mut prg_b = Prg::from_seed([42; 16]);
        let mut gen = Prg::from_seed([43; 16]);
        let batches: Vec<Vec<(Label, Label)>> = (0..3)
            .map(|_| {
                (0..50)
                    .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
                    .collect()
            })
            .collect();
        let batches_clone = batches.clone();

        let receiver = std::thread::spawn(move || {
            let mut base = InsecureOt;
            let mut ext_r = IknpReceiver::setup(&mut base, &mut ca, &mut prg_a).unwrap();
            let mut all = Vec::new();
            for b in 0..3 {
                let choices: Vec<bool> = (0..50).map(|i| (i + b) % 2 == 0).collect();
                all.push((choices.clone(), ext_r.receive(&mut ca, &choices).unwrap()));
            }
            all
        });

        let mut base = InsecureOt;
        let mut ext_s = IknpSender::setup(&mut base, &mut cb, &mut prg_b).unwrap();
        for batch in &batches_clone {
            ext_s.send(&mut cb, batch).unwrap();
        }
        for (batch, (choices, got)) in batches.iter().zip(receiver.join().unwrap()) {
            for ((pair, c), l) in batch.iter().zip(&choices).zip(&got) {
                assert_eq!(*l, if *c { pair.1 } else { pair.0 });
            }
        }
    }
}
