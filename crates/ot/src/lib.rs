//! Oblivious transfer substrate.
//!
//! The evaluator obtains the wire labels for her private input bits via
//! 1-out-of-2 OT (paper §2.2). This crate provides:
//!
//! * [`NaorPinkasSender`]/[`NaorPinkasReceiver`] — the Naor–Pinkas base
//!   OT over a Mersenne-prime multiplicative group, built on our own
//!   big-integer arithmetic (no external bignum crates),
//! * [`IknpSender`]/[`IknpReceiver`] — the IKNP OT extension, turning 128
//!   base OTs into any number of fast symmetric-key OTs,
//! * [`InsecureOt`] — a cleartext reference implementation used by unit
//!   tests and gate-count benchmarks (clearly labelled; never use it for
//!   actual privacy).
//!
//! All implementations speak over an [`arm2gc_comm::Channel`] and
//! transfer [`Label`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
mod group;
mod iknp;
mod insecure;
mod naor_pinkas;

pub use biguint::BigUint;
pub use group::MersenneGroup;
pub use iknp::{IknpReceiver, IknpSender};
pub use insecure::InsecureOt;
pub use naor_pinkas::{NaorPinkasReceiver, NaorPinkasSender};

use std::error::Error;
use std::fmt;

use arm2gc_comm::{Channel, ChannelError};
use arm2gc_crypto::Label;

/// Errors surfaced by OT protocols.
#[derive(Debug)]
pub enum OtError {
    /// The underlying channel failed.
    Channel(ChannelError),
    /// The peer sent a malformed message.
    Protocol(&'static str),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtError::Channel(e) => write!(f, "ot channel failure: {e}"),
            OtError::Protocol(m) => write!(f, "ot protocol violation: {m}"),
        }
    }
}

impl Error for OtError {}

impl From<ChannelError> for OtError {
    fn from(e: ChannelError) -> Self {
        OtError::Channel(e)
    }
}

/// The sending side of a batch of 1-out-of-2 OTs.
pub trait OtSender {
    /// Transfers one label of each pair, according to the receiver's
    /// hidden choice bits.
    ///
    /// # Errors
    /// Fails if the channel drops or the peer misbehaves.
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError>;
}

/// The receiving side of a batch of 1-out-of-2 OTs.
pub trait OtReceiver {
    /// Obtains `pairs[i].choices[i]` for every `i` without revealing the
    /// choices.
    ///
    /// # Errors
    /// Fails if the channel drops or the peer misbehaves.
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError>;
}
