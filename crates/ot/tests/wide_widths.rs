//! Property tests for `BigUint` and `MersenneGroup` at the production
//! 1279-bit width.
//!
//! The unit-level proptests in `biguint.rs` check the arithmetic against
//! `u128` oracles, which only exercises one or two limbs. The standard
//! group runs 20-limb operands, so these properties pin the carry and
//! fold paths the oracle tests can never reach. Everything here avoids
//! modular exponentiation — each case is a handful of wide mul/adds, so
//! the whole file stays in the fast tier.

use arm2gc_ot::{BigUint, MersenneGroup, OtError};
use proptest::collection::vec;
use proptest::prelude::*;

/// Bytes of a serialised 1279-bit group element.
const WIDE: usize = 160;

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_be_bytes(bytes)
}

/// `2^k` as a `BigUint`.
fn pow2(k: usize) -> BigUint {
    let mut bytes = vec![0u8; k / 8 + 1];
    bytes[0] = 1 << (k % 8);
    BigUint::from_be_bytes(&bytes)
}

proptest! {
    #[test]
    fn wide_add_sub_roundtrip(a in vec(any::<u8>(), WIDE..WIDE + 1),
                              b in vec(any::<u8>(), WIDE..WIDE + 1)) {
        let (a, b) = (big(&a), big(&b));
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn wide_shift_recomposes(a in vec(any::<u8>(), WIDE..WIDE + 1),
                             k in 1usize..1279) {
        let a = big(&a);
        let recomposed = a.shr(k).mul(&pow2(k)).add(&a.low_bits(k));
        prop_assert_eq!(recomposed, a);
    }

    #[test]
    fn wide_byte_roundtrip(a in vec(any::<u8>(), 1usize..WIDE + 1)) {
        let a = big(&a);
        prop_assert_eq!(big(&a.to_be_bytes()), a);
    }

    #[test]
    fn standard_reduce_is_homomorphic(a in vec(any::<u8>(), WIDE..WIDE + 1),
                                      b in vec(any::<u8>(), WIDE..WIDE + 1)) {
        let g = MersenneGroup::standard();
        let (a, b) = (big(&a), big(&b));
        // reduce respects addition and stays in range.
        let lhs = g.reduce(a.add(&b));
        let rhs = g.reduce(g.reduce(a.clone()).add(&g.reduce(b.clone())));
        prop_assert_eq!(&lhs, &rhs);
        prop_assert!(lhs.cmp_to(g.modulus()) == std::cmp::Ordering::Less);
    }

    #[test]
    fn standard_mul_commutes_and_distributes(a in vec(any::<u8>(), WIDE..WIDE + 1),
                                             b in vec(any::<u8>(), WIDE..WIDE + 1),
                                             c in vec(any::<u8>(), WIDE..WIDE + 1)) {
        let g = MersenneGroup::standard();
        let (a, b, c) = (g.reduce(big(&a)), g.reduce(big(&b)), g.reduce(big(&c)));
        prop_assert_eq!(g.mul(&a, &b), g.mul(&b, &a));
        prop_assert_eq!(g.mul(&g.mul(&a, &b), &c), g.mul(&a, &g.mul(&b, &c)));
        let lhs = g.mul(&a, &g.reduce(b.add(&c)));
        let rhs = g.reduce(g.mul(&a, &b).add(&g.mul(&a, &c)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn standard_element_wire_roundtrip(a in vec(any::<u8>(), WIDE..WIDE + 1)) {
        let g = MersenneGroup::standard();
        let x = g.reduce(big(&a));
        prop_assume!(!x.is_zero());
        let bytes = g.element_bytes(&x);
        prop_assert_eq!(bytes.len(), WIDE);
        prop_assert_eq!(g.element_from_wire(&bytes).unwrap(), x);
    }

    #[test]
    fn standard_wire_rejects_hostile_widths(a in vec(any::<u8>(), 1usize..320)) {
        let g = MersenneGroup::standard();
        prop_assume!(a.len() != WIDE);
        let err = g.element_from_wire(&a).unwrap_err();
        prop_assert!(matches!(err, OtError::Protocol(m) if m.contains("width")));
        // And a zero element of the exact width is still refused.
        let zero = vec![0u8; WIDE];
        prop_assert!(g.element_from_wire(&zero).is_err());
    }
}
