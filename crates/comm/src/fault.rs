//! Deterministic fault injection for any [`Channel`].
//!
//! [`FaultChannel`] wraps a channel and applies a scripted
//! [`FaultPlan`]: each fault names a direction (send or recv), the
//! frame index it fires at, and a [`FaultKind`]. Where a fault needs
//! randomness (which byte to flip, where to truncate), the bytes come
//! from a splitmix64 stream keyed by `(seed, direction, frame)` — so a
//! failing run is reproducible from its seed alone, which is the whole
//! point: the fault-matrix suite in `crates/server` replays exact
//! failure scenarios and asserts exact typed teardown reasons.
//!
//! Faults that model the peer vanishing ([`FaultKind::Disconnect`],
//! [`FaultKind::ShortWrite`]) drop the inner channel, so a wrapped
//! socket really closes and the remote side observes a real
//! disconnect, not a simulation artifact.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::{Channel, ChannelError};

/// What to do to a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Deliver only a seed-chosen strict prefix of the frame (at least
    /// the first byte — the protocol tag — survives, so the peer sees a
    /// corrupt body rather than an ambiguous empty frame).
    Truncate,
    /// XOR a seed-chosen non-zero mask into a seed-chosen byte past the
    /// first (the tag byte is preserved so the corruption surfaces as a
    /// body decode failure attributed to that tag).
    Corrupt,
    /// Overwrite exact byte positions: each `(index, mask)` XORs `mask`
    /// into the byte at `index` (out-of-range indices are ignored).
    /// Use this when the expected decode failure depends on *which*
    /// byte breaks.
    CorruptAt(Vec<(usize, u8)>),
    /// Silently swallow the frame (send: never transmitted; recv:
    /// discarded and the next frame is returned instead).
    DropFrame,
    /// Sleep this long before the operation proceeds normally — models
    /// a peer stalled just short of a deadline (or past one).
    Stall(Duration),
    /// Deliver a seed-chosen strict prefix of the frame, then close the
    /// connection — a write that died mid-frame.
    ShortWrite,
    /// Close the connection instead of performing the operation; every
    /// later operation fails with [`ChannelError::Closed`].
    Disconnect,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dir {
    Send,
    Recv,
}

/// A scripted fault schedule: which [`FaultKind`] fires at which frame
/// index, per direction, plus the seed that makes data-dependent
/// choices (truncation points, flipped bytes) reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<(Dir, u64), FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: BTreeMap::new(),
        }
    }

    /// Schedules `kind` to fire on the `frame`-th outbound frame
    /// (0-based, counted per direction).
    #[must_use]
    pub fn on_send(mut self, frame: u64, kind: FaultKind) -> Self {
        self.faults.insert((Dir::Send, frame), kind);
        self
    }

    /// Schedules `kind` to fire on the `frame`-th inbound frame
    /// (0-based, counted per direction).
    #[must_use]
    pub fn on_recv(mut self, frame: u64, kind: FaultKind) -> Self {
        self.faults.insert((Dir::Recv, frame), kind);
        self
    }

    fn get(&self, dir: Dir, frame: u64) -> Option<&FaultKind> {
        self.faults.get(&(dir, frame))
    }

    /// Deterministic per-(direction, frame) random stream.
    fn rng(&self, dir: Dir, frame: u64) -> Splitmix {
        let dir_tag = match dir {
            Dir::Send => 0x5eed_5eed_0000_0001,
            Dir::Recv => 0x5eed_5eed_0000_0002,
        };
        Splitmix(self.seed ^ dir_tag ^ frame.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// splitmix64 — tiny, deterministic, dependency-free.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)`; requires `lo < hi`.
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

/// A [`Channel`] wrapper that injects the faults scripted in a
/// [`FaultPlan`]. See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct FaultChannel<C> {
    inner: Option<C>,
    plan: FaultPlan,
    sent: u64,
    received: u64,
}

impl<C: Channel> FaultChannel<C> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        Self {
            inner: Some(inner),
            plan,
            sent: 0,
            received: 0,
        }
    }

    /// Frames sent so far (counting dropped and faulted ones).
    pub fn frames_sent(&self) -> u64 {
        self.sent
    }

    /// Frames received so far (counting dropped ones).
    pub fn frames_received(&self) -> u64 {
        self.received
    }

    /// Truncation point for a frame of `len` bytes: keeps at least the
    /// tag byte, never the whole frame. Single-byte frames cut to the
    /// tag alone (a zero-length cut would be indistinguishable from a
    /// legitimate empty frame).
    fn cut_point(rng: &mut Splitmix, len: usize) -> usize {
        if len <= 1 {
            1.min(len)
        } else {
            rng.in_range(1, len)
        }
    }

    fn mutate(rng: &mut Splitmix, kind: &FaultKind, data: &[u8]) -> Vec<u8> {
        match kind {
            FaultKind::Truncate | FaultKind::ShortWrite => {
                data[..Self::cut_point(rng, data.len())].to_vec()
            }
            FaultKind::Corrupt => {
                let mut out = data.to_vec();
                if out.len() > 1 {
                    let idx = rng.in_range(1, out.len());
                    let mask = (rng.in_range(1, 256)) as u8;
                    out[idx] ^= mask;
                } else if let Some(b) = out.first_mut() {
                    *b ^= 0xff;
                }
                out
            }
            FaultKind::CorruptAt(spots) => {
                let mut out = data.to_vec();
                for &(idx, mask) in spots {
                    if let Some(b) = out.get_mut(idx) {
                        *b ^= mask;
                    }
                }
                out
            }
            _ => data.to_vec(),
        }
    }
}

impl<C: Channel> Channel for FaultChannel<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        let frame = self.sent;
        self.sent += 1;
        let Some(inner) = self.inner.as_mut() else {
            return Err(ChannelError::Closed);
        };
        match self.plan.get(Dir::Send, frame).cloned() {
            None => inner.send(data),
            Some(FaultKind::DropFrame) => Ok(()),
            Some(FaultKind::Disconnect) => {
                self.inner = None;
                Err(ChannelError::Closed)
            }
            Some(FaultKind::Stall(d)) => {
                std::thread::sleep(d);
                inner.send(data)
            }
            Some(kind @ FaultKind::ShortWrite) => {
                let mut rng = self.plan.rng(Dir::Send, frame);
                let mangled = Self::mutate(&mut rng, &kind, data);
                let _ = inner.send(&mangled);
                self.inner = None;
                Err(ChannelError::Closed)
            }
            Some(kind) => {
                let mut rng = self.plan.rng(Dir::Send, frame);
                let mangled = Self::mutate(&mut rng, &kind, data);
                inner.send(&mangled)
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        loop {
            let frame = self.received;
            self.received += 1;
            let Some(inner) = self.inner.as_mut() else {
                return Err(ChannelError::Closed);
            };
            match self.plan.get(Dir::Recv, frame).cloned() {
                None => return inner.recv(),
                Some(FaultKind::DropFrame) => {
                    inner.recv()?;
                    continue;
                }
                Some(FaultKind::Disconnect) => {
                    self.inner = None;
                    return Err(ChannelError::Closed);
                }
                Some(FaultKind::Stall(d)) => {
                    std::thread::sleep(d);
                    return inner.recv();
                }
                Some(kind @ FaultKind::ShortWrite) => {
                    let data = inner.recv()?;
                    let mut rng = self.plan.rng(Dir::Recv, frame);
                    let mangled = Self::mutate(&mut rng, &kind, &data);
                    self.inner = None;
                    return Ok(mangled);
                }
                Some(kind) => {
                    let data = inner.recv()?;
                    let mut rng = self.plan.rng(Dir::Recv, frame);
                    return Ok(Self::mutate(&mut rng, &kind, &data));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex;

    #[test]
    fn fault_free_plan_is_transparent() {
        let (a, mut b) = duplex();
        let mut fa = FaultChannel::new(a, FaultPlan::new(7));
        fa.send(&[1, 2, 3]).unwrap();
        b.send(&[4]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(fa.recv().unwrap(), vec![4]);
        assert_eq!(fa.frames_sent(), 1);
        assert_eq!(fa.frames_received(), 1);
    }

    #[test]
    fn truncate_keeps_tag_and_is_deterministic() {
        let frame = [9u8, 1, 2, 3, 4, 5, 6, 7];
        let cut = |seed: u64| {
            let (a, mut b) = duplex();
            let mut fa = FaultChannel::new(a, FaultPlan::new(seed).on_send(0, FaultKind::Truncate));
            fa.send(&frame).unwrap();
            b.recv().unwrap()
        };
        let first = cut(42);
        assert_eq!(first, cut(42), "same seed, same truncation");
        assert!(!first.is_empty() && first.len() < frame.len());
        assert_eq!(first[0], 9, "tag byte survives");
    }

    #[test]
    fn corrupt_flips_exactly_one_non_tag_byte() {
        let frame = [9u8, 1, 2, 3, 4, 5];
        let (a, mut b) = duplex();
        let mut fa = FaultChannel::new(a, FaultPlan::new(3).on_send(0, FaultKind::Corrupt));
        fa.send(&frame).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.len(), frame.len());
        assert_eq!(got[0], 9, "tag byte preserved");
        let diffs = frame.iter().zip(&got).filter(|(x, y)| x != y).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn corrupt_at_hits_exact_positions() {
        let frame = [0x10u8, 0x20, 0x30];
        let (a, mut b) = duplex();
        let plan = FaultPlan::new(0).on_send(0, FaultKind::CorruptAt(vec![(1, 0xff), (99, 0x01)]));
        let mut fa = FaultChannel::new(a, plan);
        fa.send(&frame).unwrap();
        assert_eq!(b.recv().unwrap(), vec![0x10, 0xdf, 0x30]);
    }

    #[test]
    fn disconnect_fails_this_and_all_later_operations() {
        let (a, mut b) = duplex();
        let mut fa = FaultChannel::new(a, FaultPlan::new(1).on_send(1, FaultKind::Disconnect));
        fa.send(&[1]).unwrap();
        assert_eq!(fa.send(&[2]), Err(ChannelError::Closed));
        assert_eq!(fa.send(&[3]), Err(ChannelError::Closed));
        assert_eq!(fa.recv(), Err(ChannelError::Closed));
        // The peer sees a real close after the one delivered frame.
        assert_eq!(b.recv().unwrap(), vec![1]);
        assert_eq!(b.recv(), Err(ChannelError::Closed));
    }

    #[test]
    fn drop_frame_on_recv_skips_to_next() {
        let (mut a, b) = duplex();
        let mut fb = FaultChannel::new(b, FaultPlan::new(5).on_recv(0, FaultKind::DropFrame));
        a.send(&[1]).unwrap();
        a.send(&[2]).unwrap();
        assert_eq!(fb.recv().unwrap(), vec![2]);
        assert_eq!(fb.frames_received(), 2);
    }

    #[test]
    fn short_write_delivers_prefix_then_closes() {
        let (a, mut b) = duplex();
        let mut fa = FaultChannel::new(a, FaultPlan::new(11).on_send(0, FaultKind::ShortWrite));
        assert_eq!(fa.send(&[9, 1, 2, 3, 4]), Err(ChannelError::Closed));
        let got = b.recv().unwrap();
        assert!(!got.is_empty() && got.len() < 5);
        assert_eq!(got[0], 9);
        assert_eq!(b.recv(), Err(ChannelError::Closed));
    }

    #[test]
    fn stall_delays_but_delivers() {
        let (a, mut b) = duplex();
        let plan = FaultPlan::new(2).on_send(0, FaultKind::Stall(Duration::from_millis(30)));
        let mut fa = FaultChannel::new(a, plan);
        let t0 = std::time::Instant::now();
        fa.send(&[7]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(b.recv().unwrap(), vec![7]);
    }
}
