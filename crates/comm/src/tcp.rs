//! TCP transport: the same framed [`Channel`] over a real socket, for
//! two-machine deployments (the paper's evaluation setting).
//!
//! Frames are `u32` little-endian length prefixes followed by the
//! payload.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use crate::{Channel, ChannelClosed};

/// A [`Channel`] over a TCP stream.
#[derive(Debug)]
pub struct TcpChannel {
    stream: TcpStream,
}

impl TcpChannel {
    /// Connects to a listening peer.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Accepts a single inbound connection on `addr`.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn accept(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Binds a listener and returns it together with its local address —
    /// lets tests pick an ephemeral port race-free.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn listener(addr: impl ToSocketAddrs) -> std::io::Result<TcpListener> {
        TcpListener::bind(addr)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    /// Propagates socket errors (setting `TCP_NODELAY`).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelClosed> {
        let len = (data.len() as u32).to_le_bytes();
        self.stream.write_all(&len).map_err(|_| ChannelClosed)?;
        self.stream.write_all(data).map_err(|_| ChannelClosed)?;
        self.stream.flush().map_err(|_| ChannelClosed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelClosed> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|_| ChannelClosed)?;
        let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
        self.stream
            .read_exact(&mut buf)
            .map_err(|_| ChannelClosed)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_roundtrip_over_localhost() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut ch = TcpChannel::from_stream(stream).expect("wrap");
            for i in 0..50usize {
                let msg = ch.recv().expect("recv");
                assert_eq!(msg.len(), i * 13 % 300);
            }
            ch.send(b"done").expect("send");
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        for i in 0..50usize {
            client.send(&vec![7u8; i * 13 % 300]).expect("send");
        }
        assert_eq!(client.recv().expect("recv"), b"done");
        server.join().expect("server");
    }

    #[test]
    fn empty_frames_are_preserved() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut ch = TcpChannel::from_stream(stream).expect("wrap");
            assert_eq!(ch.recv().expect("recv"), Vec::<u8>::new());
            assert_eq!(ch.recv().expect("recv"), vec![1]);
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        client.send(&[]).expect("send empty");
        client.send(&[1]).expect("send");
        server.join().expect("server");
    }
}
