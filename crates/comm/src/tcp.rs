//! TCP transport: the same framed [`Channel`] over a real socket, for
//! two-machine deployments (the paper's evaluation setting).
//!
//! Frames are `u32` little-endian length prefixes followed by the
//! payload. The length prefix is attacker-controlled on an untrusted
//! peer, so [`TcpChannel::recv`] caps it at [`MAX_FRAME_LEN`] before
//! allocating.
//!
//! Read and write deadlines map onto the kernel's
//! `SO_RCVTIMEO`/`SO_SNDTIMEO` via [`TcpChannel::set_read_timeout`] /
//! [`TcpChannel::set_write_timeout`]; an elapsed deadline surfaces as
//! [`ChannelError::Timeout`].

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::{Channel, ChannelError};

/// Upper bound a single frame's length prefix may claim, in bytes
/// (64 MiB). Far above any legitimate frame — the largest real frames
/// are streamed garbled-table chunks well under a megabyte — but small
/// enough that a hostile length prefix cannot force a multi-gigabyte
/// allocation. A violating prefix surfaces as
/// [`ChannelError::Io`]`(InvalidData)`.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// A [`Channel`] over a TCP stream.
#[derive(Debug)]
pub struct TcpChannel {
    stream: TcpStream,
}

impl TcpChannel {
    /// Connects to a listening peer.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Accepts a single inbound connection on `addr`.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn accept(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Binds a listener and returns it together with its local address —
    /// lets tests pick an ephemeral port race-free.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn listener(addr: impl ToSocketAddrs) -> std::io::Result<TcpListener> {
        TcpListener::bind(addr)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    /// Propagates socket errors (setting `TCP_NODELAY`).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sets (or clears, with `None`) the socket read deadline
    /// (`SO_RCVTIMEO`). A blocked [`recv`](Channel::recv) past the
    /// deadline returns [`ChannelError::Timeout`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sets (or clears, with `None`) the socket write deadline
    /// (`SO_SNDTIMEO`). A blocked [`send`](Channel::send) past the
    /// deadline returns [`ChannelError::Timeout`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_write_timeout(timeout)
    }

    /// The underlying stream — for harnesses that need socket-level
    /// control (e.g. `shutdown`).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        let len = (data.len() as u32).to_le_bytes();
        self.stream
            .write_all(&len)
            .map_err(|e| ChannelError::from_io(&e))?;
        self.stream
            .write_all(data)
            .map_err(|e| ChannelError::from_io(&e))?;
        self.stream.flush().map_err(|e| ChannelError::from_io(&e))
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| ChannelError::from_io(&e))?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ChannelError::Io(std::io::ErrorKind::InvalidData));
        }
        let mut buf = vec![0u8; len];
        self.stream
            .read_exact(&mut buf)
            .map_err(|e| ChannelError::from_io(&e))?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_roundtrip_over_localhost() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut ch = TcpChannel::from_stream(stream).expect("wrap");
            for i in 0..50usize {
                let msg = ch.recv().expect("recv");
                assert_eq!(msg.len(), i * 13 % 300);
            }
            ch.send(b"done").expect("send");
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        for i in 0..50usize {
            client.send(&vec![7u8; i * 13 % 300]).expect("send");
        }
        assert_eq!(client.recv().expect("recv"), b"done");
        server.join().expect("server");
    }

    #[test]
    fn empty_frames_are_preserved() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut ch = TcpChannel::from_stream(stream).expect("wrap");
            assert_eq!(ch.recv().expect("recv"), Vec::<u8>::new());
            assert_eq!(ch.recv().expect("recv"), vec![1]);
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        client.send(&[]).expect("send empty");
        client.send(&[1]).expect("send");
        server.join().expect("server");
    }

    #[test]
    fn read_deadline_surfaces_as_timeout() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _silent = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("set timeout");
        assert_eq!(client.recv(), Err(ChannelError::Timeout));
    }

    #[test]
    fn disconnected_peer_surfaces_as_closed() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            drop(stream);
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        server.join().expect("server");
        assert_eq!(client.recv(), Err(ChannelError::Closed));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let listener = TcpChannel::listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            // Claim a 4 GiB - 1 frame without sending a body.
            stream.write_all(&u32::MAX.to_le_bytes()).expect("write");
            stream.flush().expect("flush");
            // Hold the socket open so the failure is the cap, not EOF.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut client = TcpChannel::connect(addr).expect("connect");
        assert_eq!(
            client.recv(),
            Err(ChannelError::Io(std::io::ErrorKind::InvalidData))
        );
        server.join().expect("server");
    }
}
