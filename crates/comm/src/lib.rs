//! Two-party communication substrate.
//!
//! The GC literature's cost metric is *communication* (garbled tables
//! dominate). This crate provides length-framed byte channels between the
//! two protocol threads plus a byte-counting wrapper the benchmark
//! harness uses to report exact traffic.
//!
//! Failures are typed: every channel operation returns a
//! [`ChannelError`] distinguishing a peer disconnect from an elapsed
//! read/write deadline from other transport failures, so the layers
//! above (protocol sessions, the garbler service) can tear down with an
//! exact reason instead of a generic "closed".
//!
//! For robustness testing, [`fault::FaultChannel`] wraps any channel
//! with a seeded, scripted fault schedule — truncated frames, flipped
//! bytes, short writes, stalls, hard disconnects — so every failure
//! mode is deterministically reproducible.
//!
//! ```
//! use arm2gc_comm::{duplex, Channel};
//! let (mut a, mut b) = duplex();
//! a.send(b"hello").unwrap();
//! assert_eq!(b.recv().unwrap(), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod tcp;

pub use fault::{FaultChannel, FaultKind, FaultPlan};
pub use tcp::TcpChannel;

use std::error::Error;

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Why a channel operation failed.
///
/// The distinction matters for containment: a [`Timeout`] means the
/// peer is alive-but-stalled past a configured deadline, a [`Closed`]
/// means it hung up, and [`Io`] preserves the original socket error
/// kind for everything else. Layers above map these onto their own
/// failure taxonomies (e.g. the garbler service's `SessionError`).
///
/// [`Timeout`]: ChannelError::Timeout
/// [`Closed`]: ChannelError::Closed
/// [`Io`]: ChannelError::Io
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The peer disconnected (orderly close or end of stream).
    Closed,
    /// A configured read or write deadline elapsed before the
    /// operation completed.
    Timeout,
    /// Any other transport failure, with the original
    /// [`io::ErrorKind`] preserved.
    Io(io::ErrorKind),
}

impl ChannelError {
    /// Classifies an [`io::Error`] from a socket operation.
    ///
    /// End-of-stream maps to [`Closed`](Self::Closed), elapsed
    /// `SO_RCVTIMEO`/`SO_SNDTIMEO` deadlines (surfaced as `WouldBlock`
    /// or `TimedOut` depending on platform) map to
    /// [`Timeout`](Self::Timeout), everything else keeps its kind.
    pub fn from_io(e: &io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ChannelError::Closed,
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ChannelError::Timeout,
            kind => ChannelError::Io(kind),
        }
    }

    /// Whether this failure means the peer went away (as opposed to a
    /// deadline or a local error): a close, a reset, or a broken pipe.
    pub fn is_disconnect(&self) -> bool {
        matches!(
            self,
            ChannelError::Closed
                | ChannelError::Io(
                    io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::BrokenPipe,
                )
        )
    }
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Closed => f.write_str("channel closed by peer"),
            ChannelError::Timeout => f.write_str("channel deadline elapsed"),
            ChannelError::Io(kind) => write!(f, "channel io failure: {kind}"),
        }
    }
}

impl Error for ChannelError {}

/// A reliable, ordered, message-framed duplex byte channel.
pub trait Channel: Send {
    /// Sends one framed message.
    ///
    /// # Errors
    /// Returns a [`ChannelError`] when the peer disconnected, a write
    /// deadline elapsed, or the transport failed.
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError>;

    /// Receives the next framed message, blocking until one arrives.
    ///
    /// # Errors
    /// Returns a [`ChannelError`] when the peer disconnected, a read
    /// deadline elapsed, or the transport failed.
    fn recv(&mut self) -> Result<Vec<u8>, ChannelError>;
}

/// In-memory channel endpoint (crossbeam-backed).
#[derive(Debug)]
pub struct MemChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-memory channel endpoints.
pub fn duplex() -> (MemChannel, MemChannel) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        MemChannel {
            tx: tx_ab,
            rx: rx_ba,
        },
        MemChannel {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

impl Channel for MemChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.tx
            .send(data.to_vec())
            .map_err(|_| ChannelError::Closed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        self.rx.recv().map_err(|_| ChannelError::Closed)
    }
}

/// Shared traffic counters of a [`CountingChannel`].
#[derive(Debug, Default)]
pub struct TrafficStats {
    sent_bytes: AtomicU64,
    sent_msgs: AtomicU64,
    recv_bytes: AtomicU64,
}

impl TrafficStats {
    /// Total payload bytes sent through the wrapped channel.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes.load(Ordering::Relaxed)
    }

    /// Number of framed messages sent.
    pub fn sent_msgs(&self) -> u64 {
        self.sent_msgs.load(Ordering::Relaxed)
    }

    /// Total payload bytes received.
    pub fn recv_bytes(&self) -> u64 {
        self.recv_bytes.load(Ordering::Relaxed)
    }
}

/// Wraps a [`Channel`] and counts traffic in both directions.
#[derive(Debug)]
pub struct CountingChannel<C> {
    inner: C,
    stats: Arc<TrafficStats>,
}

impl<C: Channel> CountingChannel<C> {
    /// Wraps `inner`; the returned handle shares the stats.
    pub fn new(inner: C) -> (Self, Arc<TrafficStats>) {
        let stats = Arc::new(TrafficStats::default());
        (
            Self {
                inner,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl<C: Channel> Channel for CountingChannel<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.stats
            .sent_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.inner.send(data)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        let msg = self.inner.recv()?;
        self.stats
            .recv_bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        Ok(msg)
    }
}

impl<C: Channel + ?Sized> Channel for &mut C {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        (**self).send(data)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        (**self).recv()
    }
}

impl<C: Channel + ?Sized> Channel for Box<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        (**self).send(data)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        (**self).recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_directions() {
        let (mut a, mut b) = duplex();
        a.send(&[1, 2, 3]).unwrap();
        b.send(&[9]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(a.recv().unwrap(), vec![9]);
    }

    #[test]
    fn ordering_preserved() {
        let (mut a, mut b) = duplex();
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn closed_peer_errors() {
        let (mut a, b) = duplex();
        drop(b);
        assert_eq!(a.send(&[1]), Err(ChannelError::Closed));
    }

    #[test]
    fn io_error_classification() {
        use io::ErrorKind;
        let eof = io::Error::new(ErrorKind::UnexpectedEof, "eof");
        assert_eq!(ChannelError::from_io(&eof), ChannelError::Closed);
        let timeout = io::Error::new(ErrorKind::TimedOut, "slow");
        assert_eq!(ChannelError::from_io(&timeout), ChannelError::Timeout);
        let block = io::Error::new(ErrorKind::WouldBlock, "slow");
        assert_eq!(ChannelError::from_io(&block), ChannelError::Timeout);
        let reset = io::Error::new(ErrorKind::ConnectionReset, "rst");
        assert_eq!(
            ChannelError::from_io(&reset),
            ChannelError::Io(ErrorKind::ConnectionReset)
        );
        assert!(ChannelError::from_io(&reset).is_disconnect());
        assert!(ChannelError::Closed.is_disconnect());
        assert!(!ChannelError::Timeout.is_disconnect());
    }

    #[test]
    fn counting_wrapper_counts() {
        let (a, mut b) = duplex();
        let (mut ca, stats) = CountingChannel::new(a);
        ca.send(&[0; 100]).unwrap();
        ca.send(&[0; 28]).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(stats.sent_bytes(), 128);
        assert_eq!(stats.sent_msgs(), 2);
    }

    #[test]
    fn cross_thread_usage() {
        let (mut a, mut b) = duplex();
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                a.send(&i.to_le_bytes()).unwrap();
            }
            a.recv().unwrap()
        });
        for i in 0..100u32 {
            assert_eq!(b.recv().unwrap(), i.to_le_bytes());
        }
        b.send(b"done").unwrap();
        assert_eq!(t.join().unwrap(), b"done");
    }
}
