//! Offline API-compatible subset of the `crossbeam` crate.
//!
//! This workspace builds without network access, so the handful of
//! `crossbeam` items it uses are reimplemented here over the standard
//! library. Only [`channel::unbounded`] and the associated
//! [`channel::Sender`] / [`channel::Receiver`] types are provided; swap
//! this crate's `path` dependency for the registry `crossbeam` to get
//! the real thing (the API surface is drop-in compatible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! MPMC-style channels (subset: unbounded MPSC over `std::sync::mpsc`).

    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    ///
    /// `send` fails once the receiving half is dropped, matching
    /// crossbeam's disconnect semantics.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if every receiver is gone.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying the message back when the
        /// receiving side has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        /// Returns [`RecvError`] when the sending side has disconnected
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7u8), Err(SendError(7)));
        }
    }
}
