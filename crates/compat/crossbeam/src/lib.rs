//! Offline API-compatible subset of the `crossbeam` crate.
//!
//! This workspace builds without network access, so the handful of
//! `crossbeam` items it uses are reimplemented here over the standard
//! library. Provided: [`channel::unbounded`] and [`channel::bounded`]
//! with the associated [`channel::Sender`] / [`channel::Receiver`]
//! types, and [`thread::scope`] with crossbeam's
//! closure-takes-`&Scope` spawning API. Swap this crate's `path`
//! dependency for the registry `crossbeam` to get the real thing (the
//! API surface is drop-in compatible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads (subset: [`scope`] over `std::thread::scope`).
    //!
    //! Matches crossbeam's API shape — the closure passed to
    //! [`Scope::spawn`] receives the scope again (`|_| ...` when
    //! unused), and [`scope`] returns a [`Result`] that is `Err` when
    //! any unjoined spawned thread (or the closure itself) panicked —
    //! rather than std's propagate-by-panic behaviour.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// `Ok`, or the payload of a panic that escaped the scope.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries its panic
        /// payload.
        ///
        /// # Errors
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the
        /// scope so it can spawn further threads (crossbeam's shape).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope whose spawned threads may borrow from the
    /// enclosing stack frame; all are joined before `scope` returns.
    ///
    /// # Errors
    /// Returns the panic payload when the closure or any unjoined
    /// spawned thread panicked (instead of propagating the panic, as
    /// `std::thread::scope` does).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = scope(|s| {
                let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let got = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(got, 7);
        }

        #[test]
        fn panics_surface_as_err() {
            let res = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(res.is_err());
        }
    }
}

pub mod channel {
    //! MPMC-style channels (subset: unbounded and bounded MPSC over
    //! `std::sync::mpsc`). A [`bounded`] channel's `send` blocks while
    //! the queue is at capacity — the backpressure primitive the
    //! garbler service builds its per-session send queues on.

    use std::fmt;
    use std::sync::mpsc;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    ///
    /// `send` fails once the receiving half is dropped, matching
    /// crossbeam's disconnect semantics; on a [`bounded`] channel it
    /// blocks while the queue is full.
    pub struct Sender<T>(Tx<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if every receiver is gone. On a
        /// [`bounded`] channel this blocks while the queue is full.
        ///
        /// # Errors
        /// Returns [`SendError`] carrying the message back when the
        /// receiving side has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        /// Returns [`RecvError`] when the sending side has disconnected
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel holding at most `cap` queued messages;
    /// `send` blocks while the queue is full. `cap` of zero is a
    /// rendezvous channel (every send waits for a matching receive).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7u8), Err(SendError(7)));
        }

        #[test]
        fn bounded_send_blocks_at_capacity_until_a_receive() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Arc;
            use std::time::Duration;

            let (tx, rx) = bounded(2);
            let sent = Arc::new(AtomicUsize::new(0));
            let sent2 = sent.clone();
            let producer = std::thread::spawn(move || {
                for i in 0..4u8 {
                    tx.send(i).unwrap();
                    sent2.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Give the producer time to fill the queue; it must stall
            // at capacity (2 queued) rather than run ahead.
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(sent.load(Ordering::SeqCst), 2);
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            producer.join().unwrap();
            assert_eq!(sent.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn bounded_send_fails_after_receiver_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9u8), Err(SendError(9)));
        }
    }
}
