//! Offline API-compatible subset of the `criterion` crate.
//!
//! This workspace builds without network access, so the criterion API
//! surface its benches use is reimplemented here as a plain wall-clock
//! harness: warm-up, a fixed number of timed samples, and a median /
//! mean report on stdout. No statistics beyond that, no HTML reports,
//! no comparison against saved baselines. Swap this crate's `path`
//! dependency for the registry `criterion` to get the real thing.
//!
//! Supported: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::throughput`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`], plus the CLI filter and
//! the `--bench` / `--test` flags cargo passes to `harness = false`
//! targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's throughput is expressed in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            default_sample_size: 100,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Applies the subset of criterion's CLI this shim understands:
    /// a positional substring filter, `--bench` (ignored) and `--test`
    /// (run each benchmark exactly once, as `cargo test --benches` does).
    /// Other criterion flags are skipped — including the value of
    /// value-taking ones, so e.g. `--sample-size 50` is not mistaken
    /// for a filter.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        // Real-criterion flags that consume a separate value argument.
        const VALUE_FLAGS: &[&str] = &[
            "--baseline",
            "--color",
            "--confidence-level",
            "--load-baseline",
            "--measurement-time",
            "--noise-threshold",
            "--nresamples",
            "--output-format",
            "--plotting-backend",
            "--profile-time",
            "--sample-size",
            "--save-baseline",
            "--significance-level",
            "--warm-up-time",
        ];
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.test_mode = true,
                a if VALUE_FLAGS.contains(&a) => {
                    let _ = args.next();
                }
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if self.test_mode { 1 } else { sample_size },
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        report(id, throughput, &mut bencher.samples);
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&id, sample_size, throughput, f);
        self
    }

    /// Ends the group (no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then `sample_size` timed
    /// samples, each batching enough iterations to be measurable.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up and batch sizing: aim for samples of >= ~1ms each.
        let warmup_start = Instant::now();
        let mut iters_per_sample: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
            if warmup_start.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }
}

fn report(id: &str, throughput: Option<Throughput>, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} median {:>12?}  mean {:>12?}  ({} samples){rate}",
        median,
        mean,
        samples.len()
    );
}

/// Declares a benchmark group function, criterion-style:
/// `criterion_group!(name, bench_fn_a, bench_fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running every `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 100,
            test_mode: true,
        };
        let mut ran = 0;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_function("one", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            default_sample_size: 10,
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes_match_me_yes", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
