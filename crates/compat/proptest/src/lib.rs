//! Offline API-compatible subset of the `proptest` crate.
//!
//! This workspace builds without network access, so the proptest surface
//! its tests use is reimplemented here: the [`proptest!`] macro (typed
//! params via [`any`](arbitrary::any), `name in strategy` params, an optional inner
//! `#![proptest_config(..)]`), integer-range and [`collection::vec`]
//! strategies, the `prop_assert*` / [`prop_assume!`] macros and a
//! deterministic per-test RNG. **No shrinking**: a failing case reports
//! its inputs (params must be `Debug`) and panics as-is. Case counts
//! come from [`ProptestConfig`](test_runner::Config) or the
//! `PROPTEST_CASES` environment variable (default 256). Swap this
//! crate's `path` dependency for the registry `proptest` to get the
//! real thing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration, RNG and error plumbing for generated test fns.

    /// Aborts a test case without failing it (see [`crate::prop_assume!`])
    /// or fails it with a message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case's inputs don't satisfy a `prop_assume!` filter.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection (filtered case).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// Builds a failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// True when this is a `prop_assume!` rejection.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Test-run configuration (the prelude re-exports this as
    /// `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
        /// Upper bound on rejected cases before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        /// Defaults to 256 cases, overridable with `PROPTEST_CASES`.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A config running exactly `cases` successful cases. As in real
        /// proptest, an explicit count is authoritative: `PROPTEST_CASES`
        /// only influences [`Config::default`].
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Deterministic splitmix64 RNG; seeded per test from the test's
    /// path (so tests are independent) and `PROPTEST_SEED` if set.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a raw value.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds deterministically from a test's name, mixed with the
        /// `PROPTEST_SEED` environment variable when present.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let env_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0x9e37_79b9_7f4a_7c15);
            TestRng::from_seed(h ^ env_seed)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 uniform bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the range strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values (no shrinking in this shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Modulo bias is irrelevant at test-sampling fidelity.
                    let span = (self.end - self.start) as u128;
                    self.start.wrapping_add((rng.next_u128() % span) as $t)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    if span == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    lo.wrapping_add((rng.next_u128() % (span + 1)) as $t)
                }
            }
        )*};
    }

    uint_range_strategy!(u8, u16, u32, u64, u128, usize);

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u128() % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! [`any`] and the [`Arbitrary`] trait for common types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
        fn arbitrary(rng: &mut TestRng) -> (A, B) {
            (A::arbitrary(rng), B::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec()`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supported grammar (a subset of real proptest's). Doc comments and
/// attributes — in particular `#[test]` and `#[ignore]` — pass through
/// to the emitted zero-argument functions:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///
///     fn typed_params(a: u32, flag: bool) {
///         prop_assume!(a != 17);
///         prop_assert!(flag || !flag, "a = {}", a);
///     }
///
///     fn strategy_params(x in 0u64..100, v in proptest::collection::vec(any::<u32>(), 0..9)) {
///         prop_assert!(x < 100);
///         prop_assert_ne!(v.len(), 9);
///     }
/// }
///
/// // In a test file these would be `#[test]` fns; call them directly here.
/// typed_params();
/// strategy_params();
/// ```
///
/// Each parameter type must implement `Debug` (inputs are reported on
/// failure). There is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params!(
                ($cfg)
                (concat!(module_path!(), "::", stringify!($name)))
                []
                ($($params)*)
                $body
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // `name in strategy`, further params follow.
    (($cfg:expr) ($fname:expr) [$($acc:tt)*] ($v:ident in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_params!(($cfg) ($fname) [$($acc)* ($v, $s)] ($($rest)*) $body)
    };
    // `name in strategy`, last param.
    (($cfg:expr) ($fname:expr) [$($acc:tt)*] ($v:ident in $s:expr) $body:block) => {
        $crate::__proptest_params!(($cfg) ($fname) [$($acc)* ($v, $s)] () $body)
    };
    // `name: Type`, further params follow.
    (($cfg:expr) ($fname:expr) [$($acc:tt)*] ($v:ident : $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_params!(
            ($cfg) ($fname) [$($acc)* ($v, $crate::arbitrary::any::<$t>())] ($($rest)*) $body
        )
    };
    // `name: Type`, last param.
    (($cfg:expr) ($fname:expr) [$($acc:tt)*] ($v:ident : $t:ty) $body:block) => {
        $crate::__proptest_params!(
            ($cfg) ($fname) [$($acc)* ($v, $crate::arbitrary::any::<$t>())] () $body
        )
    };
    // All params parsed: run the cases.
    (($cfg:expr) ($fname:expr) [$(($v:ident, $s:expr))*] () $body:block) => {{
        let __config: $crate::test_runner::Config = $cfg;
        let __cases = __config.cases;
        let mut __rng = $crate::test_runner::TestRng::for_test($fname);
        let mut __valid: u32 = 0;
        let mut __rejects: u32 = 0;
        while __valid < __cases {
            $(let $v = $crate::strategy::Strategy::sample(&($s), &mut __rng);)*
            let __inputs =
                ::std::format!(concat!($(stringify!($v), " = {:?}; "),*), $(&$v),*);
            // catch_unwind so that a panic *inside* the code under test
            // still reports which inputs triggered it, same as an
            // assertion failure would.
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })) {
                    ::std::result::Result::Ok(__r) => __r,
                    ::std::result::Result::Err(__payload) => {
                        ::std::eprintln!(
                            "proptest `{}` panicked after {} passing case(s)\n  inputs: {}\n  \
                             (deterministic; rerun with PROPTEST_SEED to vary)",
                            $fname, __valid, __inputs
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                };
            match __result {
                ::std::result::Result::Ok(()) => __valid += 1,
                ::std::result::Result::Err(ref __e) if __e.is_reject() => {
                    __rejects += 1;
                    assert!(
                        __rejects <= __config.max_global_rejects,
                        "proptest `{}`: too many prop_assume! rejections ({})",
                        $fname,
                        __rejects
                    );
                }
                ::std::result::Result::Err(__e) => {
                    panic!(
                        "proptest `{}` failed after {} passing case(s): {}\n  inputs: {}\n  \
                         (deterministic; rerun with PROPTEST_SEED to vary)",
                        $fname, __valid, __e, __inputs
                    );
                }
            }
        }
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right),
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case (does not count toward the case total)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u128(), b.next_u128());
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(0u8..16), &mut rng);
            assert!(w < 16);
            let x = Strategy::sample(&(1usize..5), &mut rng);
            assert!((1..5).contains(&x));
            let y = Strategy::sample(&(0u128..u128::MAX), &mut rng);
            assert!(y < u128::MAX);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec(any::<u32>(), 0..20), &mut rng);
            assert!(v.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro grammar: typed + `in` params, assume and asserts.
        #[test]
        fn macro_smoke(a: u32, b in 1u64..100, flag: bool, arr: [u8; 16]) {
            prop_assume!(a != 17);
            prop_assert!(b >= 1);
            prop_assert!(b < 100, "b = {}", b);
            prop_assert_eq!(arr.len(), 16);
            prop_assert_ne!(b, 0);
            let _ = flag;
        }
    }
}
