//! Offline API-compatible subset of the `threadpool` crate.
//!
//! This workspace builds without network access, so the worker-pool
//! surface the garbler service uses is reimplemented here over the
//! standard library: [`ThreadPool::new`], [`ThreadPool::execute`],
//! [`ThreadPool::join`], [`ThreadPool::active_count`] and
//! [`ThreadPool::queued_count`]. Swap this crate's `path` dependency
//! for the registry `threadpool` to get the real thing (the API
//! surface is drop-in compatible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    queue: Mutex<VecDeque<Job>>,
    /// Woken when a job is queued or shutdown is flagged.
    job_cv: Condvar,
    /// Woken when a worker finishes a job (for [`ThreadPool::join`]).
    done_cv: Condvar,
    queued: AtomicUsize,
    active: AtomicUsize,
    shutdown: AtomicBool,
}

/// A fixed-size pool of worker threads executing queued closures.
///
/// Jobs submitted with [`execute`](Self::execute) run in FIFO order on
/// the first free worker. Dropping the pool *detaches* the workers
/// (matching the registry crate): queued jobs still drain, but nothing
/// waits for them — call [`join`](Self::join) first when completion
/// matters. Detach-on-drop also means a wedged job can never hang the
/// owner's drop.
pub struct ThreadPool {
    inner: Arc<Inner>,
}

impl ThreadPool {
    /// Creates a pool with `workers` threads.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a thread pool needs at least one worker");
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            queued: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        for _ in 0..workers {
            let inner = Arc::clone(&inner);
            thread::spawn(move || worker_loop(&inner));
        }
        Self { inner }
    }

    /// Queues `job` for execution on the next free worker.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        // queued is bumped before the job is visible so observers never
        // see a job that counts nowhere.
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        self.inner.queue.lock().unwrap().push_back(Box::new(job));
        self.inner.job_cv.notify_one();
    }

    /// Blocks until every queued and running job has finished.
    pub fn join(&self) {
        let mut queue = self.inner.queue.lock().unwrap();
        while !queue.is_empty() || self.inner.active.load(Ordering::SeqCst) > 0 {
            queue = self.inner.done_cv.wait(queue).unwrap();
        }
    }

    /// Number of jobs currently executing on a worker.
    pub fn active_count(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Number of jobs queued and not yet picked up by a worker.
    pub fn queued_count(&self) -> usize {
        self.inner.queued.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Detach: flag shutdown and wake idle workers so they exit once
        // the queue drains. Never join — a wedged job must not hang us.
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.job_cv.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.job_cv.wait(queue).unwrap();
            }
        };
        inner.queued.fetch_sub(1, Ordering::SeqCst);
        inner.active.fetch_add(1, Ordering::SeqCst);
        // A panicking job takes down its worker thread only; the
        // counters stay consistent via this scope guard pattern.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        inner.active.fetch_sub(1, Ordering::SeqCst);
        // join() holds the queue lock while checking; take it here so
        // the notify cannot race between its check and its wait.
        let _guard = inner.queue.lock().unwrap();
        inner.done_cv.notify_all();
        drop(_guard);
        if result.is_err() {
            // Swallow the panic (registry crate restarts the worker; we
            // keep the thread, which amounts to the same pool size).
            continue;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs_and_join_waits() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.active_count(), 0);
        assert_eq!(pool.queued_count(), 0);
    }

    #[test]
    fn queued_count_reflects_backlog_past_pool_size() {
        let pool = ThreadPool::new(1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        // The single worker is occupied; these two must queue.
        pool.execute(|| {});
        pool.execute(|| {});
        assert_eq!(pool.active_count(), 1);
        assert_eq!(pool.queued_count(), 2);
        release_tx.send(()).unwrap();
        pool.join();
        assert_eq!(pool.queued_count(), 0);
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("job blew up"));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(pool.active_count(), 0);
    }

    #[test]
    fn drop_detaches_without_waiting_for_a_wedged_job() {
        let pool = ThreadPool::new(1);
        let (never_tx, never_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            // Wedge forever (the sender lives in this closure's sibling
            // variable below, kept alive past the drop).
            let _ = never_rx.recv_timeout(Duration::from_secs(3600));
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(pool); // must return immediately, not join the wedged worker
        drop(never_tx);
    }
}
