//! Differential validation of the CPU netlist.
//!
//! The circuit (run through the cleartext simulator) must agree with the
//! instruction-set simulator on every program — benchmark programs and
//! randomly generated instruction soup alike — and the SkipGate protocol
//! run must agree with both while garbling only the data-path gates.

use arm2gc_cpu::asm::assemble;
use arm2gc_cpu::isa::{Cond, DpOp, Instr, MemOffset, Shift, ShiftAmount};
use arm2gc_cpu::machine::{CpuConfig, GcMachine};
use arm2gc_cpu::programs;

fn check_program(m: &GcMachine, src: &str, alice: &[u32], bob: &[u32], max_cycles: usize) {
    let prog = assemble(src).expect("assembles");
    let iss = m.run_iss(&prog, alice, bob, max_cycles);
    let sim = m.run_sim(&prog, alice, bob, max_cycles);
    assert_eq!(sim.output, iss.output, "output mismatch");
    assert_eq!(sim.cycles, iss.cycles, "cycle count mismatch");
    assert_eq!(sim.halted, iss.halted, "halt mismatch");
}

#[test]
fn benchmark_programs_match_iss() {
    let m = GcMachine::new(CpuConfig::small());
    check_program(&m, &programs::sum32(), &[0xffff_ffff], &[1], 100);
    check_program(&m, &programs::compare32(), &[5], &[6], 100);
    check_program(&m, &programs::compare32(), &[6], &[5], 100);
    check_program(&m, &programs::mult32(), &[0x1234_5678], &[0x9abc_def0], 100);
    check_program(
        &m,
        &programs::hamming(2),
        &[0xaaaa_aaaa, 1],
        &[0x5555_5555, 3],
        2000,
    );
    check_program(
        &m,
        &programs::sum_wide(3),
        &[u32::MAX, u32::MAX, 7],
        &[1, 0, 1],
        2000,
    );
    check_program(&m, &programs::compare_wide(3), &[0, 0, 9], &[1, 0, 9], 2000);
}

#[test]
fn matmul_matches_iss() {
    let m = GcMachine::new(CpuConfig::small());
    let a: Vec<u32> = (1..=4).collect();
    let b: Vec<u32> = (5..=8).collect();
    check_program(&m, &programs::matmul(2), &a, &b, 5000);
}

#[test]
fn sorts_match_iss() {
    let m = GcMachine::new(CpuConfig::small());
    let a: Vec<u32> = vec![44, 11, 33, 22];
    let z: Vec<u32> = vec![7, 7, 7, 7];
    check_program(&m, &programs::bubble_sort(4), &a, &z, 50_000);
    check_program(&m, &programs::merge_sort(4), &a, &z, 50_000);
}

#[test]
fn dijkstra_and_cordic_match_iss() {
    let m = GcMachine::new(CpuConfig::small());
    const INF: u32 = 0x3f00_0000;
    let n = 4;
    let mut adj = vec![INF; n * n];
    adj[1] = 2;
    adj[n + 2] = 2;
    adj[2] = 5;
    adj[2 * n + 3] = 3;
    check_program(&m, &programs::dijkstra(n), &adj, &vec![0; n * n], 50_000);

    let angle = (0.5f64 * (1u64 << 30) as f64) as u32;
    check_program(
        &m,
        &programs::cordic(8),
        &[0x2000_0000, 0, angle],
        &[0, 0, 0],
        5_000,
    );
}

/// Random instruction soup: straight-line conditional code over the full
/// dp/mem/mul repertoire, ending in HALT.
#[test]
fn random_instruction_soup_matches_iss() {
    let m = GcMachine::new(CpuConfig::small());
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };

    for trial in 0..8 {
        let mut words: Vec<u32> = Vec::new();
        // Preamble: pull some private data into registers.
        for r in 0..4u8 {
            words.push(
                Instr::Mem {
                    cond: Cond::Al,
                    load: true,
                    rn: if r % 2 == 0 { 8 } else { 9 },
                    rd: r,
                    offset: MemOffset::Imm((r / 2) as i32),
                }
                .encode(),
            );
        }
        for _ in 0..60 {
            let r = rng();
            let cond = Cond::ALL[(r % 14) as usize]; // skip AL-bias, allow NV
            let rd = ((r >> 8) % 8) as u8;
            let rn = ((r >> 16) % 8) as u8;
            let rm = ((r >> 24) % 8) as u8;
            let instr = match (r >> 32) % 10 {
                0..=4 => {
                    let op = DpOp::ALL[((r >> 40) % 16) as usize];
                    if (r >> 44) & 1 == 0 {
                        Instr::DpImm {
                            cond,
                            op,
                            s: (r >> 45) & 1 == 1,
                            rn,
                            rd,
                            imm8: (r >> 48) as u8,
                            rot: ((r >> 56) % 16) as u8,
                        }
                    } else {
                        Instr::DpReg {
                            cond,
                            op,
                            s: (r >> 45) & 1 == 1,
                            rn,
                            rd,
                            rm,
                            shift: match (r >> 46) % 4 {
                                0 => Shift::Lsl,
                                1 => Shift::Lsr,
                                2 => Shift::Asr,
                                _ => Shift::Ror,
                            },
                            amount: if (r >> 50) & 1 == 0 {
                                ShiftAmount::Imm(((r >> 51) % 32) as u8)
                            } else {
                                ShiftAmount::Reg(((r >> 51) % 8) as u8)
                            },
                        }
                    }
                }
                5..=6 => Instr::Mem {
                    cond,
                    load: (r >> 40) & 1 == 1,
                    // Base registers r8..r11 keep addresses in mapped
                    // regions; offsets stay small.
                    rn: 8 + ((r >> 41) % 4) as u8,
                    rd,
                    offset: MemOffset::Imm(((r >> 43) % 16) as i32),
                },
                _ => Instr::Mul {
                    cond,
                    rd,
                    rm,
                    rs: rn,
                },
            };
            words.push(instr.encode());
        }
        words.push(Instr::Halt { cond: Cond::Al }.encode());

        let prog = arm2gc_cpu::asm::Program {
            text: words,
            data: Vec::new(),
            symbols: Default::default(),
        };
        let alice = [0xdead_beefu32, (rng() as u32) | 1];
        let bob = [0x0bad_f00du32, rng() as u32];
        let iss = m.run_iss(&prog, &alice, &bob, 100);
        let sim = m.run_sim(&prog, &alice, &bob, 100);
        assert_eq!(sim.output, iss.output, "trial {trial}");
        assert_eq!(sim.cycles, iss.cycles, "trial {trial}");
    }
}

/// The headline property (§4.3): running the garbled processor with
/// SkipGate costs only the data-path gates. "Sum 32" on the CPU must
/// cost exactly the 31 garbled tables the paper reports.
#[test]
fn skipgate_sum32_costs_31_tables() {
    let m = GcMachine::new(CpuConfig::small());
    let prog = assemble(&programs::sum32()).expect("assembles");
    let iss = m.run_iss(&prog, &[123_456], &[654_321], 64);
    let (run, stats) = m.run_skipgate(&prog, &[123_456], &[654_321], 64);
    assert_eq!(run.output, iss.output);
    assert_eq!(run.output[0], 777_777);
    assert_eq!(
        stats.garbled_tables, 31,
        "paper Table 2: Sum 32 on ARM2GC = 31 garbled non-XOR"
    );
}

/// Compare 32 on the CPU: the paper's Table 2 reports 32; we measure 64.
/// The CMP's borrow chain costs 32, and the Z (31) + V (1) flag writes
/// land in the CPSR flip-flops, which are live sinks under the paper's
/// own fanout-initialisation rule — so the extra 32 cannot be skipped by
/// Alg. 4/6 as specified. Documented in EXPERIMENTS.md.
#[test]
fn skipgate_compare32_costs_64_tables() {
    let m = GcMachine::new(CpuConfig::small());
    let prog = assemble(&programs::compare32()).expect("assembles");
    let (run, stats) = m.run_skipgate(&prog, &[1000], &[2000], 64);
    assert_eq!(run.output[0], 1);
    assert_eq!(stats.garbled_tables, 64);
}

/// Mult 32 on the CPU: the paper's Table 2 reports 993.
#[test]
fn skipgate_mult32_costs_993_tables() {
    let m = GcMachine::new(CpuConfig::small());
    let prog = assemble(&programs::mult32()).expect("assembles");
    let (run, stats) = m.run_skipgate(&prog, &[0xffff], &[0x10001], 64);
    assert_eq!(run.output[0], 0xffffu32.wrapping_mul(0x10001));
    assert_eq!(stats.garbled_tables, 993);
}

/// The reduction factor vs conventional GC on the processor must be
/// enormous (Table 4's "Improv. 1000X" column).
#[test]
fn skipgate_reduction_factor_is_huge() {
    let m = GcMachine::new(CpuConfig::small());
    let prog = assemble(&programs::sum32()).expect("assembles");
    let (_, stats) = m.run_skipgate(&prog, &[1], &[2], 64);
    let baseline = m.baseline_cost(stats.cycles_run);
    let factor = baseline / stats.garbled_tables.max(1) as u128;
    assert!(
        factor > 1000,
        "baseline {baseline} / skipgate {} = {factor}",
        stats.garbled_tables
    );
}

/// The garbled processor under the layer schedule: identical output,
/// identical cost counters, and the machine's cached schedule reports
/// the level structure the run executed with.
#[test]
fn skipgate_layer_scheduled_matches_netlist_on_cpu() {
    use arm2gc_cpu::machine::ScheduleMode;
    let m = GcMachine::new(CpuConfig::small());
    let sched = m.layer_schedule();
    assert!(sched.levels() > 1, "the CPU circuit is not one level deep");
    assert!(
        sched.max_nonlinear_width() > 1,
        "the CPU has parallel gates"
    );

    let prog = assemble(&programs::sum32()).expect("assembles");
    let iss = m.run_iss(&prog, &[123_456], &[654_321], 64);
    let (netlist, n_stats) = m.run_skipgate(&prog, &[123_456], &[654_321], 64);
    let (layered, l_stats) =
        m.run_skipgate_scheduled(&prog, &[123_456], &[654_321], 64, ScheduleMode::Layered);
    assert_eq!(layered.output, iss.output);
    assert_eq!(layered, netlist, "layered run matches the netlist run");
    assert_eq!(l_stats, n_stats, "cost counters are schedule-invariant");
}
