//! The garbled processor (§4 of the paper): an ARM-like CPU expressed as
//! a sequential Boolean circuit, plus the toolchain around it.
//!
//! * [`isa`] — the instruction set: 32-bit words with a 4-bit condition
//!   field on *every* instruction (the ARMv2a property §4.2 relies on),
//!   data-processing/memory/branch/multiply classes and ARM condition
//!   semantics;
//! * [`asm`] — a two-pass assembler (the substitution for `gcc-arm`; the
//!   protocol only consumes the public binary, so the producing
//!   toolchain is irrelevant — see DESIGN.md);
//! * [`iss`] — a cleartext instruction-set simulator used as the
//!   correctness oracle for the CPU circuit;
//! * [`circuit_gen`] — the CPU netlist generator: register file, barrel
//!   shifter, ALU, multiplier and the five memory regions of §4.1
//!   (instruction, data/stack, Alice, Bob, output) built from
//!   MUX/flip-flop arrays (§4.4: no ORAM);
//! * [`machine`] — glue: memory map, program loading, and runners that
//!   execute a program via the ISS, the cleartext circuit simulator, or
//!   the two-party SkipGate protocol;
//! * [`programs`] — the paper's benchmark programs in assembly
//!   (Tables 2–5).
//!
//! # Example
//!
//! ```
//! use arm2gc_cpu::asm::assemble;
//! use arm2gc_cpu::machine::{CpuConfig, GcMachine};
//!
//! let prog = assemble(
//!     "ldr r0, [r8]      ; r8 = Alice base
//!      ldr r1, [r9]      ; r9 = Bob base
//!      add r0, r0, r1
//!      str r0, [r10]     ; r10 = output base
//!      halt",
//! ).unwrap();
//! let machine = GcMachine::new(CpuConfig::small());
//! let run = machine.run_iss(&prog, &[20], &[22], 100);
//! assert_eq!(run.output[0], 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod circuit_gen;
pub mod disasm;
pub mod isa;
pub mod iss;
pub mod machine;
pub mod programs;
