//! The CPU netlist generator.
//!
//! Builds the garbled processor as one sequential circuit: each clock
//! cycle fetches, decodes and executes one instruction (the paper
//! removes pipelining/caches — §4.2 — since GC cost counts gates, not
//! critical path). Everything is constructed from the GC-optimised
//! stdlib, so when the program counter and instruction stream stay
//! public, SkipGate collapses the control path, register-file muxes and
//! memory decoders to wires and the run costs only the data-path gates
//! that actually touch private values.

use arm2gc_circuit::ir::DffInit;
use arm2gc_circuit::{Bus, Circuit, CircuitBuilder, RamConfig, WireId};

use crate::machine::{CpuConfig, ALICE_BASE, BOB_BASE, DATA_BASE, OUT_BASE};

/// Builds the processor circuit for `config`.
pub fn build_cpu(config: &CpuConfig) -> Circuit {
    let mut b = CircuitBuilder::new("arm2gc_cpu");
    let zero = b.constant(false);
    let one = b.constant(true);

    // ---- Architectural state -------------------------------------------
    let pc = b.dff_bus(32, |_| DffInit::Const(false));
    let flag_n = b.dff(DffInit::Const(false));
    let flag_z = b.dff(DffInit::Const(false));
    let flag_c = b.dff(DffInit::Const(false));
    let flag_v = b.dff(DffInit::Const(false));
    let halted = b.dff(DffInit::Const(false));

    let regs = b.ram(
        RamConfig {
            words: 16,
            width: 32,
        },
        |w, i| DffInit::Const((config.reset_reg(w) >> i) & 1 == 1),
    );

    // ---- Memories (five regions, §4.1) -----------------------------------
    let instr_bits = config.instr_words * 32;
    let instr_rom = b.ram(
        RamConfig {
            words: config.instr_words,
            width: 32,
        },
        |w, i| DffInit::Public((w * 32 + i) as u32),
    );
    let data_ram = b.ram(
        RamConfig {
            words: config.data_words,
            width: 32,
        },
        |w, i| DffInit::Public((instr_bits + w * 32 + i) as u32),
    );
    let alice_rom = b.ram(
        RamConfig {
            words: config.alice_words,
            width: 32,
        },
        |w, i| DffInit::Alice((w * 32 + i) as u32),
    );
    let bob_rom = b.ram(
        RamConfig {
            words: config.bob_words,
            width: 32,
        },
        |w, i| DffInit::Bob((w * 32 + i) as u32),
    );
    let out_ram = b.ram(
        RamConfig {
            words: config.out_words,
            width: 32,
        },
        |w, i| {
            let _ = (w, i);
            DffInit::Const(false)
        },
    );
    // Output (and debug) q-buses must be captured before the write ports
    // consume the RAM handles.
    let out_words: Vec<Bus> = (0..config.out_words)
        .map(|w| out_ram.word(w).clone())
        .collect();
    let reg_words: Vec<Bus> = (0..16).map(|w| regs.word(w).clone()).collect();

    // ---- Fetch & decode ---------------------------------------------------
    let kpc = config.instr_words.trailing_zeros() as usize;
    let instr = instr_rom.read(&mut b, &pc[..kpc]);
    instr_rom.connect_rom(&mut b);

    let cond = instr[28..32].to_vec();
    let class0 = instr[26];
    let class1 = instr[27];
    let nclass0 = b.not(class0);
    let nclass1 = b.not(class1);
    let is_dp = b.and(nclass1, nclass0);
    let is_mem = b.and(nclass1, class0);
    let is_branch = b.and(class1, nclass0);
    let is_special = b.and(class1, class0);

    // Condition evaluation: all 16 predicates, muxed by the cond field.
    let (n, z, c, v) = (flag_n, flag_z, flag_c, flag_v);
    let nn = b.not(n);
    let nz = b.not(z);
    let nc = b.not(c);
    let nv = b.not(v);
    let hi = b.and(c, nz);
    let ls = b.not(hi);
    let ge = b.xnor(n, v);
    let lt = b.xor(n, v);
    let gt = b.and(nz, ge);
    let le = b.not(gt);
    let preds = [
        n, z, c, v, nn, nz, nc, nv, hi, ls, ge, lt, gt, le, one, zero,
    ];
    let cond_table = [
        preds[1],  // EQ: Z
        preds[5],  // NE
        preds[2],  // CS
        preds[6],  // CC
        preds[0],  // MI
        preds[4],  // PL
        preds[3],  // VS
        preds[7],  // VC
        preds[8],  // HI
        preds[9],  // LS
        preds[10], // GE
        preds[11], // LT
        preds[12], // GT
        preds[13], // LE
        preds[14], // AL
        preds[15], // NV
    ];
    let mut layer: Vec<WireId> = cond_table.to_vec();
    for &cb in &cond {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(b.mux(cb, pair[1], pair[0]));
        }
        layer = next;
    }
    let cond_ok = layer[0];
    let not_halted = b.not(halted);
    let exec = b.and(cond_ok, not_halted);

    // ---- Register file reads ------------------------------------------------
    let rn_idx = instr[16..20].to_vec();
    let rd_idx = instr[12..16].to_vec();
    let rm_idx = instr[0..4].to_vec();
    let rs_idx = instr[8..12].to_vec();
    // Port C serves shift-by-register and MUL (rs) or stores (rd).
    let nl_bit = b.not(instr[24]);
    let is_str = b.and(is_mem, nl_bit);
    let portc_idx = b.mux_bus(is_str, &rd_idx, &rs_idx);

    let read_port = |b: &mut CircuitBuilder, idx: &Bus| -> Bus {
        let raw = regs.read(b, idx);
        let is_pc = b.eq_const(idx, 15);
        b.mux_bus(is_pc, &pc, &raw)
    };
    let rn_val = read_port(&mut b, &rn_idx);
    let rm_val = read_port(&mut b, &rm_idx);
    let portc_val = read_port(&mut b, &portc_idx);

    // ---- Operand 2 (shifter operand) ----------------------------------------
    // Immediate: imm8 rotated right by 2·rot.
    let mut imm32 = instr[0..8].to_vec();
    imm32.resize(32, zero);
    let rot_amt: Bus = vec![zero, instr[8], instr[9], instr[10], instr[11]];
    let imm_ror = b.ror_var(&imm32, &rot_amt);
    // Register: rm shifted by imm5 or rs.
    let shamt_imm: Bus = instr[7..12].to_vec();
    let shamt_reg: Bus = portc_val[0..5].to_vec();
    let regshift = instr[4];
    let shamt = b.mux_bus(regshift, &shamt_reg, &shamt_imm);
    let lsl = b.shl_var(&rm_val, &shamt);
    let lsr = b.lshr_var(&rm_val, &shamt);
    let asr = b.ashr_var(&rm_val, &shamt);
    let ror = b.ror_var(&rm_val, &shamt);
    let st0 = instr[5];
    let st1 = instr[6];
    let sh_lo = b.mux_bus(st0, &lsr, &lsl);
    let sh_hi = b.mux_bus(st0, &ror, &asr);
    let shifted = b.mux_bus(st1, &sh_hi, &sh_lo);
    let imm_bit = instr[25];
    let op2 = b.mux_bus(imm_bit, &imm_ror, &shifted);

    // ---- ALU -------------------------------------------------------------
    let opcode = instr[21..25].to_vec();
    let oh = b.decoder(&opcode); // one-hot over the 16 dp opcodes
    let rsb_family = b.or(oh[3], oh[7]);
    let or_a = b.or(oh[2], oh[3]);
    let or_b = b.or(oh[6], oh[7]);
    let or_c = b.or(or_a, or_b);
    let invert_y = b.or(or_c, oh[10]); // SUB, RSB, SBC, RSC, CMP
    let cin_one_a = b.or(oh[2], oh[3]);
    let cin_one = b.or(cin_one_a, oh[10]); // SUB, RSB, CMP
    let cin_c_a = b.or(oh[5], oh[6]);
    let cin_c = b.or(cin_c_a, oh[7]); // ADC, SBC, RSC

    let x = b.mux_bus(rsb_family, &op2, &rn_val);
    let y_raw = b.mux_bus(rsb_family, &rn_val, &op2);
    let y: Bus = y_raw.iter().map(|&w| b.xor(w, invert_y)).collect();
    let cin_base = b.mux(cin_one, one, zero);
    let cin = b.mux(cin_c, c, cin_base);
    let (sum, cout) = b.add_with_carry(&x, &y, cin);

    let and_v = b.and_bus(&rn_val, &op2);
    let eor_v = b.xor_bus(&rn_val, &op2);
    let orr_v: Bus = rn_val.iter().zip(&op2).map(|(&a, &o)| b.or(a, o)).collect();
    let bic_v: Bus = rn_val
        .iter()
        .zip(&op2)
        .map(|(&a, &o)| b.andnot(a, o))
        .collect();
    let mvn_v = b.not_bus(&op2);
    let entries: [&Bus; 16] = [
        &and_v, &eor_v, &sum, &sum, &sum, &sum, &sum, &sum, &and_v, &eor_v, &sum, &sum, &orr_v,
        &op2, &bic_v, &mvn_v,
    ];
    let mut alayer: Vec<Bus> = entries.iter().map(|bus| (*bus).clone()).collect();
    for &ob in &opcode {
        let mut next = Vec::with_capacity(alayer.len() / 2);
        for pair in alayer.chunks(2) {
            next.push(b.mux_bus(ob, &pair[1], &pair[0]));
        }
        alayer = next;
    }
    let alu_result = alayer.pop().expect("alu mux tree");

    // Flags.
    let any_bit = b.or_reduce(&alu_result);
    let z_new = b.not(any_bit);
    let n_new = alu_result[31];
    let xs = b.xor(x[31], sum[31]);
    let ys = b.xor(y[31], sum[31]);
    let v_new = b.and(xs, ys);
    let arith_a = b.or(or_c, oh[4]); // sub/rsb/sbc/rsc/add? (oh[4] = ADD)
    let arith_b = b.or(oh[5], oh[10]);
    let arith_c = b.or(arith_a, arith_b);
    let is_arith = b.or(arith_c, oh[11]); // + ADC, CMP, CMN
    let c_arith = b.mux(is_arith, cout, c);
    let v_arith = b.mux(is_arith, v_new, v);

    let s_bit = instr[20];
    let sflag_a = b.and(is_dp, s_bit);
    let flag_write = b.and(sflag_a, exec);
    let n_next = b.mux(flag_write, n_new, n);
    let z_next = b.mux(flag_write, z_new, z);
    let c_next = b.mux(flag_write, c_arith, c);
    let v_next = b.mux(flag_write, v_arith, v);
    b.connect_dff(flag_n, n_next);
    b.connect_dff(flag_z, z_next);
    b.connect_dff(flag_c, c_next);
    b.connect_dff(flag_v, v_next);

    // ---- Multiplier -------------------------------------------------------
    let mul_res = b.mul_lo(&rm_val, &portc_val);

    // ---- Memory access -----------------------------------------------------
    let mut imm12 = instr[0..12].to_vec();
    let sign = instr[11];
    imm12.resize(32, sign);
    let regofs = instr[25];
    let offs = b.mux_bus(regofs, &rm_val, &imm12);
    let (addr, _) = b.add(&rn_val, &offs);
    let region = addr[10..15].to_vec();
    let sel_data = b.eq_const(&region, (DATA_BASE >> 10) as u64);
    let sel_alice = b.eq_const(&region, (ALICE_BASE >> 10) as u64);
    let sel_bob = b.eq_const(&region, (BOB_BASE >> 10) as u64);
    let sel_out = b.eq_const(&region, (OUT_BASE >> 10) as u64);

    let kd = config.data_words.trailing_zeros() as usize;
    let ka = config.alice_words.trailing_zeros() as usize;
    let kb = config.bob_words.trailing_zeros() as usize;
    let ko = config.out_words.trailing_zeros() as usize;
    let data_rd = data_ram.read(&mut b, &addr[..kd]);
    let alice_rd = alice_rom.read(&mut b, &addr[..ka]);
    let bob_rd = bob_rom.read(&mut b, &addr[..kb]);
    let out_rd = out_ram.read(&mut b, &addr[..ko]);
    alice_rom.connect_rom(&mut b);
    bob_rom.connect_rom(&mut b);

    let zero32: Bus = vec![zero; 32];
    let mut ldr_val = b.mux_bus(sel_data, &data_rd, &zero32);
    ldr_val = b.mux_bus(sel_alice, &alice_rd, &ldr_val);
    ldr_val = b.mux_bus(sel_bob, &bob_rd, &ldr_val);
    ldr_val = b.mux_bus(sel_out, &out_rd, &ldr_val);

    let str_exec = b.and(is_str, exec);
    let we_data = b.and(str_exec, sel_data);
    let we_out = b.and(str_exec, sel_out);
    data_ram.connect_write(&mut b, &addr[..kd], we_data, &portc_val);
    out_ram.connect_write(&mut b, &addr[..ko], we_out, &portc_val);

    // ---- Writeback -----------------------------------------------------------
    let (pc1, _) = b.inc(&pc);
    let m_lo = b.mux_bus(class0, &ldr_val, &alu_result);
    let m_hi = b.mux_bus(class0, &mul_res, &pc1);
    let wb_val = b.mux_bus(class1, &m_hi, &m_lo);

    let is_test_a = b.or(oh[8], oh[9]);
    let is_test_b = b.or(oh[10], oh[11]);
    let is_test = b.or(is_test_a, is_test_b);
    let not_test = b.not(is_test);
    let dp_writes = b.and(is_dp, not_test);
    let load_bit = instr[24];
    let mem_writes = b.and(is_mem, load_bit);
    let k0 = instr[24];
    let k1 = instr[25];
    let nk0 = b.not(k0);
    let nk1 = b.not(k1);
    let kind_mul = b.and(nk1, nk0);
    let kind_halt = b.and(nk1, k0);
    let mul_writes = b.and(is_special, kind_mul);
    let link_bit = instr[25];
    let branch_writes = b.and(is_branch, link_bit);
    let wb_a = b.or(dp_writes, mem_writes);
    let wb_b = b.or(mul_writes, branch_writes);
    let wb_any = b.or(wb_a, wb_b);
    let wb_en = b.and(wb_any, exec);

    let const14 = b.const_bus(14, 4);
    let idx_hi = b.mux_bus(class0, &rn_idx, &const14); // special → [19:16], branch → lr
    let wb_idx = b.mux_bus(class1, &idx_hi, &rd_idx);
    let idx_is_pc = b.eq_const(&wb_idx, 15);
    let wb_to_pc = b.and(wb_en, idx_is_pc);
    regs.connect_write(&mut b, &wb_idx, wb_en, &wb_val);

    // ---- Program counter -------------------------------------------------------
    let mut off24 = instr[0..24].to_vec();
    let bsign = instr[23];
    off24.resize(32, bsign);
    let (btarget, _) = b.add(&pc1, &off24);
    let take_branch = b.and(is_branch, exec);
    let mut pc_next = b.mux_bus(take_branch, &btarget, &pc1);
    pc_next = b.mux_bus(wb_to_pc, &wb_val, &pc_next);
    pc_next = b.mux_bus(halted, &pc, &pc_next);
    b.connect_dff_bus(&pc, &pc_next);

    // ---- Halt ---------------------------------------------------------------
    let halt_now = b.and(is_special, kind_halt);
    let halt_exec = b.and(halt_now, exec);
    let halted_next = b.or(halted, halt_exec);
    b.connect_dff(halted, halted_next);
    b.set_halt(halted_next);

    // ---- Outputs & taps --------------------------------------------------------
    for w in &out_words {
        b.outputs(w);
    }
    if config.debug_outputs {
        for w in &reg_words {
            b.outputs(w);
        }
        b.outputs(&[flag_n, flag_z, flag_c, flag_v]);
        b.outputs(&pc);
        b.output(halted);
    }
    b.tap("pc", &pc);
    b.tap("halted", &[halted]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_reports_size() {
        let c = build_cpu(&CpuConfig::small());
        let stats = arm2gc_circuit::analysis::CircuitStats::of(&c);
        // The processor must be a "large netlist" (paper: 126,755 for
        // Amber with memories); the small config is still thousands of
        // nonlinear gates.
        assert!(stats.non_xor > 5_000, "non_xor = {}", stats.non_xor);
        assert!(c.halt_wire().is_some());
        assert!(c.tap("pc").is_some());
    }

    #[test]
    fn bench_config_is_bigger() {
        let small = build_cpu(&CpuConfig::small()).non_xor_count();
        let bench = build_cpu(&CpuConfig::bench()).non_xor_count();
        assert!(bench > 2 * small, "{bench} vs {small}");
    }
}
