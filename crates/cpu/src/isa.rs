//! Instruction-set definition.
//!
//! A 32-bit RISC ISA in the spirit of ARMv2a (the paper's Amber core):
//! every instruction is conditional, data-processing instructions have a
//! shifter operand, and flags are NZCV. The binary encoding is our own —
//! the SkipGate protocol only ever sees the words as the public input
//! `p`, so faithfulness to the paper lies in the *architectural
//! properties* (conditional execution, flag semantics), not bit layout.
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! [31:28] cond   [27:26] class (0 dp, 1 mem, 2 branch, 3 special)
//! dp:      [25] imm  [24:21] opcode  [20] S  [19:16] Rn  [15:12] Rd
//!          imm:  [11:8] rot (×2, rotate right)  [7:0] imm8
//!          reg:  [11:7] shamt ([11:8] Rs if [4])  [6:5] shift  [4] regshift  [3:0] Rm
//! mem:     [25] regofs  [24] L  [19:16] Rn  [15:12] Rd
//!          imm: [11:0] signed word offset    reg: [3:0] Rm
//! branch:  [25] link  [23:0] signed word offset (target = pc + 1 + off)
//! special: [25:24] 0 MUL ([19:16] Rd, [11:8] Rs, [3:0] Rm), 1 HALT, 2 NOP
//! ```

/// Condition codes (ARM semantics over NZCV).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Cs = 2,
    Cc = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
    Nv = 15,
}

impl Cond {
    /// All codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// Assembly suffix.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        }
    }

    /// Evaluates the condition on flags.
    pub const fn holds(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && (n == v),
            Cond::Le => z || (n != v),
            Cond::Al => true,
            Cond::Nv => false,
        }
    }
}

/// Data-processing opcodes (ARM encoding order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum DpOp {
    And = 0,
    Eor = 1,
    Sub = 2,
    Rsb = 3,
    Add = 4,
    Adc = 5,
    Sbc = 6,
    Rsc = 7,
    Tst = 8,
    Teq = 9,
    Cmp = 10,
    Cmn = 11,
    Orr = 12,
    Mov = 13,
    Bic = 14,
    Mvn = 15,
}

impl DpOp {
    /// All opcodes in encoding order.
    pub const ALL: [DpOp; 16] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Rsc,
        DpOp::Tst,
        DpOp::Teq,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Bic,
        DpOp::Mvn,
    ];

    /// True for TST/TEQ/CMP/CMN (no register writeback, flags always set).
    pub const fn is_test(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// True for the add/sub family (C and V updated from the adder).
    pub const fn is_arith(self) -> bool {
        matches!(
            self,
            DpOp::Sub
                | DpOp::Rsb
                | DpOp::Add
                | DpOp::Adc
                | DpOp::Sbc
                | DpOp::Rsc
                | DpOp::Cmp
                | DpOp::Cmn
        )
    }
}

/// Shift kinds for register operands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Shift {
    Lsl = 0,
    Lsr = 1,
    Asr = 2,
    Ror = 3,
}

/// A decoded instruction (shared by the assembler and the ISS; the
/// circuit decodes the raw word itself).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// Data processing with an immediate operand.
    DpImm {
        /// Condition field.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Set flags.
        s: bool,
        /// First operand register.
        rn: u8,
        /// Destination register.
        rd: u8,
        /// 8-bit immediate.
        imm8: u8,
        /// Rotate-right amount ÷ 2.
        rot: u8,
    },
    /// Data processing with a (possibly shifted) register operand.
    DpReg {
        /// Condition field.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Set flags.
        s: bool,
        /// First operand register.
        rn: u8,
        /// Destination register.
        rd: u8,
        /// Second operand register.
        rm: u8,
        /// Shift kind.
        shift: Shift,
        /// Shift amount: immediate 0–31, or a register number.
        amount: ShiftAmount,
    },
    /// Load/store a word.
    Mem {
        /// Condition field.
        cond: Cond,
        /// Load (true) or store.
        load: bool,
        /// Base register.
        rn: u8,
        /// Data register.
        rd: u8,
        /// Offset: signed words or a register.
        offset: MemOffset,
    },
    /// PC-relative branch.
    Branch {
        /// Condition field.
        cond: Cond,
        /// Write `pc + 1` into LR.
        link: bool,
        /// Signed word offset from the *next* instruction.
        offset: i32,
    },
    /// `rd = (rm * rs) & 0xffff_ffff`.
    Mul {
        /// Condition field.
        cond: Cond,
        /// Destination.
        rd: u8,
        /// Multiplicand.
        rm: u8,
        /// Multiplier.
        rs: u8,
    },
    /// Stop the machine.
    Halt {
        /// Condition field.
        cond: Cond,
    },
    /// Do nothing for one cycle.
    Nop,
}

/// Shift amount source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShiftAmount {
    /// Constant 0–31.
    Imm(u8),
    /// Low 5 bits of a register.
    Reg(u8),
}

/// Memory offset source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemOffset {
    /// Signed word offset −2048..2047.
    Imm(i32),
    /// A register, added to the base.
    Reg(u8),
}

impl Instr {
    /// Encodes into a 32-bit word.
    pub fn encode(self) -> u32 {
        match self {
            Instr::DpImm {
                cond,
                op,
                s,
                rn,
                rd,
                imm8,
                rot,
            } => {
                (cond as u32) << 28
                    | 1 << 25
                    | (op as u32) << 21
                    | (s as u32) << 20
                    | (rn as u32) << 16
                    | (rd as u32) << 12
                    | ((rot as u32) & 0xf) << 8
                    | imm8 as u32
            }
            Instr::DpReg {
                cond,
                op,
                s,
                rn,
                rd,
                rm,
                shift,
                amount,
            } => {
                let base = (cond as u32) << 28
                    | (op as u32) << 21
                    | (s as u32) << 20
                    | (rn as u32) << 16
                    | (rd as u32) << 12
                    | (shift as u32) << 5
                    | rm as u32;
                match amount {
                    ShiftAmount::Imm(a) => base | ((a as u32) & 0x1f) << 7,
                    ShiftAmount::Reg(rs) => base | 1 << 4 | ((rs as u32) & 0xf) << 8,
                }
            }
            Instr::Mem {
                cond,
                load,
                rn,
                rd,
                offset,
            } => {
                let base = (cond as u32) << 28
                    | 1 << 26
                    | (load as u32) << 24
                    | (rn as u32) << 16
                    | (rd as u32) << 12;
                match offset {
                    MemOffset::Imm(i) => base | (i as u32) & 0xfff,
                    MemOffset::Reg(rm) => base | 1 << 25 | rm as u32,
                }
            }
            Instr::Branch { cond, link, offset } => {
                (cond as u32) << 28 | 2 << 26 | (link as u32) << 25 | (offset as u32) & 0xff_ffff
            }
            Instr::Mul { cond, rd, rm, rs } => {
                (cond as u32) << 28 | 3 << 26 | (rd as u32) << 16 | (rs as u32) << 8 | rm as u32
            }
            Instr::Halt { cond } => (cond as u32) << 28 | 3 << 26 | 1 << 24,
            Instr::Nop => (Cond::Al as u32) << 28 | 3 << 26 | 2 << 24,
        }
    }

    /// Decodes a 32-bit word.
    pub fn decode(w: u32) -> Instr {
        let cond = Cond::ALL[(w >> 28) as usize & 0xf];
        match (w >> 26) & 3 {
            0 => {
                let op = DpOp::ALL[(w >> 21) as usize & 0xf];
                let s = (w >> 20) & 1 == 1;
                let rn = ((w >> 16) & 0xf) as u8;
                let rd = ((w >> 12) & 0xf) as u8;
                if (w >> 25) & 1 == 1 {
                    Instr::DpImm {
                        cond,
                        op,
                        s,
                        rn,
                        rd,
                        imm8: (w & 0xff) as u8,
                        rot: ((w >> 8) & 0xf) as u8,
                    }
                } else {
                    let shift = match (w >> 5) & 3 {
                        0 => Shift::Lsl,
                        1 => Shift::Lsr,
                        2 => Shift::Asr,
                        _ => Shift::Ror,
                    };
                    let amount = if (w >> 4) & 1 == 1 {
                        ShiftAmount::Reg(((w >> 8) & 0xf) as u8)
                    } else {
                        ShiftAmount::Imm(((w >> 7) & 0x1f) as u8)
                    };
                    Instr::DpReg {
                        cond,
                        op,
                        s,
                        rn,
                        rd,
                        rm: (w & 0xf) as u8,
                        shift,
                        amount,
                    }
                }
            }
            1 => {
                let offset = if (w >> 25) & 1 == 1 {
                    MemOffset::Reg((w & 0xf) as u8)
                } else {
                    MemOffset::Imm(((w & 0xfff) as i32) << 20 >> 20)
                };
                Instr::Mem {
                    cond,
                    load: (w >> 24) & 1 == 1,
                    rn: ((w >> 16) & 0xf) as u8,
                    rd: ((w >> 12) & 0xf) as u8,
                    offset,
                }
            }
            2 => Instr::Branch {
                cond,
                link: (w >> 25) & 1 == 1,
                offset: ((w & 0xff_ffff) as i32) << 8 >> 8,
            },
            _ => match (w >> 24) & 3 {
                0 => Instr::Mul {
                    cond,
                    rd: ((w >> 16) & 0xf) as u8,
                    rs: ((w >> 8) & 0xf) as u8,
                    rm: (w & 0xf) as u8,
                },
                1 => Instr::Halt { cond },
                _ => Instr::Nop,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let samples = [
            Instr::DpImm {
                cond: Cond::Al,
                op: DpOp::Add,
                s: true,
                rn: 1,
                rd: 2,
                imm8: 0xff,
                rot: 3,
            },
            Instr::DpReg {
                cond: Cond::Lt,
                op: DpOp::Mov,
                s: false,
                rn: 0,
                rd: 7,
                rm: 9,
                shift: Shift::Asr,
                amount: ShiftAmount::Imm(31),
            },
            Instr::DpReg {
                cond: Cond::Hi,
                op: DpOp::Orr,
                s: false,
                rn: 4,
                rd: 4,
                rm: 5,
                shift: Shift::Ror,
                amount: ShiftAmount::Reg(6),
            },
            Instr::Mem {
                cond: Cond::Al,
                load: true,
                rn: 8,
                rd: 0,
                offset: MemOffset::Imm(-7),
            },
            Instr::Mem {
                cond: Cond::Ne,
                load: false,
                rn: 8,
                rd: 3,
                offset: MemOffset::Reg(4),
            },
            Instr::Branch {
                cond: Cond::Eq,
                link: true,
                offset: -100,
            },
            Instr::Mul {
                cond: Cond::Al,
                rd: 3,
                rm: 4,
                rs: 5,
            },
            Instr::Halt { cond: Cond::Al },
            Instr::Nop,
        ];
        for i in samples {
            assert_eq!(Instr::decode(i.encode()), i, "{i:?}");
        }
    }

    #[test]
    fn cond_semantics_spot_checks() {
        assert!(Cond::Eq.holds(false, true, false, false));
        assert!(!Cond::Eq.holds(false, false, false, false));
        assert!(Cond::Lt.holds(true, false, false, false));
        assert!(Cond::Lt.holds(false, false, false, true));
        assert!(!Cond::Lt.holds(true, false, false, true));
        assert!(Cond::Hi.holds(false, false, true, false));
        assert!(!Cond::Hi.holds(false, true, true, false));
        assert!(Cond::Al.holds(true, true, true, true));
        assert!(!Cond::Nv.holds(true, true, true, true));
    }

    #[test]
    fn every_cond_roundtrips_through_encoding() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            let w = Instr::Halt { cond: *c }.encode();
            assert_eq!((w >> 28) as usize, i);
            assert_eq!(Instr::decode(w), Instr::Halt { cond: *c });
        }
    }
}
