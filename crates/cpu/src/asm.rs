//! Two-pass assembler.
//!
//! This stands in for the paper's `gcc-arm` toolchain (see DESIGN.md):
//! the SkipGate protocol consumes only the assembled words as the public
//! input `p`. Syntax follows classic ARM assembly:
//!
//! ```text
//! ; comment            @ comment            // comment
//! start:  ldi   r0, =table        ; load an address (2 words)
//!         ldr   r1, [r0, #2]
//!         subs  r1, r1, #1
//!         movlt r1, #0
//!         blt   done
//!         b     start
//! done:   halt
//! .data
//! table:  .word 1, 2, 3
//!         .space 4
//! ```
//!
//! Condition suffixes attach to any mnemonic (`addeq`, `strne`, `blt` =
//! branch-if-less-than), `s` suffixes request flag updates (`subs`,
//! `movlts`). `ldi` is a pseudo-instruction expanding to `mov` plus up to
//! three `orr`s.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{Cond, DpOp, Instr, MemOffset, Shift, ShiftAmount};
use crate::machine::DATA_BASE;

/// An assembled program: instruction words plus initialised data words.
/// Both are public inputs to the protocol.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instruction memory image.
    pub text: Vec<u32>,
    /// Data memory image (placed at [`DATA_BASE`]).
    pub data: Vec<u32>,
    /// Resolved symbols (text labels → instruction index, data labels →
    /// absolute word address).
    pub symbols: HashMap<String, u32>,
}

/// Assembly failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Tries to express `value` as ARM-style `imm8 ror (2·rot)`.
pub fn encode_imm(value: u32) -> Option<(u8, u8)> {
    for rot in 0..16u32 {
        let rotated = value.rotate_left(2 * rot);
        if rotated <= 0xff {
            return Some((rotated as u8, rot as u8));
        }
    }
    None
}

#[derive(Clone, Debug)]
enum Operand2 {
    Imm(u32),
    Reg {
        rm: u8,
        shift: Shift,
        amount: ShiftAmount,
    },
}

#[derive(Clone, Debug)]
enum Stmt {
    Dp {
        op: DpOp,
        cond: Cond,
        s: bool,
        rd: u8,
        rn: u8,
        op2: Operand2,
    },
    Mem {
        load: bool,
        cond: Cond,
        rd: u8,
        rn: u8,
        offset: MemOffset,
    },
    Branch {
        cond: Cond,
        link: bool,
        target: String,
    },
    Mul {
        cond: Cond,
        rd: u8,
        rm: u8,
        rs: u8,
    },
    Halt {
        cond: Cond,
    },
    Nop,
    /// `ldi rd, value-or-symbol` — expands to `mov` + `orr`s.
    Ldi {
        cond: Cond,
        rd: u8,
        value: LdiValue,
    },
}

#[derive(Clone, Debug)]
enum LdiValue {
    Imm(u32),
    Symbol(String),
}

impl Stmt {
    /// Number of instruction words this statement occupies.
    fn size(&self) -> u32 {
        match self {
            Stmt::Ldi { value, .. } => match value {
                // Symbols resolve in pass 2; reserve a fixed two words
                // (addresses fit in 16 bits).
                LdiValue::Symbol(_) => 2,
                LdiValue::Imm(v) => {
                    let bytes = v.to_le_bytes().iter().filter(|&&b| b != 0).count() as u32;
                    bytes.max(1)
                }
            },
            _ => 1,
        }
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    match tok {
        "sp" => return Ok(13),
        "lr" => return Ok(14),
        "pc" => return Ok(15),
        _ => {}
    }
    if let Some(num) = tok.strip_prefix('r') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 16 {
                return Ok(n);
            }
        }
    }
    err(line, format!("expected register, found '{tok}'"))
}

fn parse_int(tok: &str, line: usize) -> Result<u32, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let parsed = if let Some(hex) = body.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        body.parse::<u32>()
    };
    match parsed {
        Ok(v) => Ok(if neg { v.wrapping_neg() } else { v }),
        Err(_) => err(line, format!("bad integer '{tok}'")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<u32, AsmError> {
    let body = tok.strip_prefix('#').ok_or_else(|| AsmError {
        line,
        message: format!("expected '#immediate', found '{tok}'"),
    })?;
    parse_int(body, line)
}

/// Splits an operand list on top-level commas (brackets group).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

const DP_NAMES: [(&str, DpOp); 16] = [
    ("and", DpOp::And),
    ("eor", DpOp::Eor),
    ("sub", DpOp::Sub),
    ("rsb", DpOp::Rsb),
    ("add", DpOp::Add),
    ("adc", DpOp::Adc),
    ("sbc", DpOp::Sbc),
    ("rsc", DpOp::Rsc),
    ("tst", DpOp::Tst),
    ("teq", DpOp::Teq),
    ("cmp", DpOp::Cmp),
    ("cmn", DpOp::Cmn),
    ("orr", DpOp::Orr),
    ("mov", DpOp::Mov),
    ("bic", DpOp::Bic),
    ("mvn", DpOp::Mvn),
];

fn parse_cond(suffix: &str) -> Option<Cond> {
    match suffix {
        "" | "al" => return Some(Cond::Al),
        "hs" => return Some(Cond::Cs), // unsigned higher-or-same
        "lo" => return Some(Cond::Cc), // unsigned lower
        _ => {}
    }
    Cond::ALL.iter().find(|c| c.mnemonic() == suffix).copied()
}

/// Splits `mnemonic` into `(base, cond, s)`; tries every known base.
fn parse_mnemonic(m: &str) -> Option<(&'static str, Cond, bool)> {
    // Longest bases first so "bl"/"b" and similar prefixes disambiguate.
    const BASES: [&str; 23] = [
        "halt", "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "tst", "teq", "cmp", "cmn",
        "orr", "mov", "bic", "mvn", "ldr", "str", "mul", "nop", "ldi", "bl",
    ];
    let mut candidates: Vec<(&'static str, Cond, bool)> = Vec::new();
    let mut try_base = |base: &'static str| {
        if let Some(rest) = m.strip_prefix(base) {
            // rest = {cond}{s} or {s}{cond} or cond or s or "".
            let variants: [(&str, bool); 2] = match rest.strip_suffix('s') {
                Some(without_s) => [(without_s, true), (rest, false)],
                None => [(rest, false), (rest, false)],
            };
            for (cond_part, s) in variants {
                if let Some(cond) = parse_cond(cond_part) {
                    let s_ok = !s
                        || DP_NAMES.iter().any(|(n, _)| *n == base)
                            && !matches!(base, "ldr" | "str");
                    if s_ok {
                        candidates.push((base, cond, s));
                        return;
                    }
                }
            }
        }
    };
    for base in BASES {
        try_base(base);
    }
    // Plain branch last (so "bl", "bls" etc. prefer the longer bases).
    if let Some(rest) = m.strip_prefix('b') {
        if let Some(cond) = parse_cond(rest) {
            candidates.push(("b", cond, false));
        }
    }
    candidates.into_iter().next()
}

fn parse_op2(parts: &[String], line: usize) -> Result<Operand2, AsmError> {
    if parts.is_empty() {
        return err(line, "missing operand");
    }
    if parts[0].starts_with('#') {
        return Ok(Operand2::Imm(parse_imm(&parts[0], line)?));
    }
    let rm = parse_reg(&parts[0], line)?;
    if parts.len() == 1 {
        return Ok(Operand2::Reg {
            rm,
            shift: Shift::Lsl,
            amount: ShiftAmount::Imm(0),
        });
    }
    // "rm, lsl #n" style: shift kind and amount in one token pair.
    let shift_parts: Vec<&str> = parts[1].split_whitespace().collect();
    if shift_parts.len() != 2 {
        return err(line, format!("bad shift '{}'", parts[1]));
    }
    let shift = match shift_parts[0] {
        "lsl" => Shift::Lsl,
        "lsr" => Shift::Lsr,
        "asr" => Shift::Asr,
        "ror" => Shift::Ror,
        other => return err(line, format!("unknown shift '{other}'")),
    };
    let amount = if shift_parts[1].starts_with('#') {
        let v = parse_imm(shift_parts[1], line)?;
        if v > 31 {
            return err(line, "shift amount must be 0..=31");
        }
        ShiftAmount::Imm(v as u8)
    } else {
        ShiftAmount::Reg(parse_reg(shift_parts[1], line)?)
    };
    Ok(Operand2::Reg { rm, shift, amount })
}

fn parse_mem_operand(tok: &str, line: usize) -> Result<(u8, MemOffset), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected '[rn, offset]', found '{tok}'"),
        })?;
    let parts = split_operands(inner);
    let rn = parse_reg(&parts[0], line)?;
    let offset = match parts.len() {
        1 => MemOffset::Imm(0),
        2 => {
            if parts[1].starts_with('#') {
                let v = parse_imm(&parts[1], line)? as i32;
                if !(-2048..=2047).contains(&v) {
                    return err(line, "memory offset must fit in 12 bits");
                }
                MemOffset::Imm(v)
            } else {
                MemOffset::Reg(parse_reg(&parts[1], line)?)
            }
        }
        _ => return err(line, "too many memory operand parts"),
    };
    Ok((rn, offset))
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
/// Returns the first syntax or encoding error with its line number.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // ---- Pass 1: parse statements, lay out labels ----------------------
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut data: Vec<u32> = Vec::new();
    let mut data_exprs: Vec<(usize, usize, String)> = Vec::new(); // (line, index, symbol)
    let mut in_data = false;
    let mut text_len: u32 = 0;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        for marker in [";", "//", "@"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            let value = if in_data {
                DATA_BASE + data.len() as u32
            } else {
                text_len
            };
            if symbols.insert(label.to_string(), value).is_some() {
                return err(line, format!("duplicate label '{label}'"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        if let Some(directive) = text.strip_prefix('.') {
            let (name, rest) = directive
                .split_once(char::is_whitespace)
                .unwrap_or((directive, ""));
            match name {
                "data" => in_data = true,
                "text" => in_data = false,
                "word" => {
                    if !in_data {
                        return err(line, ".word outside .data");
                    }
                    for tok in split_operands(rest) {
                        if tok.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
                            data.push(parse_int(&tok, line)?);
                        } else {
                            data_exprs.push((line, data.len(), tok));
                            data.push(0);
                        }
                    }
                }
                "space" => {
                    if !in_data {
                        return err(line, ".space outside .data");
                    }
                    let n = parse_int(rest.trim(), line)?;
                    data.resize(data.len() + n as usize, 0);
                }
                other => return err(line, format!("unknown directive '.{other}'")),
            }
            continue;
        }
        if in_data {
            return err(line, "instructions are not allowed in .data");
        }

        let (mnemonic, operand_text) = text
            .split_once(char::is_whitespace)
            .map(|(m, o)| (m, o.trim()))
            .unwrap_or((text, ""));
        let Some((base, cond, s)) = parse_mnemonic(mnemonic) else {
            return err(line, format!("unknown mnemonic '{mnemonic}'"));
        };
        let ops = split_operands(operand_text);
        let stmt = match base {
            "nop" => Stmt::Nop,
            "halt" => Stmt::Halt { cond },
            "b" | "bl" => {
                if ops.len() != 1 {
                    return err(line, "branch takes one label");
                }
                Stmt::Branch {
                    cond,
                    link: base == "bl",
                    target: ops[0].clone(),
                }
            }
            "mul" => {
                if ops.len() != 3 {
                    return err(line, "mul rd, rm, rs");
                }
                Stmt::Mul {
                    cond,
                    rd: parse_reg(&ops[0], line)?,
                    rm: parse_reg(&ops[1], line)?,
                    rs: parse_reg(&ops[2], line)?,
                }
            }
            "ldr" | "str" => {
                if ops.len() != 2 {
                    return err(line, "ldr/str rd, [rn, offset]");
                }
                let rd = parse_reg(&ops[0], line)?;
                let (rn, offset) = parse_mem_operand(&ops[1], line)?;
                Stmt::Mem {
                    load: base == "ldr",
                    cond,
                    rd,
                    rn,
                    offset,
                }
            }
            "ldi" => {
                if ops.len() != 2 {
                    return err(line, "ldi rd, #imm32 or ldi rd, =symbol");
                }
                let rd = parse_reg(&ops[0], line)?;
                let value = if let Some(sym) = ops[1].strip_prefix('=') {
                    LdiValue::Symbol(sym.to_string())
                } else {
                    LdiValue::Imm(parse_imm(&ops[1], line)?)
                };
                Stmt::Ldi { cond, rd, value }
            }
            dp => {
                let op = DP_NAMES
                    .iter()
                    .find(|(n, _)| *n == dp)
                    .map(|(_, o)| *o)
                    .expect("dp mnemonic");
                let (rd, rn, op2) = match op {
                    DpOp::Mov | DpOp::Mvn => {
                        if ops.len() < 2 {
                            return err(line, "mov rd, op2");
                        }
                        (parse_reg(&ops[0], line)?, 0, parse_op2(&ops[1..], line)?)
                    }
                    DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn => {
                        if ops.len() < 2 {
                            return err(line, "cmp rn, op2");
                        }
                        (0, parse_reg(&ops[0], line)?, parse_op2(&ops[1..], line)?)
                    }
                    _ => {
                        if ops.len() < 3 {
                            return err(line, "op rd, rn, op2");
                        }
                        (
                            parse_reg(&ops[0], line)?,
                            parse_reg(&ops[1], line)?,
                            parse_op2(&ops[2..], line)?,
                        )
                    }
                };
                Stmt::Dp {
                    op,
                    cond,
                    s: s || op.is_test(),
                    rd,
                    rn,
                    op2,
                }
            }
        };
        text_len += stmt.size();
        stmts.push((line, stmt));
    }

    // Resolve .word symbol references.
    for (line, idx, sym) in data_exprs {
        let v = *symbols.get(&sym).ok_or_else(|| AsmError {
            line,
            message: format!("undefined symbol '{sym}'"),
        })?;
        data[idx] = v;
    }

    // ---- Pass 2: encode --------------------------------------------------
    let mut text_words: Vec<u32> = Vec::with_capacity(text_len as usize);
    for (line, stmt) in stmts {
        let pc = text_words.len() as u32;
        match stmt {
            Stmt::Nop => text_words.push(Instr::Nop.encode()),
            Stmt::Halt { cond } => text_words.push(Instr::Halt { cond }.encode()),
            Stmt::Mul { cond, rd, rm, rs } => {
                text_words.push(Instr::Mul { cond, rd, rm, rs }.encode())
            }
            Stmt::Branch { cond, link, target } => {
                let t = *symbols.get(&target).ok_or_else(|| AsmError {
                    line,
                    message: format!("undefined label '{target}'"),
                })?;
                let offset = t as i64 - (pc as i64 + 1);
                if !(-(1 << 23)..(1 << 23)).contains(&offset) {
                    return err(line, "branch target out of range");
                }
                text_words.push(
                    Instr::Branch {
                        cond,
                        link,
                        offset: offset as i32,
                    }
                    .encode(),
                );
            }
            Stmt::Mem {
                load,
                cond,
                rd,
                rn,
                offset,
            } => text_words.push(
                Instr::Mem {
                    cond,
                    load,
                    rn,
                    rd,
                    offset,
                }
                .encode(),
            ),
            Stmt::Dp {
                op,
                cond,
                s,
                rd,
                rn,
                op2,
            } => {
                let instr = match op2 {
                    Operand2::Imm(v) => {
                        let Some((imm8, rot)) = encode_imm(v) else {
                            return err(
                                line,
                                format!("immediate {v:#x} is not encodable; use ldi"),
                            );
                        };
                        Instr::DpImm {
                            cond,
                            op,
                            s,
                            rn,
                            rd,
                            imm8,
                            rot,
                        }
                    }
                    Operand2::Reg { rm, shift, amount } => Instr::DpReg {
                        cond,
                        op,
                        s,
                        rn,
                        rd,
                        rm,
                        shift,
                        amount,
                    },
                };
                text_words.push(instr.encode());
            }
            Stmt::Ldi { cond, rd, value } => {
                let (v, fixed_words) = match value {
                    LdiValue::Imm(v) => (v, None),
                    LdiValue::Symbol(sym) => {
                        let v = *symbols.get(&sym).ok_or_else(|| AsmError {
                            line,
                            message: format!("undefined symbol '{sym}'"),
                        })?;
                        if v > 0xffff {
                            return err(line, "symbol address exceeds 16 bits");
                        }
                        (v, Some(2usize))
                    }
                };
                let mut emitted = 0usize;
                let mut first = true;
                for k in 0..4usize {
                    let byte = (v >> (8 * k)) & 0xff;
                    let include = if let Some(n) = fixed_words {
                        k < n
                    } else {
                        byte != 0 || (v == 0 && k == 0)
                    };
                    if !include {
                        continue;
                    }
                    let (imm8, rot) = encode_imm(byte << (8 * k)).expect("byte chunk encodable");
                    let instr = if first {
                        Instr::DpImm {
                            cond,
                            op: DpOp::Mov,
                            s: false,
                            rn: 0,
                            rd,
                            imm8,
                            rot,
                        }
                    } else {
                        Instr::DpImm {
                            cond,
                            op: DpOp::Orr,
                            s: false,
                            rn: rd,
                            rd,
                            imm8,
                            rot,
                        }
                    };
                    first = false;
                    emitted += 1;
                    text_words.push(instr.encode());
                }
                debug_assert!(emitted >= 1);
            }
        }
    }

    Ok(Program {
        text: text_words,
        data,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_disambiguation() {
        assert_eq!(parse_mnemonic("blt"), Some(("b", Cond::Lt, false)));
        assert_eq!(parse_mnemonic("bl"), Some(("bl", Cond::Al, false)));
        assert_eq!(parse_mnemonic("bls"), Some(("b", Cond::Ls, false)));
        assert_eq!(parse_mnemonic("bleq"), Some(("bl", Cond::Eq, false)));
        assert_eq!(parse_mnemonic("subs"), Some(("sub", Cond::Al, true)));
        assert_eq!(parse_mnemonic("movlts"), Some(("mov", Cond::Lt, true)));
        assert_eq!(parse_mnemonic("halt"), Some(("halt", Cond::Al, false)));
        assert_eq!(parse_mnemonic("bogus"), None);
    }

    #[test]
    fn imm_encoding() {
        assert_eq!(encode_imm(0xff), Some((0xff, 0)));
        assert_eq!(encode_imm(0x3fc), Some((0xff, 15)));
        assert_eq!(encode_imm(0xff00_0000), Some((0xff, 4)));
        assert!(encode_imm(0x1234_5678).is_none());
    }

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "start: mov r0, #1
                    adds r0, r0, #1
                    bne start
                    halt",
        )
        .unwrap();
        assert_eq!(p.text.len(), 4);
        assert_eq!(p.symbols["start"], 0);
        // Branch back from index 2 to 0: offset -3.
        match Instr::decode(p.text[2]) {
            Instr::Branch { cond, link, offset } => {
                assert_eq!(cond, Cond::Ne);
                assert!(!link);
                assert_eq!(offset, -3);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn ldi_expansion_sizes() {
        let p = assemble(
            "ldi r0, #0x12345678
             ldi r1, #0xff
             ldi r2, #0
             halt",
        )
        .unwrap();
        // 4 + 1 + 1 + 1 words.
        assert_eq!(p.text.len(), 7);
    }

    #[test]
    fn data_section_and_symbols() {
        let p = assemble(
            "       ldi r0, =tbl
                    ldr r1, [r0, #1]
                    halt
             .data
             tbl:   .word 10, 20, 30
             buf:   .space 3",
        )
        .unwrap();
        assert_eq!(p.data, vec![10, 20, 30, 0, 0, 0]);
        assert_eq!(p.symbols["tbl"], DATA_BASE);
        assert_eq!(p.symbols["buf"], DATA_BASE + 3);
        assert_eq!(p.text.len(), 4); // ldi(2) + ldr + halt
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("mov r0, #1\nfrobnicate r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn unencodable_immediate_suggests_ldi() {
        let e = assemble("mov r0, #0x12345678").unwrap_err();
        assert!(e.message.contains("ldi"));
    }

    #[test]
    fn shifted_operands() {
        let p = assemble("add r0, r1, r2, lsl #4\nadd r0, r1, r2, ror r3\nhalt").unwrap();
        match Instr::decode(p.text[0]) {
            Instr::DpReg { shift, amount, .. } => {
                assert_eq!(shift, Shift::Lsl);
                assert_eq!(amount, ShiftAmount::Imm(4));
            }
            other => panic!("{other:?}"),
        }
        match Instr::decode(p.text[1]) {
            Instr::DpReg { shift, amount, .. } => {
                assert_eq!(shift, Shift::Ror);
                assert_eq!(amount, ShiftAmount::Reg(3));
            }
            other => panic!("{other:?}"),
        }
    }
}
