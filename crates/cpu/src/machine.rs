//! Memory map, machine configuration and program runners.
//!
//! The framework keeps the paper's five memories (§4.1): instruction,
//! data/stack, Alice input, Bob input and output. All are word-addressed
//! flip-flop arrays; region selection uses address bits \[14:10\]:
//!
//! | region | base (words) | contents | init |
//! |--------|--------------|----------|------|
//! | instr  | `0x0000`     | program text | public |
//! | data   | [`DATA_BASE`]  | `.data` + stack | public |
//! | alice  | [`ALICE_BASE`] | Alice's private words | Alice |
//! | bob    | [`BOB_BASE`]   | Bob's private words | Bob |
//! | out    | [`OUT_BASE`]   | result words | zero |
//!
//! At reset `r8..r11` hold the alice/bob/out/data base addresses and
//! `sp` points one past the data region's top, so programs need no
//! address boilerplate.

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::words::{bits_to_words, u32_to_bits};
use arm2gc_circuit::Circuit;
use arm2gc_core::{
    run_two_party_cfg, run_two_party_instanced_cfg, run_two_party_opts, InstancedOutcome,
    SessionOptions, SkipGateOutcome, SkipGateStats, TwoPartyConfig,
};

pub use arm2gc_circuit::{LayerSchedule, ScheduleMode};

use crate::asm::Program;
use crate::circuit_gen::build_cpu;
use crate::iss::Iss;

/// Data/stack region base (word address).
pub const DATA_BASE: u32 = 0x0400;
/// Alice-input region base.
pub const ALICE_BASE: u32 = 0x0800;
/// Bob-input region base.
pub const BOB_BASE: u32 = 0x0c00;
/// Output region base.
pub const OUT_BASE: u32 = 0x1000;

/// Geometry of the garbled processor. All word counts are powers of two
/// (≤ 1024, the region stride).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instruction memory words.
    pub instr_words: usize,
    /// Data/stack memory words.
    pub data_words: usize,
    /// Alice input words.
    pub alice_words: usize,
    /// Bob input words.
    pub bob_words: usize,
    /// Output words.
    pub out_words: usize,
    /// Also expose registers/flags/PC as circuit outputs (testing).
    pub debug_outputs: bool,
}

impl CpuConfig {
    /// A compact machine for unit tests: fast to garble in debug builds.
    pub fn small() -> Self {
        Self {
            instr_words: 128,
            data_words: 64,
            alice_words: 32,
            bob_words: 32,
            out_words: 32,
            debug_outputs: false,
        }
    }

    /// The benchmark machine (larger program and data space).
    pub fn bench() -> Self {
        Self {
            instr_words: 512,
            data_words: 256,
            alice_words: 128,
            bob_words: 128,
            out_words: 128,
            debug_outputs: false,
        }
    }

    /// Initial stack pointer.
    pub fn initial_sp(&self) -> u32 {
        DATA_BASE + self.data_words as u32
    }

    /// Reset value of each register.
    pub fn reset_reg(&self, r: usize) -> u32 {
        match r {
            8 => ALICE_BASE,
            9 => BOB_BASE,
            10 => OUT_BASE,
            11 => DATA_BASE,
            13 => self.initial_sp(),
            _ => 0,
        }
    }

    fn check(&self) {
        for (name, w, cap) in [
            ("instr", self.instr_words, 1024),
            ("data", self.data_words, 1024),
            ("alice", self.alice_words, 1024),
            ("bob", self.bob_words, 1024),
            ("out", self.out_words, 1024),
        ] {
            assert!(w.is_power_of_two(), "{name}_words must be a power of two");
            assert!(w <= cap, "{name}_words exceeds the region stride");
        }
    }
}

/// Result of running a program by any of the three executors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineRun {
    /// Final contents of the output memory.
    pub output: Vec<u32>,
    /// Cycles executed.
    pub cycles: usize,
    /// Whether a HALT retired.
    pub halted: bool,
}

/// A garbled processor instance: configuration plus the synthesised
/// circuit (built once, reused for every program — §5.1).
#[derive(Debug)]
pub struct GcMachine {
    config: CpuConfig,
    circuit: Circuit,
    schedule: std::sync::OnceLock<LayerSchedule>,
}

impl GcMachine {
    /// Builds the CPU circuit for `config`.
    pub fn new(config: CpuConfig) -> Self {
        config.check();
        Self {
            config,
            circuit: build_cpu(&config),
            schedule: std::sync::OnceLock::new(),
        }
    }

    /// The machine geometry.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The synthesised CPU netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The CPU circuit's ASAP layer schedule, levelled on first use and
    /// cached for the machine's lifetime — for inspecting the level
    /// count and widths a [`ScheduleMode::Layered`] run will execute
    /// with (the engines level an identical schedule internally).
    pub fn layer_schedule(&self) -> &LayerSchedule {
        self.schedule
            .get_or_init(|| LayerSchedule::of(&self.circuit))
    }

    /// Packs a program into the public initialisation bit vector
    /// (instruction image then data image, both padded).
    pub fn public_init(&self, prog: &Program) -> Vec<bool> {
        assert!(
            prog.text.len() <= self.config.instr_words,
            "program text ({} words) exceeds instruction memory ({})",
            prog.text.len(),
            self.config.instr_words
        );
        assert!(
            prog.data.len() <= self.config.data_words,
            "program data ({} words) exceeds data memory ({})",
            prog.data.len(),
            self.config.data_words
        );
        let mut words = prog.text.clone();
        words.resize(self.config.instr_words, 0);
        let mut data = prog.data.clone();
        data.resize(self.config.data_words, 0);
        words.extend(data);
        words.iter().flat_map(|&w| u32_to_bits(w, 32)).collect()
    }

    /// Packs a party's input words into its initialisation bit vector.
    pub fn party_init(&self, words: &[u32], capacity: usize) -> Vec<bool> {
        assert!(words.len() <= capacity, "party input exceeds its memory");
        let mut padded = words.to_vec();
        padded.resize(capacity, 0);
        padded.iter().flat_map(|&w| u32_to_bits(w, 32)).collect()
    }

    /// The three [`PartyData`] bundles for a protocol or simulator run.
    pub fn party_data(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
    ) -> (PartyData, PartyData, PartyData) {
        (
            PartyData::from_init(self.party_init(alice, self.config.alice_words)),
            PartyData::from_init(self.party_init(bob, self.config.bob_words)),
            PartyData::from_init(self.public_init(prog)),
        )
    }

    /// Runs on the instruction-set simulator (the reference).
    pub fn run_iss(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
    ) -> MachineRun {
        let mut iss = Iss::new(&self.config, prog, alice, bob);
        iss.run(max_cycles);
        MachineRun {
            output: iss.output().to_vec(),
            cycles: iss.cycles(),
            halted: iss.halted(),
        }
    }

    /// Runs the circuit on the cleartext simulator.
    pub fn run_sim(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
    ) -> MachineRun {
        let (a, b, p) = self.party_data(prog, alice, bob);
        let res = arm2gc_circuit::Simulator::new(&self.circuit).run(&a, &b, &p, max_cycles);
        let out_bits = &res.final_output()[..self.config.out_words * 32];
        MachineRun {
            output: bits_to_words(out_bits),
            cycles: res.cycles_run,
            halted: res.cycles_run < max_cycles,
        }
    }

    /// Runs the program through one two-party session described by a
    /// unified [`SessionOptions`] — the single entry point behind the
    /// whole `run_skipgate*` family. `alices`/`bobs` carry one input
    /// word set per configured lane (`opts.instances` entries each; one
    /// entry for a plain single-instance run).
    ///
    /// Returns one [`MachineRun`] per lane plus the garbler's
    /// [`InstancedOutcome`] (per-lane cost counters and the
    /// session-wide batching statistics).
    ///
    /// Migration from the legacy wrappers (all of which forward to the
    /// same engine internals, so transcripts are unchanged):
    ///
    /// | Legacy method | Unified form |
    /// |---|---|
    /// | [`run_skipgate`](Self::run_skipgate) | `run(…, &SessionOptions::new())` |
    /// | [`run_skipgate_scheduled`](Self::run_skipgate_scheduled) | `… .schedule(mode)` |
    /// | [`run_skipgate_with`](Self::run_skipgate_with) / [`run_skipgate_outcome`](Self::run_skipgate_outcome) | `… .ot(…)` `.stream(…)` `.shards(n)` |
    /// | [`run_skipgate_instanced`](Self::run_skipgate_instanced) | `… .instances(n)` |
    ///
    /// # Panics
    /// Panics if the configuration is invalid, the lane arrays disagree
    /// with `opts.instances`, or the parties' outcomes diverge (test
    /// harness semantics). Build sessions over real transports with
    /// `arm2gc_core::drive_garbler` / `drive_evaluator` to get typed
    /// errors instead.
    pub fn run(
        &self,
        prog: &Program,
        alices: &[Vec<u32>],
        bobs: &[Vec<u32>],
        max_cycles: usize,
        opts: &SessionOptions,
    ) -> (Vec<MachineRun>, InstancedOutcome) {
        assert_eq!(alices.len(), bobs.len(), "one Bob input set per lane");
        let mut lane_alice = Vec::with_capacity(alices.len());
        let mut lane_bob = Vec::with_capacity(alices.len());
        let mut lane_public = Vec::with_capacity(alices.len());
        for (alice, bob) in alices.iter().zip(bobs) {
            let (a, b, p) = self.party_data(prog, alice, bob);
            lane_alice.push(a);
            lane_bob.push(b);
            lane_public.push(p);
        }
        let (alice_out, bob_out) = run_two_party_opts(
            &self.circuit,
            &lane_alice,
            &lane_bob,
            &lane_public,
            max_cycles,
            opts,
        );
        assert_eq!(
            alice_out.batching, bob_out.batching,
            "parties disagree on batching stats"
        );
        let runs = alice_out
            .lanes
            .iter()
            .zip(&bob_out.lanes)
            .map(|(a, b)| {
                assert_eq!(a.outputs, b.outputs, "party outputs differ");
                let out_bits = &a.final_output()[..self.config.out_words * 32];
                MachineRun {
                    output: bits_to_words(out_bits),
                    cycles: a.stats.cycles_run,
                    halted: a.stats.cycles_run < max_cycles,
                }
            })
            .collect();
        (runs, alice_out)
    }

    /// Runs the two-party SkipGate protocol (both parties in-process)
    /// with the default session configuration (insecure reference OT,
    /// chunked table streaming). Returns the run plus the garbler's cost
    /// statistics. Thin wrapper over [`GcMachine::run`].
    pub fn run_skipgate(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
    ) -> (MachineRun, SkipGateStats) {
        self.run_skipgate_with(prog, alice, bob, max_cycles, TwoPartyConfig::default())
    }

    /// [`GcMachine::run_skipgate`] under an explicit execution
    /// schedule: [`ScheduleMode::Layered`] drives every cycle with the
    /// precomputed topological level schedule (transcript-identical to
    /// the default netlist-order walk, but each level's surviving
    /// gates hash through the wide AES core in one batch).
    pub fn run_skipgate_scheduled(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
        schedule: ScheduleMode,
    ) -> (MachineRun, SkipGateStats) {
        self.run_skipgate_with(
            prog,
            alice,
            bob,
            max_cycles,
            TwoPartyConfig::new().schedule(schedule),
        )
    }

    /// [`GcMachine::run_skipgate`] with an explicit session
    /// configuration: pluggable OT backend (e.g. the real Naor–Pinkas +
    /// IKNP stack), table-streaming chunking, and table-stream sharding
    /// (`cfg.shards` — each shard's slice of every cycle's surviving
    /// tables travels over its own in-process channel, sent by a
    /// dedicated worker thread).
    pub fn run_skipgate_with(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
        cfg: TwoPartyConfig,
    ) -> (MachineRun, SkipGateStats) {
        let (run, outcome) = self.run_skipgate_outcome(prog, alice, bob, max_cycles, cfg);
        (run, outcome.stats)
    }

    /// [`GcMachine::run_skipgate_with`], returning the garbler's full
    /// [`SkipGateOutcome`] — cost counters *plus* the batching/
    /// re-leveling statistics ([`ScheduleMode::Layered`] runs report
    /// level occupancy and how many cycles needed a per-cycle
    /// re-leveling patch) and every per-cycle output frame.
    pub fn run_skipgate_outcome(
        &self,
        prog: &Program,
        alice: &[u32],
        bob: &[u32],
        max_cycles: usize,
        cfg: TwoPartyConfig,
    ) -> (MachineRun, SkipGateOutcome) {
        let (a, b, p) = self.party_data(prog, alice, bob);
        let (alice_out, bob_out) = run_two_party_cfg(&self.circuit, &a, &b, &p, max_cycles, cfg);
        assert_eq!(alice_out.outputs, bob_out.outputs, "party outputs differ");
        assert_eq!(
            alice_out.batching, bob_out.batching,
            "parties disagree on batching/re-leveling stats"
        );
        let out_bits = &alice_out.final_output()[..self.config.out_words * 32];
        (
            MachineRun {
                output: bits_to_words(out_bits),
                cycles: alice_out.stats.cycles_run,
                halted: alice_out.stats.cycles_run < max_cycles,
            },
            alice_out,
        )
    }

    /// Runs `alices.len()` independent instances of `prog` — same
    /// program, per-lane private inputs — through **one** instanced
    /// two-party session ([`run_two_party_instanced_cfg`]): per cycle,
    /// every lane's surviving nonlinear gates hash through the wide
    /// AES core together, so the per-instance amortized cost drops as
    /// the lane count grows. Lanes halt independently.
    ///
    /// Returns one [`MachineRun`] per lane (identical to what
    /// [`GcMachine::run_skipgate_with`] would produce for that lane's
    /// inputs alone) plus the garbler's [`InstancedOutcome`] with the
    /// session-wide batching statistics. `cfg.schedule` is ignored —
    /// instanced execution is always layer-scheduled.
    ///
    /// # Panics
    /// Panics if `alices` and `bobs` disagree in length, if the lane
    /// count is zero, or if the parties' outcomes diverge (test
    /// harness semantics).
    pub fn run_skipgate_instanced(
        &self,
        prog: &Program,
        alices: &[Vec<u32>],
        bobs: &[Vec<u32>],
        max_cycles: usize,
        cfg: TwoPartyConfig,
    ) -> (Vec<MachineRun>, InstancedOutcome) {
        assert_eq!(alices.len(), bobs.len(), "one Bob input set per lane");
        let mut lane_alice = Vec::with_capacity(alices.len());
        let mut lane_bob = Vec::with_capacity(alices.len());
        let mut lane_public = Vec::with_capacity(alices.len());
        for (alice, bob) in alices.iter().zip(bobs) {
            let (a, b, p) = self.party_data(prog, alice, bob);
            lane_alice.push(a);
            lane_bob.push(b);
            lane_public.push(p);
        }
        let (alice_out, bob_out) = run_two_party_instanced_cfg(
            &self.circuit,
            &lane_alice,
            &lane_bob,
            &lane_public,
            max_cycles,
            cfg,
        );
        assert_eq!(
            alice_out.batching, bob_out.batching,
            "parties disagree on batching stats"
        );
        let runs = alice_out
            .lanes
            .iter()
            .zip(&bob_out.lanes)
            .map(|(a, b)| {
                assert_eq!(a.outputs, b.outputs, "party outputs differ");
                let out_bits = &a.final_output()[..self.config.out_words * 32];
                MachineRun {
                    output: bits_to_words(out_bits),
                    cycles: a.stats.cycles_run,
                    halted: a.stats.cycles_run < max_cycles,
                }
            })
            .collect();
        (runs, alice_out)
    }

    /// The paper's "w/o SkipGate" cost for a run of `cycles` cycles:
    /// every nonlinear CPU gate garbled every cycle (Table 4 baseline).
    pub fn baseline_cost(&self, cycles: usize) -> u128 {
        self.circuit.non_xor_count() as u128 * cycles as u128
    }
}
