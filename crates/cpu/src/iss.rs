//! Cleartext instruction-set simulator.
//!
//! Executes exactly the semantics the CPU circuit implements (one
//! instruction per cycle, same flag rules, same address decoding), so
//! circuit and ISS can be differentially tested on random programs.

use crate::asm::Program;
use crate::isa::{Cond, DpOp, Instr, MemOffset, Shift, ShiftAmount};
use crate::machine::{CpuConfig, ALICE_BASE, BOB_BASE, DATA_BASE, OUT_BASE};

/// Architectural state + memories.
#[derive(Clone, Debug)]
pub struct Iss {
    regs: [u32; 16],
    pc: u32,
    n: bool,
    z: bool,
    c: bool,
    v: bool,
    halted: bool,
    cycles: usize,
    text: Vec<u32>,
    data: Vec<u32>,
    alice: Vec<u32>,
    bob: Vec<u32>,
    out: Vec<u32>,
}

impl Iss {
    /// Loads a program and party inputs into a fresh machine.
    pub fn new(config: &CpuConfig, prog: &Program, alice: &[u32], bob: &[u32]) -> Self {
        let mut text = prog.text.clone();
        text.resize(config.instr_words, 0);
        let mut data = prog.data.clone();
        data.resize(config.data_words, 0);
        let mut a = alice.to_vec();
        a.resize(config.alice_words, 0);
        let mut b = bob.to_vec();
        b.resize(config.bob_words, 0);
        let mut regs = [0u32; 16];
        for (r, slot) in regs.iter_mut().enumerate() {
            *slot = config.reset_reg(r);
        }
        Self {
            regs,
            pc: 0,
            n: false,
            z: false,
            c: false,
            v: false,
            halted: false,
            cycles: 0,
            text,
            data,
            alice: a,
            bob: b,
            out: vec![0; config.out_words],
        }
    }

    /// Final output memory.
    pub fn output(&self) -> &[u32] {
        &self.out
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Whether a HALT retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Register contents (r15 reads as PC, like the circuit).
    pub fn reg(&self, r: usize) -> u32 {
        if r == 15 {
            self.pc
        } else {
            self.regs[r]
        }
    }

    /// Flags (N, Z, C, V).
    pub fn flags(&self) -> (bool, bool, bool, bool) {
        (self.n, self.z, self.c, self.v)
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    fn mem_read(&self, addr: u32) -> u32 {
        let region = (addr >> 10) & 0x1f;
        let in_region = |len: usize| (addr as usize) & (len - 1);
        match region {
            r if r == DATA_BASE >> 10 => self.data[in_region(self.data.len())],
            r if r == ALICE_BASE >> 10 => self.alice[in_region(self.alice.len())],
            r if r == BOB_BASE >> 10 => self.bob[in_region(self.bob.len())],
            r if r == OUT_BASE >> 10 => self.out[in_region(self.out.len())],
            _ => 0,
        }
    }

    fn mem_write(&mut self, addr: u32, value: u32) {
        let region = (addr >> 10) & 0x1f;
        match region {
            r if r == DATA_BASE >> 10 => {
                let i = (addr as usize) & (self.data.len() - 1);
                self.data[i] = value;
            }
            r if r == OUT_BASE >> 10 => {
                let i = (addr as usize) & (self.out.len() - 1);
                self.out[i] = value;
            }
            _ => {} // read-only or unmapped: ignored
        }
    }

    fn shifter(&self, rm: u8, shift: Shift, amount: ShiftAmount) -> u32 {
        let v = self.reg(rm as usize);
        let amt = match amount {
            ShiftAmount::Imm(a) => a as u32,
            ShiftAmount::Reg(rs) => self.reg(rs as usize) & 31,
        };
        match shift {
            Shift::Lsl => v << amt,
            Shift::Lsr => v >> amt,
            Shift::Asr => ((v as i32) >> amt) as u32,
            Shift::Ror => v.rotate_right(amt),
        }
    }

    /// Executes one cycle (fetch + execute of one instruction).
    pub fn step(&mut self) {
        if self.halted {
            self.cycles += 1;
            return;
        }
        let word = self.text[(self.pc as usize) & (self.text.len() - 1)];
        let instr = Instr::decode(word);
        let cond = match instr {
            Instr::DpImm { cond, .. }
            | Instr::DpReg { cond, .. }
            | Instr::Mem { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::Halt { cond } => cond,
            Instr::Nop => Cond::Al,
        };
        let exec = cond.holds(self.n, self.z, self.c, self.v);
        let mut next_pc = self.pc.wrapping_add(1);

        if exec {
            match instr {
                Instr::Nop => {}
                Instr::Halt { .. } => self.halted = true,
                Instr::Branch { link, offset, .. } => {
                    if link {
                        self.regs[14] = self.pc.wrapping_add(1);
                    }
                    next_pc = self.pc.wrapping_add(1).wrapping_add(offset as u32);
                }
                Instr::Mul { rd, rm, rs, .. } => {
                    let r = self.reg(rm as usize).wrapping_mul(self.reg(rs as usize));
                    if rd == 15 {
                        next_pc = r;
                    } else {
                        self.regs[rd as usize] = r;
                    }
                }
                Instr::Mem {
                    load,
                    rn,
                    rd,
                    offset,
                    ..
                } => {
                    let off = match offset {
                        MemOffset::Imm(i) => i as u32,
                        MemOffset::Reg(rm) => self.reg(rm as usize),
                    };
                    let addr = self.reg(rn as usize).wrapping_add(off);
                    if load {
                        let v = self.mem_read(addr);
                        if rd == 15 {
                            next_pc = v;
                        } else {
                            self.regs[rd as usize] = v;
                        }
                    } else {
                        self.mem_write(addr, self.reg(rd as usize));
                    }
                }
                Instr::DpImm {
                    op,
                    s,
                    rn,
                    rd,
                    imm8,
                    rot,
                    ..
                } => {
                    let op2 = (imm8 as u32).rotate_right(2 * rot as u32);
                    next_pc = self.exec_dp(op, s, rn, rd, op2, next_pc);
                }
                Instr::DpReg {
                    op,
                    s,
                    rn,
                    rd,
                    rm,
                    shift,
                    amount,
                    ..
                } => {
                    let op2 = self.shifter(rm, shift, amount);
                    next_pc = self.exec_dp(op, s, rn, rd, op2, next_pc);
                }
            }
        }
        self.pc = next_pc;
        self.cycles += 1;
    }

    fn exec_dp(&mut self, op: DpOp, s: bool, rn: u8, rd: u8, op2: u32, next_pc: u32) -> u32 {
        let a = self.reg(rn as usize);
        let (result, carry, overflow) = match op {
            DpOp::And | DpOp::Tst => (a & op2, self.c, self.v),
            DpOp::Eor | DpOp::Teq => (a ^ op2, self.c, self.v),
            DpOp::Orr => (a | op2, self.c, self.v),
            DpOp::Bic => (a & !op2, self.c, self.v),
            DpOp::Mov => (op2, self.c, self.v),
            DpOp::Mvn => (!op2, self.c, self.v),
            DpOp::Sub | DpOp::Cmp => add3(a, !op2, true),
            DpOp::Rsb => add3(op2, !a, true),
            DpOp::Add | DpOp::Cmn => add3(a, op2, false),
            DpOp::Adc => add3(a, op2, self.c),
            DpOp::Sbc => add3(a, !op2, self.c),
            DpOp::Rsc => add3(op2, !a, self.c),
        };
        if s {
            self.n = result >> 31 == 1;
            self.z = result == 0;
            if op.is_arith() {
                self.c = carry;
                self.v = overflow;
            }
        }
        if !op.is_test() {
            if rd == 15 {
                return result;
            }
            self.regs[rd as usize] = result;
        }
        next_pc
    }

    /// Runs until HALT or `max_cycles`.
    pub fn run(&mut self, max_cycles: usize) {
        while self.cycles < max_cycles {
            self.step();
            if self.halted {
                break;
            }
        }
    }
}

/// 32-bit add with carry-in; returns `(sum, carry_out, signed_overflow)`.
/// Overflow uses the same formula as the circuit:
/// `V = (x₃₁ ⊕ s₃₁) ∧ (y₃₁ ⊕ s₃₁)`.
fn add3(x: u32, y: u32, cin: bool) -> (u32, bool, bool) {
    let wide = x as u64 + y as u64 + cin as u64;
    let sum = wide as u32;
    let carry = wide >> 32 == 1;
    let overflow = ((x ^ sum) & (y ^ sum)) >> 31 == 1;
    (sum, carry, overflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_prog(src: &str, alice: &[u32], bob: &[u32], cycles: usize) -> Iss {
        let prog = assemble(src).expect("assembles");
        let mut iss = Iss::new(&CpuConfig::small(), &prog, alice, bob);
        iss.run(cycles);
        iss
    }

    #[test]
    fn add_store_halt() {
        let iss = run_prog(
            "ldr r0, [r8]
             ldr r1, [r9]
             add r2, r0, r1
             str r2, [r10]
             halt",
            &[30],
            &[12],
            100,
        );
        assert!(iss.halted());
        assert_eq!(iss.output()[0], 42);
        assert_eq!(iss.cycles(), 5);
    }

    #[test]
    fn conditional_execution() {
        // max(a, b) via cmp + conditional moves (paper Fig. 5 pattern).
        let iss = run_prog(
            "ldr r0, [r8]
             ldr r1, [r9]
             cmp r0, r1
             movlo r2, r1
             movhs r2, r0
             str r2, [r10]
             halt",
            &[100],
            &[250],
            100,
        );
        assert_eq!(iss.output()[0], 250);
    }

    #[test]
    fn loop_with_counter() {
        // Sum 1..=10 with a down-counting loop.
        let iss = run_prog(
            "       mov r0, #0
                    mov r1, #10
             loop:  add r0, r0, r1
                    subs r1, r1, #1
                    bne loop
                    str r0, [r10]
                    halt",
            &[],
            &[],
            1000,
        );
        assert_eq!(iss.output()[0], 55);
    }

    #[test]
    fn flags_signed_unsigned() {
        // -1 compared with 1: signed lt, unsigned hs.
        let iss = run_prog(
            "mvn r0, #0        ; r0 = 0xffffffff
             mov r1, #1
             cmp r0, r1
             movlt r2, #1     ; signed: -1 < 1
             movhs r3, #1     ; unsigned: max >= 1
             str r2, [r10]
             str r3, [r10, #1]
             halt",
            &[],
            &[],
            100,
        );
        assert_eq!(iss.output()[0], 1);
        assert_eq!(iss.output()[1], 1);
    }

    #[test]
    fn subroutine_call_and_return() {
        let iss = run_prog(
            "       bl double
                    str r0, [r10]
                    halt
             double: mov r0, #21
                    add r0, r0, r0
                    mov pc, lr",
            &[],
            &[],
            100,
        );
        assert_eq!(iss.output()[0], 42);
    }

    #[test]
    fn stack_push_pop() {
        let iss = run_prog(
            "mov r0, #7
             sub sp, sp, #1
             str r0, [sp]
             mov r0, #0
             ldr r1, [sp]
             add sp, sp, #1
             str r1, [r10]
             halt",
            &[],
            &[],
            100,
        );
        assert_eq!(iss.output()[0], 7);
    }

    #[test]
    fn mul_and_shift() {
        let iss = run_prog(
            "mov r0, #25
             mov r1, #5
             mul r2, r0, r1
             mov r3, r2, lsl #2
             str r3, [r10]
             halt",
            &[],
            &[],
            100,
        );
        assert_eq!(iss.output()[0], 500);
    }

    #[test]
    fn data_section_lookup() {
        let iss = run_prog(
            "       ldi r0, =tbl
                    ldr r1, [r0, #2]
                    str r1, [r10]
                    halt
             .data
             tbl:   .word 11, 22, 33",
            &[],
            &[],
            100,
        );
        assert_eq!(iss.output()[0], 33);
    }
}
