//! The paper's benchmark programs (Tables 2–5), written in assembly.
//!
//! Each generator returns the source text (parameterised by problem
//! size); callers assemble it with [`crate::asm::assemble`]. Programs
//! follow the paper's coding discipline (§4.2): loop bounds and memory
//! addresses stay public where possible, and *secret-dependent*
//! decisions use conditional instructions, never branches — so the
//! program counter stays public and SkipGate strips the control path.

/// `out[0] = a[0] + b[0]` — the paper's "Sum 32".
pub fn sum32() -> String {
    "ldr r0, [r8]
     ldr r1, [r9]
     add r0, r0, r1
     str r0, [r10]
     halt"
        .to_string()
}

/// Multi-precision sum of two `words`-word little-endian integers (the
/// paper's "Sum 1024" uses `words = 32`). The carry rides the C flag
/// through `adcs`; loop bookkeeping uses `teq`, which leaves C intact.
pub fn sum_wide(words: usize) -> String {
    format!(
        "      ldr r0, [r8]
               ldr r1, [r9]
               adds r2, r0, r1
               str r2, [r10]
               mov r4, #1
        loop:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               adcs r2, r0, r1
               str r2, [r10, r4]
               add r4, r4, #1
               teq r4, #{words}
               bne loop
               halt"
    )
}

/// `out[0] = (a[0] < b[0]) ? 1 : 0` (unsigned) — the paper's
/// "Compare 32". `sbc r2, r2, r2` materialises the borrow: the
/// subtraction of identical registers is category iii, so it garbles
/// nothing.
pub fn compare32() -> String {
    "ldr r0, [r8]
     ldr r1, [r9]
     cmp r0, r1        ; C = NOT borrow
     sbc r2, r2, r2    ; r2 = -(borrow)
     and r2, r2, #1
     str r2, [r10]
     halt"
        .to_string()
}

/// Wide unsigned comparison (`a < b` over `words`·32 bits; the paper's
/// "Compare 16384" uses 512 words), borrow rippled with `sbcs`.
pub fn compare_wide(words: usize) -> String {
    format!(
        "      ldr r0, [r8]
               ldr r1, [r9]
               cmp r0, r1
               mov r4, #1
        loop:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               sbcs r2, r0, r1
               add r4, r4, #1
               teq r4, #{words}
               bne loop
               sbc r2, r2, r2
               and r2, r2, #1
               str r2, [r10]
               halt"
    )
}

/// Hamming distance of two `words`·32-bit vectors via the tree/SWAR
/// popcount (the paper cites Huang et al.'s tree method). The masks are
/// public, so the AND stages and the even carry chains vanish under
/// SkipGate — this is how "Hamming 32 = 57" arises.
pub fn hamming(words: usize) -> String {
    format!(
        "      mov r6, #0         ; total
               mov r4, #0         ; index
        loop:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               eor r0, r0, r1     ; free (XOR)
               ; stage 1: 2-bit field sums, add form (16 ANDs)
               ldi r2, #0x55555555
               and r3, r0, r2
               and r0, r2, r0, lsr #1
               add r0, r0, r3
               ; stage 2: 4-bit fields
               ldi r2, #0x33333333
               and r3, r0, r2
               and r0, r2, r0, lsr #2
               add r0, r0, r3
               ; stage 3: bytes
               ldi r2, #0x0f0f0f0f
               add r0, r0, r0, lsr #4
               and r0, r0, r2
               ; stage 4+5: fold bytes
               add r0, r0, r0, lsr #8
               add r0, r0, r0, lsr #16
               and r0, r0, #0xff
               add r6, r6, r0
               add r4, r4, #1
               teq r4, #{words}
               bne loop
               str r6, [r10]
               halt"
    )
}

/// `out[0] = a[0] * b[0]` (low 32 bits) — the paper's "Mult 32".
pub fn mult32() -> String {
    "ldr r0, [r8]
     ldr r1, [r9]
     mul r2, r0, r1
     str r2, [r10]
     halt"
        .to_string()
}

/// `k×k` 32-bit matrix product (the paper's "MatrixMult k×k 32"):
/// Alice holds A (row-major), Bob holds B, C goes to the output memory.
pub fn matmul(k: usize) -> String {
    format!(
        "      mov r4, #0          ; i
        iloop: mov r5, #0          ; j
        jloop: mov r6, #0          ; l
               mov r7, #0          ; acc
               mov r0, #{k}
               mul r12, r4, r0     ; i*k (public)
        lloop: add r1, r12, r6
               ldr r1, [r8, r1]    ; a[i*k + l]
               mov r0, #{k}
               mul r2, r6, r0
               add r2, r2, r5
               ldr r2, [r9, r2]    ; b[l*k + j]
               mul r3, r1, r2
               add r7, r7, r3
               add r6, r6, #1
               teq r6, #{k}
               bne lloop
               add r1, r12, r5
               str r7, [r10, r1]   ; c[i*k + j]
               add r5, r5, #1
               teq r5, #{k}
               bne jloop
               add r4, r4, #1
               teq r4, #{k}
               bne iloop
               halt"
    )
}

/// Bubble sort of `n` values (paper §5.7, Table 5). Inputs are
/// XOR-shares (`value[i] = a[i] ⊕ b[i]`); compare-and-swap uses
/// conditional moves on secret flags — never branches, so the PC stays
/// public for the entire run.
pub fn bubble_sort(n: usize) -> String {
    format!(
        "      mov r4, #0
        load:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               eor r0, r0, r1
               str r0, [r11, r4]
               add r4, r4, #1
               teq r4, #{n}
               bne load
               mov r5, #0          ; pass counter
        pass:  mov r4, #0
        inner: add r6, r4, #1
               ldr r0, [r11, r4]
               ldr r1, [r11, r6]
               cmp r0, r1          ; secret flags
               movhi r2, r1        ; swap if r0 > r1 (unsigned)
               movhi r1, r0
               movhi r0, r2
               str r0, [r11, r4]
               str r1, [r11, r6]
               add r4, r4, #1
               teq r4, #{last}
               bne inner
               add r5, r5, #1
               teq r5, #{last}
               bne pass
               mov r4, #0
        emit:  ldr r0, [r11, r4]
               str r0, [r10, r4]
               add r4, r4, #1
               teq r4, #{n}
               bne emit
               halt",
        last = n - 1
    )
}

/// Bottom-up merge sort of `n = 2^k` XOR-shared values (paper §5.7).
///
/// Loop bounds (run width, pair base, output slot) are public; the two
/// run cursors are *secret* (advanced by conditional moves), so element
/// loads are oblivious reads over the data region — the linear-scan
/// subset access §4.4 discusses. Ping-pongs between `data[0..n]` and
/// `data[n..2n]`; needs `data_words ≥ 2n`. The alice/bob base registers
/// are recycled as scratch once the shares are combined.
pub fn merge_sort(n: usize) -> String {
    assert!(n.is_power_of_two() && n >= 2, "size must be a power of two");
    format!(
        "      mov r4, #0
        load:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               eor r0, r0, r1
               str r0, [r11, r4]
               add r4, r4, #1
               teq r4, #{n}
               bne load
               mov r7, #0          ; src offset
               mov r12, #{n}       ; dst offset
               mov r5, #1          ; run width
        wloop: mov r4, #0          ; pair base (public)
        mloop: add r0, r7, r4      ; i (left cursor; goes secret)
               add r1, r0, r5      ; j (right cursor)
               add r3, r0, r5      ; left end (public)
               add r6, r1, r5      ; right end (public)
               mov r2, #0          ; k (public output index)
        merge: ldr r8, [r11, r0]   ; d[i] — oblivious read
               ldr r9, [r11, r1]   ; d[j] — oblivious read
               ; take_left = (j >= right_end) | (i < left_end & d[i] <= d[j])
               mov r14, #0
               cmp r0, r3
               movlo r14, #1       ; e = i < left_end
               cmp r8, r9
               movhi r14, #0       ; e & (d[i] <= d[j])
               cmp r1, r6
               movhs r14, #1       ; force left when right run is done
               teq r14, #1
               movne r8, r9        ; value = take_left ? d[i] : d[j]
               add r9, r12, r4
               add r9, r9, r2
               str r8, [r11, r9]   ; public store to dst + base + k
               add r0, r0, r14     ; i += take_left
               eor r14, r14, #1
               add r1, r1, r14     ; j += !take_left
               add r2, r2, #1
               teq r2, r5, lsl #1
               bne merge
               add r4, r4, r5, lsl #1
               teq r4, #{n}
               bne mloop
               eor r7, r7, r12     ; swap src/dst (public values)
               eor r12, r12, r7
               eor r7, r7, r12
               mov r5, r5, lsl #1
               teq r5, #{n}
               bne wloop
               mov r4, #0
        emit:  add r9, r7, r4
               ldr r0, [r11, r9]
               str r0, [r10, r4]
               add r4, r4, #1
               teq r4, #{n}
               bne emit
               halt"
    )
}

/// Dijkstra single-source shortest paths (paper §5.7): `nodes²`
/// XOR-shared adjacency weights (missing edges = `0x3fffffff`), output =
/// distance vector. Outer loops are public; min-extraction and
/// relaxation use conditional moves; the adjacency-row reads use the
/// secret node index (oblivious reads).
pub fn dijkstra(nodes: usize) -> String {
    let n2 = nodes * nodes;
    let inf = 0x3f00_0000u32; // encodable as imm8 ror
    format!(
        "      ; combine shares: adj -> data[0..n2]
               mov r4, #0
        load:  ldr r0, [r8, r4]
               ldr r1, [r9, r4]
               eor r0, r0, r1
               str r0, [r11, r4]
               add r4, r4, #1
               teq r4, #{n2}
               bne load
               ; dist[v] -> data[n2 .. n2+nodes]; dist[0]=0 else INF
               ldi r6, #{inf}
               mov r4, #1
               mov r0, #0
               str r0, [r11, #{n2}]
        init:  add r1, r4, #{n2}
               str r6, [r11, r1]
               add r4, r4, #1
               teq r4, #{nodes}
               bne init
               mov r7, #0          ; visited bitmask (becomes secret)
               mov r12, #0         ; outer counter
        outer: ; find unvisited u with minimal dist
               ldi r1, #{inf2}    ; best
               mov r2, #0          ; argmin
               mov r4, #0
        scan:  add r3, r4, #{n2}
               ldr r0, [r11, r3]   ; dist[i] (public address)
               mov r3, #1
               mov r5, r3, lsl r4  ; bit i (public)
               tst r7, r5          ; visited? (secret)
               movne r0, r6        ; treat visited as INF
               cmp r0, r1
               movlo r1, r0        ; best = dist
               movlo r2, r4        ; u = i (u becomes secret)
               add r4, r4, #1
               teq r4, #{nodes}
               bne scan
               ; visited |= 1 << u (secret shift)
               mov r3, #1
               mov r3, r3, lsl r2
               orr r7, r7, r3
               ; relax: for v in 0..nodes
               mov r4, #0
        relax: mov r3, #{nodes}
               mul r3, r2, r3
               add r3, r3, r4      ; u*nodes + v (secret address)
               ldr r0, [r11, r3]   ; w(u,v) — oblivious read
               add r0, r0, r1      ; alt = best + w
               add r3, r4, #{n2}
               ldr r5, [r11, r3]   ; dist[v]
               cmp r0, r5
               movlo r5, r0
               str r5, [r11, r3]
               add r4, r4, #1
               teq r4, #{nodes}
               bne relax
               add r12, r12, #1
               teq r12, #{nodes}
               bne outer
               ; emit distances
               mov r4, #0
        emit:  add r3, r4, #{n2}
               ldr r0, [r11, r3]
               str r0, [r10, r4]
               add r4, r4, #1
               teq r4, #{nodes}
               bne emit
               halt",
        inf2 = inf + 0x0100_0000 // strictly larger than any dist, encodable
    )
}

/// Universal CORDIC in rotation/circular mode (paper §5.7): rotates the
/// XOR-shared vector `(x, y)` by the XOR-shared angle `z` (2.30 fixed
/// point), 32 iterations, one bit of convergence per cycle. The arctan
/// table is public `.data`; shifts use the public loop counter, so only
/// the three conditional adds/subtracts per iteration cost garbling.
pub fn cordic(iterations: usize) -> String {
    // atan(2^-i) in 2.30 fixed point.
    let mut table = String::new();
    for i in 0..iterations {
        let atan = (2f64.powi(-(i as i32))).atan();
        let fixed = (atan * (1u64 << 30) as f64).round() as i64 as u32;
        if i > 0 {
            table.push_str(", ");
        }
        table.push_str(&format!("{fixed}"));
    }
    format!(
        "      ldr r0, [r8]        ; x share
               ldr r3, [r9]
               eor r0, r0, r3      ; x
               ldr r1, [r8, #1]
               ldr r3, [r9, #1]
               eor r1, r1, r3      ; y
               ldr r2, [r8, #2]
               ldr r3, [r9, #2]
               eor r2, r2, r3      ; z
               ldi r7, =atan
               mov r4, #0          ; i
        loop:  mov r5, r0, asr r4  ; x >> i (public amount)
               mov r6, r1, asr r4  ; y >> i
               ldr r3, [r7, r4]    ; atan(2^-i)  (public)
               cmp r2, #0          ; sign of z (secret N)
               ; z >= 0: x -= y>>i ; y += x>>i ; z -= atan
               subge r0, r0, r6
               addge r1, r1, r5
               subge r2, r2, r3
               ; z < 0: opposite directions
               addlt r0, r0, r6
               sublt r1, r1, r5
               addlt r2, r2, r3
               add r4, r4, #1
               teq r4, #{iterations}
               bne loop
               str r0, [r10]
               str r1, [r10, #1]
               str r2, [r10, #2]
               halt
        .data
        atan:  .word {table}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::{CpuConfig, GcMachine};

    fn machine() -> GcMachine {
        GcMachine::new(CpuConfig::small())
    }

    #[test]
    fn sum32_runs() {
        let m = machine();
        let prog = assemble(&sum32()).unwrap();
        let run = m.run_iss(&prog, &[111], &[222], 100);
        assert!(run.halted);
        assert_eq!(run.output[0], 333);
    }

    #[test]
    fn sum_wide_runs() {
        let m = machine();
        let prog = assemble(&sum_wide(4)).unwrap();
        // 128-bit add with carry propagation across words.
        let a = [u32::MAX, u32::MAX, 0, 0];
        let b = [1, 0, 0, 5];
        let run = m.run_iss(&prog, &a, &b, 10_000);
        assert_eq!(&run.output[..4], &[0, 0, 1, 5]);
    }

    #[test]
    fn compare32_runs() {
        let m = machine();
        let prog = assemble(&compare32()).unwrap();
        assert_eq!(m.run_iss(&prog, &[5], &[9], 100).output[0], 1);
        assert_eq!(m.run_iss(&prog, &[9], &[5], 100).output[0], 0);
        assert_eq!(m.run_iss(&prog, &[7], &[7], 100).output[0], 0);
    }

    #[test]
    fn compare_wide_runs() {
        let m = machine();
        let prog = assemble(&compare_wide(4)).unwrap();
        let lo = [0, 0, 0, 5];
        let hi = [1, 0, 0, 5];
        assert_eq!(m.run_iss(&prog, &lo, &hi, 10_000).output[0], 1);
        assert_eq!(m.run_iss(&prog, &hi, &lo, 10_000).output[0], 0);
        assert_eq!(m.run_iss(&prog, &hi, &hi, 10_000).output[0], 0);
    }

    #[test]
    fn hamming_runs() {
        let m = machine();
        let prog = assemble(&hamming(1)).unwrap();
        assert_eq!(
            m.run_iss(&prog, &[0xffff_0000], &[0x0f0f_0f0f], 1000)
                .output[0],
            16
        );
        let prog5 = assemble(&hamming(5)).unwrap();
        let a: Vec<u32> = (0..5).map(|i| 0x1234_5678u32.rotate_left(i)).collect();
        let b: Vec<u32> = (0..5).map(|i| 0x8765_4321u32.rotate_left(2 * i)).collect();
        let expect: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(m.run_iss(&prog5, &a, &b, 10_000).output[0], expect);
    }

    #[test]
    fn mult32_runs() {
        let m = machine();
        let prog = assemble(&mult32()).unwrap();
        let run = m.run_iss(&prog, &[100_000], &[100_000], 100);
        assert_eq!(run.output[0], 100_000u32.wrapping_mul(100_000));
    }

    #[test]
    fn matmul_runs() {
        let m = machine();
        let prog = assemble(&matmul(3)).unwrap();
        let a: Vec<u32> = (1..=9).collect();
        let b: Vec<u32> = (10..=18).collect();
        let run = m.run_iss(&prog, &a, &b, 10_000);
        assert!(run.halted);
        let expect =
            |i: usize, j: usize| -> u32 { (0..3).map(|l| a[i * 3 + l] * b[l * 3 + j]).sum() };
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(run.output[i * 3 + j], expect(i, j), "c[{i}][{j}]");
            }
        }
    }

    #[test]
    fn bubble_sort_runs() {
        let m = machine();
        let prog = assemble(&bubble_sort(8)).unwrap();
        let a: Vec<u32> = vec![9, 1, 8, 2, 7, 3, 6, 4];
        let b: Vec<u32> = vec![3, 3, 3, 3, 3, 3, 3, 3];
        let mut expect: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        expect.sort_unstable();
        let run = m.run_iss(&prog, &a, &b, 100_000);
        assert!(run.halted);
        assert_eq!(&run.output[..8], &expect[..]);
    }

    #[test]
    fn dijkstra_runs() {
        let m = machine();
        const INF: u32 = 0x3f00_0000;
        // 4-node graph: 0->1 (1), 1->2 (2), 0->2 (10), 2->3 (1), 0->3 (9).
        let n = 4;
        let mut adj = vec![INF; n * n];
        adj[1] = 1;
        adj[n + 2] = 2;
        adj[2] = 10;
        adj[2 * n + 3] = 1;
        adj[3] = 9;
        for i in 0..n {
            adj[i * n + i] = INF;
        }
        let bob = vec![0u32; n * n];
        let prog = assemble(&dijkstra(n)).unwrap();
        let run = m.run_iss(&prog, &adj, &bob, 100_000);
        assert!(run.halted);
        assert_eq!(&run.output[..4], &[0, 1, 3, 4]);
    }

    #[test]
    fn cordic_runs() {
        let m = machine();
        let prog = assemble(&cordic(32)).unwrap();
        // Rotate (K, 0) by 30°; expect (cos30°, sin30°) scaled by the
        // CORDIC gain. Use the standard trick: start with x = 1/K.
        let one_over_k = (0.607_252_935_008_881_3 * (1u64 << 30) as f64) as u32;
        let angle = (30f64.to_radians() * (1u64 << 30) as f64) as u32;
        let bob = [0xa5a5_a5a5, 0x5a5a_5a5a, 0x1111_1111];
        // The program reads x from word 0, y from word 1, z from word 2.
        let alice = [one_over_k ^ bob[0], bob[1], angle ^ bob[2]];
        let run = m.run_iss(&prog, &alice, &bob, 10_000);
        assert!(run.halted);
        let xs = run.output[0] as i32 as f64 / (1u64 << 30) as f64;
        let ys = run.output[1] as i32 as f64 / (1u64 << 30) as f64;
        assert!((xs - 0.866).abs() < 1e-3, "cos: {xs}");
        assert!((ys - 0.5).abs() < 1e-3, "sin: {ys}");
    }
}
