//! Disassembler: turns instruction words back into assembly text.
//!
//! Round-trips with the assembler (see tests) and powers program
//! inspection — the public binary `p` is, after all, what both parties
//! agree to run.

use crate::isa::{Cond, DpOp, Instr, MemOffset, Shift, ShiftAmount};

fn reg(r: u8) -> String {
    match r {
        13 => "sp".into(),
        14 => "lr".into(),
        15 => "pc".into(),
        n => format!("r{n}"),
    }
}

fn shift_name(s: Shift) -> &'static str {
    match s {
        Shift::Lsl => "lsl",
        Shift::Lsr => "lsr",
        Shift::Asr => "asr",
        Shift::Ror => "ror",
    }
}

fn dp_name(op: DpOp) -> &'static str {
    match op {
        DpOp::And => "and",
        DpOp::Eor => "eor",
        DpOp::Sub => "sub",
        DpOp::Rsb => "rsb",
        DpOp::Add => "add",
        DpOp::Adc => "adc",
        DpOp::Sbc => "sbc",
        DpOp::Rsc => "rsc",
        DpOp::Tst => "tst",
        DpOp::Teq => "teq",
        DpOp::Cmp => "cmp",
        DpOp::Cmn => "cmn",
        DpOp::Orr => "orr",
        DpOp::Mov => "mov",
        DpOp::Bic => "bic",
        DpOp::Mvn => "mvn",
    }
}

/// Disassembles one instruction word. Branch targets are rendered as
/// absolute word addresses given the instruction's own address `pc`.
pub fn disassemble(word: u32, pc: u32) -> String {
    match Instr::decode(word) {
        Instr::Nop => "nop".into(),
        Instr::Halt { cond } => format!("halt{}", cond.mnemonic()),
        Instr::Mul { cond, rd, rm, rs } => {
            format!(
                "mul{} {}, {}, {}",
                cond.mnemonic(),
                reg(rd),
                reg(rm),
                reg(rs)
            )
        }
        Instr::Branch { cond, link, offset } => {
            let target = pc.wrapping_add(1).wrapping_add(offset as u32);
            format!(
                "b{}{} 0x{target:x}",
                if link { "l" } else { "" },
                cond.mnemonic()
            )
        }
        Instr::Mem {
            cond,
            load,
            rn,
            rd,
            offset,
        } => {
            let op = if load { "ldr" } else { "str" };
            let addr = match offset {
                MemOffset::Imm(0) => format!("[{}]", reg(rn)),
                MemOffset::Imm(i) => format!("[{}, #{i}]", reg(rn)),
                MemOffset::Reg(rm) => format!("[{}, {}]", reg(rn), reg(rm)),
            };
            format!("{op}{} {}, {addr}", cond.mnemonic(), reg(rd))
        }
        Instr::DpImm {
            cond,
            op,
            s,
            rn,
            rd,
            imm8,
            rot,
        } => {
            let value = (imm8 as u32).rotate_right(2 * rot as u32);
            let sfx = suffix(op, cond, s);
            match op {
                DpOp::Mov | DpOp::Mvn => format!("{}{} {}, #{value}", dp_name(op), sfx, reg(rd)),
                DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn => {
                    format!("{}{} {}, #{value}", dp_name(op), sfx, reg(rn))
                }
                _ => format!("{}{} {}, {}, #{value}", dp_name(op), sfx, reg(rd), reg(rn)),
            }
        }
        Instr::DpReg {
            cond,
            op,
            s,
            rn,
            rd,
            rm,
            shift,
            amount,
        } => {
            let sfx = suffix(op, cond, s);
            let op2 = match (shift, amount) {
                (Shift::Lsl, ShiftAmount::Imm(0)) => reg(rm),
                (sh, ShiftAmount::Imm(k)) => format!("{}, {} #{k}", reg(rm), shift_name(sh)),
                (sh, ShiftAmount::Reg(rs)) => {
                    format!("{}, {} {}", reg(rm), shift_name(sh), reg(rs))
                }
            };
            match op {
                DpOp::Mov | DpOp::Mvn => format!("{}{} {}, {op2}", dp_name(op), sfx, reg(rd)),
                DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn => {
                    format!("{}{} {}, {op2}", dp_name(op), sfx, reg(rn))
                }
                _ => format!("{}{} {}, {}, {op2}", dp_name(op), sfx, reg(rd), reg(rn)),
            }
        }
    }
}

fn suffix(op: DpOp, cond: Cond, s: bool) -> String {
    // Test ops always set flags; the s is implicit in the mnemonic.
    let s_part = if s && !op.is_test() { "s" } else { "" };
    format!("{}{}", cond.mnemonic(), s_part)
}

/// Disassembles a whole program image.
pub fn disassemble_all(words: &[u32]) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(pc, &w)| format!("{pc:04x}: {}", disassemble(w, pc as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// Disassembling an assembled program and re-assembling it yields the
    /// same words (for the label-free subset the disassembler emits).
    #[test]
    fn reassembly_roundtrip() {
        let src = "mov r0, #1
                   adds r1, r0, #255
                   subles r2, r1, r0, lsl #3
                   cmp r2, r1, ror r4
                   mvn r3, #0
                   ldr r5, [r8, #3]
                   strne r5, [r10, r4]
                   mul r6, r5, r3
                   teq r6, #0
                   halt";
        let p = assemble(src).expect("assembles");
        for (pc, &w) in p.text.iter().enumerate() {
            let text = disassemble(w, pc as u32);
            // Branchless instructions must reassemble to the same word.
            let p2 = assemble(&text).expect(&text);
            assert_eq!(p2.text[0], w, "{text}");
        }
    }

    #[test]
    fn branch_targets_are_absolute() {
        let p = assemble("start: nop\n b start").expect("assembles");
        assert_eq!(disassemble(p.text[1], 1), "b 0x0");
    }

    #[test]
    fn listing_shape() {
        let p = assemble("mov r0, #7\nhalt").expect("assembles");
        let listing = disassemble_all(&p.text);
        assert_eq!(listing[0], "0000: mov r0, #7");
        assert_eq!(listing[1], "0001: halt");
    }
}
