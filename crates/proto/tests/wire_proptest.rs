//! Property tests for the wire codec: arbitrary payloads round-trip,
//! and corrupted frames fail with a clean `Malformed` error — never a
//! panic.

use arm2gc_crypto::Label;
use arm2gc_proto::bits::{pack_bits, unpack_bits};
use arm2gc_proto::{Message, ProtoError, SessionRole};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary label vectors survive encode/decode.
    #[test]
    fn direct_labels_roundtrip(raw in proptest::collection::vec(any::<u128>(), 0..200)) {
        let msg = Message::DirectLabels(raw.iter().map(|&v| Label::from_u128(v)).collect());
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Arbitrary table batches (any whole number of 32-byte tables)
    /// survive encode/decode.
    #[test]
    fn table_batches_roundtrip(tables in proptest::collection::vec(any::<[u8; 32]>(), 0..64)) {
        let bytes: Vec<u8> = tables.iter().flatten().copied().collect();
        let msg = Message::Tables(bytes);
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Opaque OT payloads of any length survive encode/decode.
    #[test]
    fn ot_payloads_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..500)) {
        let msg = Message::OtPayload(payload);
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Decode/output bit vectors of every length — multiples of 8 or
    /// not — survive encode/decode, both variants.
    #[test]
    fn bit_frames_roundtrip(seed in any::<u64>(), n in 0usize..200) {
        let bits: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let decode = Message::DecodeBits(bits.clone());
        prop_assert_eq!(Message::decode(&decode.encode()).expect("decode"), decode);
        let outputs = Message::Outputs(bits);
        prop_assert_eq!(Message::decode(&outputs.encode()).expect("decode"), outputs);
    }

    /// pack/unpack is the identity for every length.
    #[test]
    fn pack_unpack_identity(seed in any::<u128>(), n in 0usize..130) {
        let bits: Vec<bool> = (0..n).map(|i| (seed >> (i % 128)) & 1 == 1).collect();
        prop_assert_eq!(unpack_bits(&pack_bits(&bits), n), bits);
    }

    /// Hello frames round-trip for every version.
    #[test]
    fn hello_roundtrip(version: u16, evaluator: bool) {
        let role = if evaluator { SessionRole::Evaluator } else { SessionRole::Garbler };
        let msg = Message::Hello { version, role };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Truncating any valid frame yields `Malformed` or a shorter valid
    /// frame of the same tag — never a panic, never a misparse into a
    /// different variant.
    #[test]
    fn truncation_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..80), cut in 0usize..80) {
        let msg = Message::OtPayload(raw);
        let mut encoded = msg.encode();
        encoded.truncate(cut.min(encoded.len()));
        match Message::decode(&encoded) {
            Ok(Message::OtPayload(_)) | Err(ProtoError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }

    /// Arbitrary byte soup either decodes to *some* message or fails
    /// with `Malformed` — the decoder never panics on garbage.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..200)) {
        match Message::decode(&raw) {
            Ok(_) | Err(ProtoError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }
}

/// A bit-count field inconsistent with the payload is rejected, not
/// unpacked out of bounds.
#[test]
fn oversized_bit_count_is_malformed() {
    let mut raw = Message::DecodeBits(vec![true; 8]).encode();
    raw[1] = 200; // claim 200 bits, provide 1 byte
    assert!(matches!(
        Message::decode(&raw),
        Err(ProtoError::Malformed(_))
    ));
}
