//! Property tests for the wire codec: arbitrary payloads round-trip,
//! and corrupted frames — truncated, bit-flipped, or with hostile
//! length fields — fail with a typed `Malformed`/`CorruptFrame` error:
//! never a panic, never an allocation sized by attacker-controlled
//! counts.

use arm2gc_crypto::Label;
use arm2gc_proto::bits::{pack_bits, unpack_bits};
use arm2gc_proto::{Message, ProtoError, SessionRole};
use proptest::prelude::*;

/// One representative frame of every variant, scaled by `seed` so the
/// fuzz explores different sizes and contents.
fn sample_frames(seed: u64) -> Vec<Message> {
    let n = (seed % 17) as usize;
    let bits: Vec<bool> = (0..n + 1).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
    vec![
        Message::Hello {
            version: seed as u16,
            role: if seed & 1 == 0 {
                SessionRole::Garbler
            } else {
                SessionRole::Evaluator
            },
        },
        Message::DirectLabels(
            (0..n)
                .map(|i| Label::from_u128(seed as u128 + i as u128))
                .collect(),
        ),
        Message::Tables(vec![seed as u8; 32 * n]),
        Message::OtPayload(vec![seed as u8; n * 3]),
        Message::DecodeBits(bits.clone()),
        Message::Outputs(bits),
        Message::TableShard {
            shard: (seed % 4) as u8,
            tables: vec![seed as u8; 32 * n],
        },
        Message::Instances((seed % 7 + 1) as u16),
        Message::ServiceRequest {
            shards: (seed % 4 + 1) as u8,
            instances: (seed % 7 + 1) as u16,
            ot_token: seed.rotate_left(17),
            workload: format!("wl{}", seed % 100),
        },
        Message::ServiceAccept {
            session: seed,
            resumed: seed & 2 == 2,
        },
        Message::ServiceReject {
            reason: format!("reason {}", seed % 100),
        },
        Message::ServiceAttach {
            session: seed,
            shard: (seed % 4) as u8,
        },
    ]
}

/// Decode must return a typed verdict on hostile input: success (the
/// corruption happened to keep the frame valid) or a clean
/// `Malformed`/`CorruptFrame` — panics and unrepresented errors fail
/// the property.
fn assert_clean_verdict(raw: &[u8]) -> Result<(), TestCaseError> {
    match Message::decode(raw) {
        Ok(_) | Err(ProtoError::Malformed(_)) => Ok(()),
        Err(ProtoError::CorruptFrame { tag, .. }) => {
            // The typed tag must be the frame's actual leading byte.
            prop_assert_eq!(tag, raw[0]);
            Ok(())
        }
        other => {
            prop_assert!(false, "unexpected decode result: {:?}", other);
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary label vectors survive encode/decode.
    #[test]
    fn direct_labels_roundtrip(raw in proptest::collection::vec(any::<u128>(), 0..200)) {
        let msg = Message::DirectLabels(raw.iter().map(|&v| Label::from_u128(v)).collect());
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Arbitrary table batches (any whole number of 32-byte tables)
    /// survive encode/decode.
    #[test]
    fn table_batches_roundtrip(tables in proptest::collection::vec(any::<[u8; 32]>(), 0..64)) {
        let bytes: Vec<u8> = tables.iter().flatten().copied().collect();
        let msg = Message::Tables(bytes);
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Opaque OT payloads of any length survive encode/decode.
    #[test]
    fn ot_payloads_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..500)) {
        let msg = Message::OtPayload(payload);
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Decode/output bit vectors of every length — multiples of 8 or
    /// not — survive encode/decode, both variants.
    #[test]
    fn bit_frames_roundtrip(seed in any::<u64>(), n in 0usize..200) {
        let bits: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let decode = Message::DecodeBits(bits.clone());
        prop_assert_eq!(Message::decode(&decode.encode()).expect("decode"), decode);
        let outputs = Message::Outputs(bits);
        prop_assert_eq!(Message::decode(&outputs.encode()).expect("decode"), outputs);
    }

    /// pack/unpack is the identity for every length.
    #[test]
    fn pack_unpack_identity(seed in any::<u128>(), n in 0usize..130) {
        let bits: Vec<bool> = (0..n).map(|i| (seed >> (i % 128)) & 1 == 1).collect();
        prop_assert_eq!(unpack_bits(&pack_bits(&bits), n), bits);
    }

    /// Hello frames round-trip for every version.
    #[test]
    fn hello_roundtrip(version: u16, evaluator: bool) {
        let role = if evaluator { SessionRole::Evaluator } else { SessionRole::Garbler };
        let msg = Message::Hello { version, role };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Truncating any valid frame of any variant — at any point past
    /// the tag byte — yields a typed error or a shorter valid frame of
    /// the same tag: never a panic.
    #[test]
    fn truncation_never_panics(seed in any::<u64>(), which in 0usize..12, cut in 1usize..2000) {
        let frames = sample_frames(seed);
        let mut encoded = frames[which % frames.len()].encode();
        let tag = encoded[0];
        encoded.truncate(cut.min(encoded.len()));
        match Message::decode(&encoded) {
            Ok(_) | Err(ProtoError::Malformed(_)) => {}
            Err(ProtoError::CorruptFrame { tag: t, .. }) => prop_assert_eq!(t, tag),
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }

    /// Flipping any single bit of any valid frame yields a typed
    /// verdict — never a panic. (The flip may land in opaque payload
    /// bytes and keep the frame valid; that is a success verdict.)
    #[test]
    fn bit_flips_never_panic(seed in any::<u64>(), which in 0usize..12, flip in any::<usize>()) {
        let frames = sample_frames(seed);
        let mut encoded = frames[which % frames.len()].encode();
        let bit = flip % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        assert_clean_verdict(&encoded)?;
    }

    /// Arbitrary byte soup either decodes to *some* message or fails
    /// with a typed error — the decoder never panics on garbage.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..200)) {
        if raw.is_empty() {
            prop_assert!(matches!(Message::decode(&raw), Err(ProtoError::Malformed(_))));
        } else {
            assert_clean_verdict(&raw)?;
        }
    }

    /// Hostile internal count fields (a bit count far beyond the
    /// actual payload) are rejected by arithmetic before any allocation
    /// sized by them could happen.
    #[test]
    fn hostile_counts_are_rejected(count in any::<u32>()) {
        // A DecodeBits frame claiming `count` bits but carrying none.
        let mut raw = Message::DecodeBits(Vec::new()).encode();
        raw[1..5].copy_from_slice(&count.to_le_bytes());
        if count == 0 {
            prop_assert_eq!(Message::decode(&raw).expect("decode"), Message::DecodeBits(Vec::new()));
        } else {
            prop_assert!(matches!(
                Message::decode(&raw),
                Err(ProtoError::CorruptFrame { .. })
            ));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// v4 preamble frames round-trip for every token/flag value.
    #[test]
    fn service_request_roundtrip(shards: u8, instances: u16, ot_token: u64, wl in 0u64..1000) {
        let msg = Message::ServiceRequest {
            shards,
            instances,
            ot_token,
            workload: format!("w{wl}"),
        };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    /// Hostile ServiceRequest bodies — truncated tokens, non-utf-8
    /// workloads — fail with a typed error, never a panic.
    #[test]
    fn hostile_service_request_is_typed(body in proptest::collection::vec(any::<u8>(), 0..24)) {
        let mut raw = vec![9u8]; // TAG_SERVICE_REQUEST
        raw.extend_from_slice(&body);
        match Message::decode(&raw) {
            Ok(Message::ServiceRequest { .. }) => prop_assert!(body.len() >= 11),
            Err(ProtoError::CorruptFrame { tag, .. }) => prop_assert_eq!(tag, 9),
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }

    /// Hostile ServiceAccept bodies: only exactly 9 bytes with a 0/1
    /// resumed flag decode; everything else is a typed error.
    #[test]
    fn hostile_service_accept_is_typed(body in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut raw = vec![10u8]; // TAG_SERVICE_ACCEPT
        raw.extend_from_slice(&body);
        match Message::decode(&raw) {
            Ok(Message::ServiceAccept { resumed, .. }) => {
                prop_assert!(body.len() == 9 && body[8] == resumed as u8 && body[8] < 2);
            }
            Err(ProtoError::CorruptFrame { tag, .. }) => prop_assert_eq!(tag, 10),
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }
}

/// A bit-count field inconsistent with the payload is rejected, not
/// unpacked out of bounds.
#[test]
fn oversized_bit_count_is_malformed() {
    let mut raw = Message::DecodeBits(vec![true; 8]).encode();
    raw[1] = 200; // claim 200 bits, provide 1 byte
    assert!(matches!(
        Message::decode(&raw),
        Err(ProtoError::CorruptFrame { .. })
    ));
}
