//! The typed, versioned wire protocol spoken between the two parties.
//!
//! Every frame a session puts on a [`arm2gc_comm::Channel`] is one
//! encoded [`Message`]. The outer length framing belongs to the channel;
//! this module defines the *payload* layout — a one-byte tag followed by
//! a tag-specific body, all integers little-endian:
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | `1` | [`Message::Hello`] | magic `u32`, version `u16`, role `u8` |
//! | `2` | [`Message::DirectLabels`] | 16-byte labels, back to back |
//! | `3` | [`Message::OtPayload`] | opaque OT sub-protocol bytes |
//! | `4` | [`Message::Tables`] | garbled-table bytes, back to back |
//! | `5` | [`Message::DecodeBits`] | bit count `u32`, packed bits |
//! | `6` | [`Message::Outputs`] | bit count `u32`, packed bits |
//! | `7` | [`Message::TableShard`] | shard id `u8`, garbled-table bytes |
//! | `8` | [`Message::Instances`] | instance count `u16` |
//! | `9` | [`Message::ServiceRequest`] | shards `u8`, instances `u16`, OT resume token `u64`, workload utf-8 |
//! | `10` | [`Message::ServiceAccept`] | session id `u64`, resumed `u8` |
//! | `11` | [`Message::ServiceReject`] | reason utf-8 |
//! | `12` | [`Message::ServiceAttach`] | session id `u64`, shard `u8` |
//!
//! Decoding is strict: unknown tags, truncated bodies, bad magic and
//! inconsistent lengths all yield [`ProtoError::CorruptFrame`] (naming
//! the offending tag) — never a panic, and never an allocation sized by
//! attacker-controlled lengths beyond the frame already in hand. The
//! service preamble frames (tags 9–12) deliberately do *not*
//! range-check their shard/instance counts: the garbler service
//! validates them against [`crate::config::ConfigError`] so a bogus
//! request gets a typed [`Message::ServiceReject`] instead of a framing
//! error.

use std::error::Error;
use std::fmt;

use arm2gc_comm::ChannelError;
use arm2gc_crypto::Label;
use arm2gc_ot::OtError;

use crate::bits::{pack_bits, unpack_bits};
use crate::config::ConfigError;

/// Highest version spoken by this build; [`Message::Hello`] carries it.
/// Sessions negotiate the *lowest common* version with the peer and
/// reject only peers below [`MIN_PROTOCOL_VERSION`].
///
/// v2 added [`Message::Instances`] (cross-instance batched sessions);
/// single-instance sessions never send it, so v1 peers interoperate
/// unchanged. v3 added the service preamble frames
/// ([`Message::ServiceRequest`] and friends) spoken *before* the
/// handshake when connecting to the multi-tenant garbler service;
/// direct two-party sessions never send them, so v2 peers interoperate
/// unchanged. v4 extended the preamble with base-OT reuse — an OT
/// resume token in [`Message::ServiceRequest`] and a `resumed` flag in
/// [`Message::ServiceAccept`] — and fixed the Naor–Pinkas hash-tweak
/// schedule to a batch-persistent counter; v3 service preambles and
/// repeated base-OT batches do not interoperate, direct sessions again
/// do.
pub const PROTOCOL_VERSION: u16 = 4;

/// Oldest version this build still speaks. A peer advertising anything
/// `>= MIN_PROTOCOL_VERSION` is accepted; the session then runs at
/// `min(PROTOCOL_VERSION, peer_version)`.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Frame magic ("A2GC"), guarding against a non-ARM2GC peer.
pub const MAGIC: u32 = u32::from_le_bytes(*b"A2GC");

pub(crate) const TAG_HELLO: u8 = 1;
pub(crate) const TAG_DIRECT_LABELS: u8 = 2;
pub(crate) const TAG_OT_PAYLOAD: u8 = 3;
pub(crate) const TAG_TABLES: u8 = 4;
pub(crate) const TAG_DECODE_BITS: u8 = 5;
pub(crate) const TAG_OUTPUTS: u8 = 6;
pub(crate) const TAG_TABLE_SHARD: u8 = 7;
pub(crate) const TAG_INSTANCES: u8 = 8;
pub(crate) const TAG_SERVICE_REQUEST: u8 = 9;
pub(crate) const TAG_SERVICE_ACCEPT: u8 = 10;
pub(crate) const TAG_SERVICE_REJECT: u8 = 11;
pub(crate) const TAG_SERVICE_ATTACH: u8 = 12;

/// Which side of the protocol a session plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionRole {
    /// Alice: garbles and streams tables.
    Garbler,
    /// Bob: evaluates the streamed tables.
    Evaluator,
}

impl SessionRole {
    /// The opposite role.
    pub fn peer(self) -> Self {
        match self {
            SessionRole::Garbler => SessionRole::Evaluator,
            SessionRole::Evaluator => SessionRole::Garbler,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            SessionRole::Garbler => 0,
            SessionRole::Evaluator => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, &'static str> {
        match b {
            0 => Ok(SessionRole::Garbler),
            1 => Ok(SessionRole::Evaluator),
            _ => Err("unknown session role"),
        }
    }
}

/// Failures of the typed protocol layer (and of the engines built on it).
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Channel(ChannelError),
    /// Oblivious-transfer failure.
    Ot(OtError),
    /// A received frame failed to decode: `tag` is the frame's leading
    /// tag byte (or the claimed tag of an unknown frame) and `what`
    /// says which structural check failed. Produced by
    /// [`Message::decode`] — pinpointing the tag lets a service log
    /// and count *which* protocol step a hostile or corrupted peer
    /// broke at.
    CorruptFrame {
        /// The offending frame's tag byte.
        tag: u8,
        /// Which structural check failed.
        what: &'static str,
    },
    /// A session-level (not framing-level) protocol violation: the
    /// frames decoded fine but their contents or order were invalid —
    /// e.g. a version below the minimum, a role mismatch, an empty
    /// frame where one was required.
    Malformed(&'static str),
    /// The session configuration was rejected before any protocol state
    /// existed (see [`ConfigError`]).
    Config(ConfigError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Channel(e) => write!(f, "protocol channel failure: {e}"),
            ProtoError::Ot(e) => write!(f, "protocol ot failure: {e}"),
            ProtoError::CorruptFrame { tag, what } => {
                write!(f, "corrupt protocol frame (tag {tag}): {what}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed protocol message: {m}"),
            ProtoError::Config(e) => write!(f, "invalid session configuration: {e}"),
        }
    }
}

impl Error for ProtoError {}

impl From<ChannelError> for ProtoError {
    fn from(e: ChannelError) -> Self {
        ProtoError::Channel(e)
    }
}

impl From<OtError> for ProtoError {
    fn from(e: OtError) -> Self {
        ProtoError::Ot(e)
    }
}

impl From<ConfigError> for ProtoError {
    fn from(e: ConfigError) -> Self {
        ProtoError::Config(e)
    }
}

/// One typed protocol frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Handshake: first frame each side sends.
    Hello {
        /// Protocol version (see [`PROTOCOL_VERSION`]).
        version: u16,
        /// The sender's role.
        role: SessionRole,
    },
    /// Input labels delivered directly (wires whose value Alice knows).
    DirectLabels(Vec<Label>),
    /// One message of an OT sub-protocol, tunnelled opaquely.
    OtPayload(Vec<u8>),
    /// A batch of garbled-table bytes from the streaming sink.
    Tables(Vec<u8>),
    /// Decode (colour) bits for the scheduled secret outputs.
    DecodeBits(Vec<bool>),
    /// Revealed output values, mirrored back by the evaluator.
    Outputs(Vec<bool>),
    /// A batch of garbled-table bytes belonging to one shard of a
    /// sharded table stream (see [`crate::shard::ShardConfig`]).
    TableShard {
        /// Which sub-stream this batch belongs to.
        shard: u8,
        /// Garbled-table bytes, back to back.
        tables: Vec<u8>,
    },
    /// Instance count of a cross-instance batched session, sent by the
    /// garbler right after the handshake — but only when the count is
    /// greater than one, so single-instance transcripts are unchanged.
    /// Requires protocol version ≥ 2.
    Instances(u16),
    /// Service preamble: an evaluator asks the multi-tenant garbler
    /// service for a session of the named workload with the given
    /// table-stream shard count and instance (lane) count. Spoken as
    /// the *first* frame on a fresh connection, before the [`Hello`]
    /// handshake; direct two-party sessions never send it. The counts
    /// are intentionally not range-checked here — the service rejects
    /// bogus values with a typed [`Message::ServiceReject`].
    ///
    /// [`Hello`]: Message::Hello
    ServiceRequest {
        /// Parallel table sub-streams the session should use.
        shards: u8,
        /// Lanes of a cross-instance batched session (1 = plain).
        instances: u16,
        /// Client-chosen base-OT reuse token; `0` opts out. A non-zero
        /// token asks the service to resume IKNP extension state cached
        /// from this client's previous session under the same token,
        /// skipping the base-OT setup. The token is an identifier, not
        /// a secret: resuming someone else's token only desyncs the OT
        /// transcript and fails the session.
        ot_token: u64,
        /// Name of the workload to serve (service-defined registry).
        workload: String,
    },
    /// Service preamble: the request was admitted; the returned session
    /// id names the session in subsequent [`Message::ServiceAttach`]
    /// frames. The garbler's [`Message::Hello`] follows on this
    /// connection once all shard channels are attached.
    ServiceAccept {
        /// Service-assigned session identifier.
        session: u64,
        /// Whether the service will resume cached IKNP state for the
        /// request's OT token. When `false` the client must run a fresh
        /// OT setup even if it holds receiver state from an earlier
        /// session (the cache entry may have been evicted).
        resumed: bool,
    },
    /// Service preamble: the request was refused (invalid
    /// configuration, unknown workload, or the service is saturated);
    /// the connection is then closed.
    ServiceReject {
        /// Human-readable refusal reason (from
        /// [`ConfigError`]'s `Display` for configuration errors).
        reason: String,
    },
    /// Service preamble: binds a fresh connection to shard `shard` of
    /// an accepted session's table stream. Sent once, as the first
    /// frame on each extra per-shard connection.
    ServiceAttach {
        /// Session id from [`Message::ServiceAccept`].
        session: u64,
        /// Which sub-stream this connection carries.
        shard: u8,
    },
}

impl Message {
    /// Serialises the frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Hello { version, role } => {
                let mut out = Vec::with_capacity(8);
                out.push(TAG_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.push(role.to_byte());
                out
            }
            Message::DirectLabels(labels) => {
                let mut out = Vec::with_capacity(1 + labels.len() * 16);
                out.push(TAG_DIRECT_LABELS);
                for l in labels {
                    out.extend_from_slice(&l.to_bytes());
                }
                out
            }
            Message::OtPayload(bytes) => prefixed(TAG_OT_PAYLOAD, bytes),
            Message::Tables(bytes) => prefixed(TAG_TABLES, bytes),
            Message::DecodeBits(bits) => encode_bits(TAG_DECODE_BITS, bits),
            Message::Outputs(bits) => encode_bits(TAG_OUTPUTS, bits),
            Message::TableShard { shard, tables } => {
                let mut out = Vec::with_capacity(2 + tables.len());
                out.push(TAG_TABLE_SHARD);
                out.push(*shard);
                out.extend_from_slice(tables);
                out
            }
            Message::Instances(n) => {
                let mut out = Vec::with_capacity(3);
                out.push(TAG_INSTANCES);
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
            Message::ServiceRequest {
                shards,
                instances,
                ot_token,
                workload,
            } => {
                let mut out = Vec::with_capacity(12 + workload.len());
                out.push(TAG_SERVICE_REQUEST);
                out.push(*shards);
                out.extend_from_slice(&instances.to_le_bytes());
                out.extend_from_slice(&ot_token.to_le_bytes());
                out.extend_from_slice(workload.as_bytes());
                out
            }
            Message::ServiceAccept { session, resumed } => {
                let mut out = Vec::with_capacity(10);
                out.push(TAG_SERVICE_ACCEPT);
                out.extend_from_slice(&session.to_le_bytes());
                out.push(*resumed as u8);
                out
            }
            Message::ServiceReject { reason } => prefixed(TAG_SERVICE_REJECT, reason.as_bytes()),
            Message::ServiceAttach { session, shard } => {
                let mut out = Vec::with_capacity(10);
                out.push(TAG_SERVICE_ATTACH);
                out.extend_from_slice(&session.to_le_bytes());
                out.push(*shard);
                out
            }
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    /// [`ProtoError::CorruptFrame`] (naming the tag) on unknown tags,
    /// truncated bodies, bad magic or inconsistent lengths;
    /// [`ProtoError::Malformed`] only for an empty frame, which has no
    /// tag to attribute.
    pub fn decode(raw: &[u8]) -> Result<Message, ProtoError> {
        let (&tag, body) = raw
            .split_first()
            .ok_or(ProtoError::Malformed("empty frame"))?;
        Self::decode_body(tag, body).map_err(|what| ProtoError::CorruptFrame { tag, what })
    }

    /// Parses one frame body given its tag; errors name the failed
    /// structural check (the caller attributes them to the tag).
    fn decode_body(tag: u8, body: &[u8]) -> Result<Message, &'static str> {
        match tag {
            TAG_HELLO => {
                if body.len() != 7 {
                    return Err("hello frame size");
                }
                let magic = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
                if magic != MAGIC {
                    return Err("bad magic");
                }
                let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
                let role = SessionRole::from_byte(body[6])?;
                Ok(Message::Hello { version, role })
            }
            TAG_DIRECT_LABELS => {
                if body.len() % 16 != 0 {
                    return Err("direct labels not 16-byte aligned");
                }
                Ok(Message::DirectLabels(
                    body.chunks_exact(16)
                        .map(|c| Label::from_bytes(c.try_into().expect("16 bytes")))
                        .collect(),
                ))
            }
            TAG_OT_PAYLOAD => Ok(Message::OtPayload(body.to_vec())),
            TAG_TABLES => Ok(Message::Tables(body.to_vec())),
            TAG_DECODE_BITS => Ok(Message::DecodeBits(decode_bits(body)?)),
            TAG_OUTPUTS => Ok(Message::Outputs(decode_bits(body)?)),
            TAG_TABLE_SHARD => {
                let (&shard, tables) = body.split_first().ok_or("table shard frame too short")?;
                Ok(Message::TableShard {
                    shard,
                    tables: tables.to_vec(),
                })
            }
            TAG_INSTANCES => {
                if body.len() != 2 {
                    return Err("instances frame size");
                }
                let n = u16::from_le_bytes(body.try_into().expect("2 bytes"));
                if n == 0 {
                    return Err("zero instance count");
                }
                Ok(Message::Instances(n))
            }
            TAG_SERVICE_REQUEST => {
                if body.len() < 11 {
                    return Err("service request frame too short");
                }
                let shards = body[0];
                let instances = u16::from_le_bytes(body[1..3].try_into().expect("2 bytes"));
                let ot_token = u64::from_le_bytes(body[3..11].try_into().expect("8 bytes"));
                let workload = String::from_utf8(body[11..].to_vec())
                    .map_err(|_| "workload name not utf-8")?;
                Ok(Message::ServiceRequest {
                    shards,
                    instances,
                    ot_token,
                    workload,
                })
            }
            TAG_SERVICE_ACCEPT => {
                if body.len() != 9 {
                    return Err("service accept frame size");
                }
                let resumed = match body[8] {
                    0 => false,
                    1 => true,
                    _ => return Err("service accept resumed flag not 0/1"),
                };
                Ok(Message::ServiceAccept {
                    session: u64::from_le_bytes(body[0..8].try_into().expect("8 bytes")),
                    resumed,
                })
            }
            TAG_SERVICE_REJECT => Ok(Message::ServiceReject {
                reason: String::from_utf8(body.to_vec()).map_err(|_| "reject reason not utf-8")?,
            }),
            TAG_SERVICE_ATTACH => {
                if body.len() != 9 {
                    return Err("service attach frame size");
                }
                Ok(Message::ServiceAttach {
                    session: u64::from_le_bytes(body[0..8].try_into().expect("8 bytes")),
                    shard: body[8],
                })
            }
            _ => Err("unknown frame tag"),
        }
    }
}

pub(crate) fn prefixed(tag: u8, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + bytes.len());
    out.push(tag);
    out.extend_from_slice(bytes);
    out
}

fn encode_bits(tag: u8, bits: &[bool]) -> Vec<u8> {
    let packed = pack_bits(bits);
    let mut out = Vec::with_capacity(5 + packed.len());
    out.push(tag);
    out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
    out.extend_from_slice(&packed);
    out
}

fn decode_bits(body: &[u8]) -> Result<Vec<bool>, &'static str> {
    if body.len() < 4 {
        return Err("bit frame too short");
    }
    let n = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let packed = &body[4..];
    // The length check precedes any allocation, so a hostile bit count
    // cannot size a buffer beyond the frame already in hand.
    if packed.len() != n.div_ceil(8) {
        return Err("bit frame length mismatch");
    }
    // Canonical encodings only: padding bits in the last byte are zero.
    if n % 8 != 0 {
        if let Some(&last) = packed.last() {
            if last >> (n % 8) != 0 {
                return Err("nonzero bit-frame padding");
            }
        }
    }
    Ok(unpack_bits(packed, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Hello {
            version: PROTOCOL_VERSION,
            role: SessionRole::Garbler,
        });
        roundtrip(Message::Hello {
            version: 7,
            role: SessionRole::Evaluator,
        });
        roundtrip(Message::DirectLabels(vec![]));
        roundtrip(Message::DirectLabels(
            (0..5).map(|i| Label::from_u128(i * 37)).collect(),
        ));
        roundtrip(Message::OtPayload(vec![]));
        roundtrip(Message::OtPayload((0..255).collect()));
        roundtrip(Message::Tables(vec![9u8; 96]));
        roundtrip(Message::DecodeBits(vec![]));
        roundtrip(Message::DecodeBits(vec![true, false, true]));
        roundtrip(Message::Outputs((0..29).map(|i| i % 4 == 1).collect()));
        roundtrip(Message::TableShard {
            shard: 0,
            tables: vec![],
        });
        roundtrip(Message::TableShard {
            shard: 3,
            tables: vec![7u8; 64],
        });
        roundtrip(Message::Instances(2));
        roundtrip(Message::Instances(u16::MAX));
        roundtrip(Message::ServiceRequest {
            shards: 2,
            instances: 8,
            ot_token: 0xfeed_beef_cafe_0001,
            workload: "compare32:7".into(),
        });
        roundtrip(Message::ServiceRequest {
            shards: 0, // bogus counts survive the codec; the service rejects them
            instances: 0,
            ot_token: 0,
            workload: String::new(),
        });
        roundtrip(Message::ServiceAccept {
            session: 0,
            resumed: false,
        });
        roundtrip(Message::ServiceAccept {
            session: u64::MAX - 3,
            resumed: true,
        });
        roundtrip(Message::ServiceReject {
            reason: "shard count must be at least 1".into(),
        });
        roundtrip(Message::ServiceAttach {
            session: 42,
            shard: 1,
        });
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        let cases: &[&[u8]] = &[
            &[],                                         // empty
            &[99, 1, 2, 3],                              // unknown tag
            &[TAG_HELLO, 1, 2],                          // truncated hello
            &[TAG_HELLO, 0, 0, 0, 0, 1, 0, 0],           // bad magic
            &[TAG_DIRECT_LABELS, 1, 2, 3],               // not 16-byte aligned
            &[TAG_DECODE_BITS, 1],                       // too short for count
            &[TAG_DECODE_BITS, 9, 0, 0, 0, 0xff],        // says 9 bits, holds 8
            &[TAG_DECODE_BITS, 3, 0, 0, 0, 0xff],        // nonzero padding bits
            &[TAG_OUTPUTS, 1, 0, 0, 0, 0xff, 0xff],      // says 1 bit, holds 16
            &[TAG_OUTPUTS, 5, 0, 0, 0, 0b0010_0000],     // padding bit set
            &[TAG_TABLE_SHARD],                          // missing shard id
            &[TAG_INSTANCES, 4],                         // truncated count
            &[TAG_INSTANCES, 4, 0, 0],                   // oversized count
            &[TAG_INSTANCES, 0, 0],                      // zero instances
            &[TAG_SERVICE_REQUEST, 1, 8],                // truncated instances
            &[TAG_SERVICE_REQUEST, 1, 8, 0],             // missing ot token
            &[TAG_SERVICE_REQUEST, 1, 8, 0, 1, 2, 3, 4], // truncated ot token
            // workload not utf-8 (token present)
            &[TAG_SERVICE_REQUEST, 1, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff],
            &[TAG_SERVICE_ACCEPT, 1, 2, 3], // short session id
            // resumed flag out of range
            &[TAG_SERVICE_ACCEPT, 1, 2, 3, 4, 5, 6, 7, 8, 2],
            // missing resumed flag (v3-sized accept)
            &[TAG_SERVICE_ACCEPT, 1, 2, 3, 4, 5, 6, 7, 8],
            &[TAG_SERVICE_REJECT, 0xc3, 0x28], // reason not utf-8
            &[TAG_SERVICE_ATTACH, 1, 2, 3, 4, 5, 6, 7, 8], // missing shard byte
        ];
        for raw in cases {
            assert!(
                matches!(
                    Message::decode(raw),
                    Err(ProtoError::Malformed(_) | ProtoError::CorruptFrame { .. })
                ),
                "frame {raw:?} should be rejected"
            );
        }
    }

    #[test]
    fn corrupt_frames_name_their_tag() {
        assert!(matches!(
            Message::decode(&[TAG_HELLO, 1, 2]),
            Err(ProtoError::CorruptFrame {
                tag: TAG_HELLO,
                what: "hello frame size"
            })
        ));
        assert!(matches!(
            Message::decode(&[TAG_INSTANCES, 0, 0]),
            Err(ProtoError::CorruptFrame {
                tag: TAG_INSTANCES,
                what: "zero instance count"
            })
        ));
        assert!(matches!(
            Message::decode(&[99, 1, 2, 3]),
            Err(ProtoError::CorruptFrame {
                tag: 99,
                what: "unknown frame tag"
            })
        ));
        // An empty frame has no tag to attribute.
        assert!(matches!(
            Message::decode(&[]),
            Err(ProtoError::Malformed("empty frame"))
        ));
    }

    #[test]
    fn hello_rejects_bad_role_byte() {
        let mut raw = Message::Hello {
            version: 1,
            role: SessionRole::Garbler,
        }
        .encode();
        *raw.last_mut().expect("role byte") = 9;
        assert!(matches!(
            Message::decode(&raw),
            Err(ProtoError::CorruptFrame {
                tag: TAG_HELLO,
                what: "unknown session role"
            })
        ));
    }

    #[test]
    fn role_peer_flips() {
        assert_eq!(SessionRole::Garbler.peer(), SessionRole::Evaluator);
        assert_eq!(SessionRole::Evaluator.peer(), SessionRole::Garbler);
    }
}
