//! The typed, versioned wire protocol spoken between the two parties.
//!
//! Every frame a session puts on a [`arm2gc_comm::Channel`] is one
//! encoded [`Message`]. The outer length framing belongs to the channel;
//! this module defines the *payload* layout — a one-byte tag followed by
//! a tag-specific body, all integers little-endian:
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | `1` | [`Message::Hello`] | magic `u32`, version `u16`, role `u8` |
//! | `2` | [`Message::DirectLabels`] | 16-byte labels, back to back |
//! | `3` | [`Message::OtPayload`] | opaque OT sub-protocol bytes |
//! | `4` | [`Message::Tables`] | garbled-table bytes, back to back |
//! | `5` | [`Message::DecodeBits`] | bit count `u32`, packed bits |
//! | `6` | [`Message::Outputs`] | bit count `u32`, packed bits |
//! | `7` | [`Message::TableShard`] | shard id `u8`, garbled-table bytes |
//! | `8` | [`Message::Instances`] | instance count `u16` |
//!
//! Decoding is strict: unknown tags, truncated bodies, bad magic and
//! inconsistent lengths all yield [`ProtoError::Malformed`] — never a
//! panic.

use std::error::Error;
use std::fmt;

use arm2gc_comm::ChannelClosed;
use arm2gc_crypto::Label;
use arm2gc_ot::OtError;

use crate::bits::{pack_bits, unpack_bits};

/// Highest version spoken by this build; [`Message::Hello`] carries it.
/// Sessions negotiate the *lowest common* version with the peer and
/// reject only peers below [`MIN_PROTOCOL_VERSION`].
///
/// v2 added [`Message::Instances`] (cross-instance batched sessions);
/// single-instance sessions never send it, so v1 peers interoperate
/// unchanged.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest version this build still speaks. A peer advertising anything
/// `>= MIN_PROTOCOL_VERSION` is accepted; the session then runs at
/// `min(PROTOCOL_VERSION, peer_version)`.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Frame magic ("A2GC"), guarding against a non-ARM2GC peer.
pub const MAGIC: u32 = u32::from_le_bytes(*b"A2GC");

pub(crate) const TAG_HELLO: u8 = 1;
pub(crate) const TAG_DIRECT_LABELS: u8 = 2;
pub(crate) const TAG_OT_PAYLOAD: u8 = 3;
pub(crate) const TAG_TABLES: u8 = 4;
pub(crate) const TAG_DECODE_BITS: u8 = 5;
pub(crate) const TAG_OUTPUTS: u8 = 6;
pub(crate) const TAG_TABLE_SHARD: u8 = 7;
pub(crate) const TAG_INSTANCES: u8 = 8;

/// Which side of the protocol a session plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionRole {
    /// Alice: garbles and streams tables.
    Garbler,
    /// Bob: evaluates the streamed tables.
    Evaluator,
}

impl SessionRole {
    /// The opposite role.
    pub fn peer(self) -> Self {
        match self {
            SessionRole::Garbler => SessionRole::Evaluator,
            SessionRole::Evaluator => SessionRole::Garbler,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            SessionRole::Garbler => 0,
            SessionRole::Evaluator => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(SessionRole::Garbler),
            1 => Ok(SessionRole::Evaluator),
            _ => Err(ProtoError::Malformed("unknown session role")),
        }
    }
}

/// Failures of the typed protocol layer (and of the engines built on it).
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Channel(ChannelClosed),
    /// Oblivious-transfer failure.
    Ot(OtError),
    /// The peer sent something structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Channel(e) => write!(f, "protocol channel failure: {e}"),
            ProtoError::Ot(e) => write!(f, "protocol ot failure: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed protocol message: {m}"),
        }
    }
}

impl Error for ProtoError {}

impl From<ChannelClosed> for ProtoError {
    fn from(e: ChannelClosed) -> Self {
        ProtoError::Channel(e)
    }
}

impl From<OtError> for ProtoError {
    fn from(e: OtError) -> Self {
        ProtoError::Ot(e)
    }
}

/// One typed protocol frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Handshake: first frame each side sends.
    Hello {
        /// Protocol version (see [`PROTOCOL_VERSION`]).
        version: u16,
        /// The sender's role.
        role: SessionRole,
    },
    /// Input labels delivered directly (wires whose value Alice knows).
    DirectLabels(Vec<Label>),
    /// One message of an OT sub-protocol, tunnelled opaquely.
    OtPayload(Vec<u8>),
    /// A batch of garbled-table bytes from the streaming sink.
    Tables(Vec<u8>),
    /// Decode (colour) bits for the scheduled secret outputs.
    DecodeBits(Vec<bool>),
    /// Revealed output values, mirrored back by the evaluator.
    Outputs(Vec<bool>),
    /// A batch of garbled-table bytes belonging to one shard of a
    /// sharded table stream (see [`crate::shard::ShardConfig`]).
    TableShard {
        /// Which sub-stream this batch belongs to.
        shard: u8,
        /// Garbled-table bytes, back to back.
        tables: Vec<u8>,
    },
    /// Instance count of a cross-instance batched session, sent by the
    /// garbler right after the handshake — but only when the count is
    /// greater than one, so single-instance transcripts are unchanged.
    /// Requires protocol version ≥ 2.
    Instances(u16),
}

impl Message {
    /// Serialises the frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Hello { version, role } => {
                let mut out = Vec::with_capacity(8);
                out.push(TAG_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.push(role.to_byte());
                out
            }
            Message::DirectLabels(labels) => {
                let mut out = Vec::with_capacity(1 + labels.len() * 16);
                out.push(TAG_DIRECT_LABELS);
                for l in labels {
                    out.extend_from_slice(&l.to_bytes());
                }
                out
            }
            Message::OtPayload(bytes) => prefixed(TAG_OT_PAYLOAD, bytes),
            Message::Tables(bytes) => prefixed(TAG_TABLES, bytes),
            Message::DecodeBits(bits) => encode_bits(TAG_DECODE_BITS, bits),
            Message::Outputs(bits) => encode_bits(TAG_OUTPUTS, bits),
            Message::TableShard { shard, tables } => {
                let mut out = Vec::with_capacity(2 + tables.len());
                out.push(TAG_TABLE_SHARD);
                out.push(*shard);
                out.extend_from_slice(tables);
                out
            }
            Message::Instances(n) => {
                let mut out = Vec::with_capacity(3);
                out.push(TAG_INSTANCES);
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    /// [`ProtoError::Malformed`] on unknown tags, truncated bodies, bad
    /// magic or inconsistent lengths.
    pub fn decode(raw: &[u8]) -> Result<Message, ProtoError> {
        let (&tag, body) = raw
            .split_first()
            .ok_or(ProtoError::Malformed("empty frame"))?;
        match tag {
            TAG_HELLO => {
                if body.len() != 7 {
                    return Err(ProtoError::Malformed("hello frame size"));
                }
                let magic = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
                if magic != MAGIC {
                    return Err(ProtoError::Malformed("bad magic"));
                }
                let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
                let role = SessionRole::from_byte(body[6])?;
                Ok(Message::Hello { version, role })
            }
            TAG_DIRECT_LABELS => {
                if body.len() % 16 != 0 {
                    return Err(ProtoError::Malformed("direct labels not 16-byte aligned"));
                }
                Ok(Message::DirectLabels(
                    body.chunks_exact(16)
                        .map(|c| Label::from_bytes(c.try_into().expect("16 bytes")))
                        .collect(),
                ))
            }
            TAG_OT_PAYLOAD => Ok(Message::OtPayload(body.to_vec())),
            TAG_TABLES => Ok(Message::Tables(body.to_vec())),
            TAG_DECODE_BITS => Ok(Message::DecodeBits(decode_bits(body)?)),
            TAG_OUTPUTS => Ok(Message::Outputs(decode_bits(body)?)),
            TAG_TABLE_SHARD => {
                let (&shard, tables) = body
                    .split_first()
                    .ok_or(ProtoError::Malformed("table shard frame too short"))?;
                Ok(Message::TableShard {
                    shard,
                    tables: tables.to_vec(),
                })
            }
            TAG_INSTANCES => {
                if body.len() != 2 {
                    return Err(ProtoError::Malformed("instances frame size"));
                }
                let n = u16::from_le_bytes(body.try_into().expect("2 bytes"));
                if n == 0 {
                    return Err(ProtoError::Malformed("zero instance count"));
                }
                Ok(Message::Instances(n))
            }
            _ => Err(ProtoError::Malformed("unknown frame tag")),
        }
    }
}

pub(crate) fn prefixed(tag: u8, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + bytes.len());
    out.push(tag);
    out.extend_from_slice(bytes);
    out
}

fn encode_bits(tag: u8, bits: &[bool]) -> Vec<u8> {
    let packed = pack_bits(bits);
    let mut out = Vec::with_capacity(5 + packed.len());
    out.push(tag);
    out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
    out.extend_from_slice(&packed);
    out
}

fn decode_bits(body: &[u8]) -> Result<Vec<bool>, ProtoError> {
    if body.len() < 4 {
        return Err(ProtoError::Malformed("bit frame too short"));
    }
    let n = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let packed = &body[4..];
    if packed.len() != n.div_ceil(8) {
        return Err(ProtoError::Malformed("bit frame length mismatch"));
    }
    // Canonical encodings only: padding bits in the last byte are zero.
    if n % 8 != 0 {
        if let Some(&last) = packed.last() {
            if last >> (n % 8) != 0 {
                return Err(ProtoError::Malformed("nonzero bit-frame padding"));
            }
        }
    }
    Ok(unpack_bits(packed, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        assert_eq!(Message::decode(&msg.encode()).expect("decode"), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Hello {
            version: PROTOCOL_VERSION,
            role: SessionRole::Garbler,
        });
        roundtrip(Message::Hello {
            version: 7,
            role: SessionRole::Evaluator,
        });
        roundtrip(Message::DirectLabels(vec![]));
        roundtrip(Message::DirectLabels(
            (0..5).map(|i| Label::from_u128(i * 37)).collect(),
        ));
        roundtrip(Message::OtPayload(vec![]));
        roundtrip(Message::OtPayload((0..255).collect()));
        roundtrip(Message::Tables(vec![9u8; 96]));
        roundtrip(Message::DecodeBits(vec![]));
        roundtrip(Message::DecodeBits(vec![true, false, true]));
        roundtrip(Message::Outputs((0..29).map(|i| i % 4 == 1).collect()));
        roundtrip(Message::TableShard {
            shard: 0,
            tables: vec![],
        });
        roundtrip(Message::TableShard {
            shard: 3,
            tables: vec![7u8; 64],
        });
        roundtrip(Message::Instances(2));
        roundtrip(Message::Instances(u16::MAX));
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        let cases: &[&[u8]] = &[
            &[],                                     // empty
            &[99, 1, 2, 3],                          // unknown tag
            &[TAG_HELLO, 1, 2],                      // truncated hello
            &[TAG_HELLO, 0, 0, 0, 0, 1, 0, 0],       // bad magic
            &[TAG_DIRECT_LABELS, 1, 2, 3],           // not 16-byte aligned
            &[TAG_DECODE_BITS, 1],                   // too short for count
            &[TAG_DECODE_BITS, 9, 0, 0, 0, 0xff],    // says 9 bits, holds 8
            &[TAG_DECODE_BITS, 3, 0, 0, 0, 0xff],    // nonzero padding bits
            &[TAG_OUTPUTS, 1, 0, 0, 0, 0xff, 0xff],  // says 1 bit, holds 16
            &[TAG_OUTPUTS, 5, 0, 0, 0, 0b0010_0000], // padding bit set
            &[TAG_TABLE_SHARD],                      // missing shard id
            &[TAG_INSTANCES, 4],                     // truncated count
            &[TAG_INSTANCES, 4, 0, 0],               // oversized count
            &[TAG_INSTANCES, 0, 0],                  // zero instances
        ];
        for raw in cases {
            assert!(
                matches!(Message::decode(raw), Err(ProtoError::Malformed(_))),
                "frame {raw:?} should be rejected"
            );
        }
    }

    #[test]
    fn hello_rejects_bad_role_byte() {
        let mut raw = Message::Hello {
            version: 1,
            role: SessionRole::Garbler,
        }
        .encode();
        *raw.last_mut().expect("role byte") = 9;
        assert!(matches!(
            Message::decode(&raw),
            Err(ProtoError::Malformed("unknown session role"))
        ));
    }

    #[test]
    fn role_peer_flips() {
        assert_eq!(SessionRole::Garbler.peer(), SessionRole::Evaluator);
        assert_eq!(SessionRole::Evaluator.peer(), SessionRole::Garbler);
    }
}
