//! Garbler/evaluator session abstractions.
//!
//! A session owns one side of a protocol run: the framed channel, the
//! party's crypto context (PRG and free-XOR Δ on the garbler side), the
//! OT endpoint and the cost counters. Both engines (`arm2gc_garble`'s
//! conventional baseline and `arm2gc_core`'s SkipGate) are thin loops
//! over this shared layer, which provides:
//!
//! * the versioned [`Message::Hello`] handshake at establishment,
//! * input-label delivery — direct labels one way, OT (tunnelled through
//!   typed [`Message::OtPayload`] frames) the other,
//! * **pipelined table streaming**: the garbler pushes tables into a
//!   buffered sink that flushes in [`StreamConfig`]-sized chunks, while
//!   the evaluator *pulls* tables on demand, so garbling of cycle `t+1`
//!   overlaps evaluation of cycle `t` instead of rendezvousing once per
//!   cycle,
//! * **sharded parallel streaming** ([`ShardConfig`]): each cycle's
//!   tables are partitioned into contiguous ranges and each range rides
//!   its own sub-stream — a dedicated worker thread on the garbler side
//!   buffers, frames and sends it (overlapping serialisation and wire
//!   I/O with garbling, which itself stays in topological order because
//!   half-gate output labels are hash-derived and feed downstream
//!   gates), while the evaluator pulls from each sub-stream lazily and
//!   reassembles tables in gate order,
//! * the output-revelation exchange (decode colours vs. values).

use arm2gc_comm::{Channel, ChannelError};
use arm2gc_crypto::{Delta, Label, Prg};
use arm2gc_ot::{OtError, OtReceiver, OtSender};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::shard::{ShardConfig, ShardPlan};
use crate::wire::{
    Message, ProtoError, SessionRole, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, TAG_OT_PAYLOAD,
    TAG_TABLES, TAG_TABLE_SHARD,
};

/// How the garbler's table sink batches tables onto the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Flush whenever at least this many table bytes are buffered.
    /// `None` reproduces the legacy lockstep behaviour: one flush at
    /// every cycle boundary, regardless of size.
    pub chunk_bytes: Option<usize>,
}

impl StreamConfig {
    /// Legacy per-cycle flushing (one `Tables` frame per clock cycle).
    pub const fn lockstep() -> Self {
        Self { chunk_bytes: None }
    }

    /// Flush in chunks of at least `bytes` table bytes.
    pub const fn chunked(bytes: usize) -> Self {
        Self {
            chunk_bytes: Some(bytes),
        }
    }
}

impl Default for StreamConfig {
    /// 64 KiB chunks (2048 half-gate tables): large enough to amortise
    /// per-frame overhead, small enough that the evaluator starts while
    /// the garbler is still working.
    fn default() -> Self {
        Self::chunked(64 * 1024)
    }
}

/// Cost counters a session accumulates; engines fold these into their
/// public stats structs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Garbled tables pushed (garbler) or pulled (evaluator).
    pub garbled_tables: u64,
    /// Bytes of garbled tables, excluding framing.
    pub table_bytes: u64,
    /// 1-out-of-2 OTs executed for the evaluator's input bits.
    pub ots: u64,
}

/// Adapter that tunnels an OT sub-protocol's raw messages through typed
/// [`Message::OtPayload`] frames.
///
/// OT implementations keep speaking [`Channel`]; wrapping the session
/// channel in an `OtTunnel` makes every byte they exchange a well-formed
/// protocol frame. A frame arriving mid-OT that fails to decode (or
/// decodes to something other than `OtPayload`) is recorded and
/// surfaced verbatim — [`ProtoError::CorruptFrame`] for decode
/// failures, [`ProtoError::Malformed`] for wrong-frame-here — once the
/// OT call returns.
pub struct OtTunnel<'a> {
    ch: &'a mut dyn Channel,
    failure: Option<ProtoError>,
}

impl<'a> OtTunnel<'a> {
    /// Wraps a channel.
    pub fn new(ch: &'a mut dyn Channel) -> Self {
        Self { ch, failure: None }
    }

    /// Converts an OT result, preferring a recorded framing error (the
    /// OT layer only sees a closed channel when the tunnel rejects a
    /// frame, so the tunnel's diagnosis is the accurate one).
    pub fn finish<T>(self, res: Result<T, OtError>) -> Result<T, ProtoError> {
        match self.failure {
            Some(e) => Err(e),
            None => res.map_err(ProtoError::Ot),
        }
    }
}

impl Channel for OtTunnel<'_> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        // Frame in place (tag + body) — IKNP correction matrices run to
        // hundreds of KB, so avoid the Message round-trip's extra copy.
        self.ch.send(&crate::wire::prefixed(TAG_OT_PAYLOAD, data))
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        let raw = self.ch.recv()?;
        match Message::decode(&raw) {
            Ok(Message::OtPayload(p)) => Ok(p),
            Ok(_) => {
                self.failure = Some(ProtoError::Malformed("expected ot payload frame"));
                Err(ChannelError::Closed)
            }
            Err(e) => {
                self.failure = Some(e);
                Err(ChannelError::Closed)
            }
        }
    }
}

fn send_msg(ch: &mut dyn Channel, msg: &Message) -> Result<(), ProtoError> {
    ch.send(&msg.encode())?;
    Ok(())
}

fn recv_msg(ch: &mut dyn Channel) -> Result<Message, ProtoError> {
    Message::decode(&ch.recv()?)
}

/// Runs the versioned hello exchange. The garbler speaks first.
///
/// Each side advertises the highest version it speaks
/// ([`PROTOCOL_VERSION`]); the session then runs at the *lowest common*
/// version. Only a peer older than [`MIN_PROTOCOL_VERSION`] is rejected,
/// so mismatched-but-compatible builds interoperate.
fn handshake(ch: &mut dyn Channel, role: SessionRole) -> Result<u16, ProtoError> {
    let mine = Message::Hello {
        version: PROTOCOL_VERSION,
        role,
    };
    if role == SessionRole::Garbler {
        send_msg(ch, &mine)?;
    }
    let peer = recv_msg(ch)?;
    if role == SessionRole::Evaluator {
        send_msg(ch, &mine)?;
    }
    match peer {
        Message::Hello { version, .. } if version < MIN_PROTOCOL_VERSION => {
            Err(ProtoError::Malformed("incompatible protocol version"))
        }
        Message::Hello {
            role: peer_role, ..
        } if peer_role != role.peer() => Err(ProtoError::Malformed("peer claims the same role")),
        Message::Hello { version, .. } => Ok(version.min(PROTOCOL_VERSION)),
        _ => Err(ProtoError::Malformed("expected hello frame")),
    }
}

/// Commands the garbler's main thread feeds a shard worker.
enum ShardCmd {
    /// One garbled table's bytes, to buffer and eventually send.
    Bytes(Vec<u8>),
    /// Flush the buffer now (lockstep cycle boundary).
    Flush,
}

/// A per-shard sender thread plus its command queue. Dropping the
/// sender makes the worker flush its tail and exit.
struct ShardWorker {
    tx: Option<Sender<ShardCmd>>,
    handle: Option<std::thread::JoinHandle<Result<(), ChannelError>>>,
}

impl ShardWorker {
    /// Spawns the worker owning `ch`; it assembles `TableShard` frames
    /// for `shard`, flushing by `chunk` bytes (`None` = only on `Flush`
    /// commands and at shutdown).
    fn spawn(shard: u8, mut ch: Box<dyn Channel>, chunk: Option<usize>) -> Self {
        let (tx, rx): (Sender<ShardCmd>, Receiver<ShardCmd>) = unbounded();
        let handle = std::thread::spawn(move || {
            // Pre-framed `TableShard` message under construction.
            let mut buf = vec![TAG_TABLE_SHARD, shard];
            const HDR: usize = 2;
            let mut flush = |buf: &mut Vec<u8>| -> Result<(), ChannelError> {
                if buf.len() > HDR {
                    ch.send(buf)?;
                    buf.truncate(HDR);
                }
                Ok(())
            };
            loop {
                match rx.recv() {
                    Ok(ShardCmd::Bytes(b)) => {
                        buf.extend_from_slice(&b);
                        if chunk.is_some_and(|c| buf.len() - HDR > c) {
                            flush(&mut buf)?;
                        }
                    }
                    Ok(ShardCmd::Flush) => flush(&mut buf)?,
                    // Sender dropped: orderly shutdown, flush the tail.
                    Err(_) => return flush(&mut buf),
                }
            }
        });
        Self {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn push(&self, cmd: ShardCmd) -> Result<(), ProtoError> {
        self.tx
            .as_ref()
            .ok_or(ProtoError::Channel(ChannelError::Closed))?
            .send(cmd)
            .map_err(|_| ProtoError::Channel(ChannelError::Closed))
    }

    /// Signals shutdown (drops the queue) and joins, surfacing send
    /// failures the worker hit.
    fn finish(&mut self) -> Result<(), ProtoError> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(h) => match h.join() {
                Ok(res) => res.map_err(ProtoError::Channel),
                Err(_) => Err(ProtoError::Malformed("shard worker panicked")),
            },
            None => Ok(()),
        }
    }
}

/// The garbler's table transport: the legacy single inline stream, or
/// one worker per shard.
enum GarblerTables {
    /// Pre-framed `Tables` message under construction: `[TAG_TABLES]`
    /// followed by buffered table bytes, sent as-is on flush.
    Inline { buf: Vec<u8> },
    /// Sharded: per-shard worker threads plus the current cycle's
    /// partition and position. Because shard ranges are contiguous,
    /// tables for the current shard accumulate in `pending` and are
    /// handed to the worker in chunk-sized batches (or at a shard
    /// switch / cycle end), not one channel send per table.
    Sharded {
        workers: Vec<ShardWorker>,
        plan: ShardPlan,
        next_index: usize,
        current: usize,
        pending: Vec<u8>,
    },
}

/// Alice's side of a protocol run.
///
/// Owns the channel, the PRG, the global free-XOR offset Δ (drawn at
/// establishment), the OT sender and the table transport (buffered sink
/// or per-shard workers).
pub struct GarblerSession<'a> {
    ch: &'a mut dyn Channel,
    ot: &'a mut dyn OtSender,
    prg: &'a mut Prg,
    delta: Delta,
    version: u16,
    instances: u16,
    stream: StreamConfig,
    tables: GarblerTables,
    stats: SessionStats,
}

impl<'a> GarblerSession<'a> {
    /// Performs the versioned handshake and draws Δ.
    ///
    /// # Errors
    /// Channel failures, or a peer with the wrong version or role.
    pub fn establish(
        ch: &'a mut dyn Channel,
        ot: &'a mut dyn OtSender,
        prg: &'a mut Prg,
        stream: StreamConfig,
    ) -> Result<Self, ProtoError> {
        Self::establish_sharded(ch, Vec::new(), ot, prg, stream, ShardConfig::single())
    }

    /// [`GarblerSession::establish`] with a sharded table stream: each
    /// of the `shards.shards` sub-streams gets a dedicated channel from
    /// `shard_chs` and a worker thread that frames and sends its share
    /// of every cycle's tables.
    ///
    /// With `shards == 1` the transport is the legacy inline stream
    /// (byte-identical to an unsharded session) and `shard_chs` must be
    /// empty; engines must then still call
    /// [`GarblerSession::begin_cycle`], which is a no-op.
    ///
    /// # Errors
    /// Channel failures, a peer with an incompatible version or the
    /// wrong role, or a `shard_chs` count not matching `shards`.
    pub fn establish_sharded(
        ch: &'a mut dyn Channel,
        shard_chs: Vec<Box<dyn Channel>>,
        ot: &'a mut dyn OtSender,
        prg: &'a mut Prg,
        stream: StreamConfig,
        shards: ShardConfig,
    ) -> Result<Self, ProtoError> {
        Self::establish_instanced(ch, shard_chs, ot, prg, stream, shards, 1)
    }

    /// [`GarblerSession::establish_sharded`] for a cross-instance
    /// batched session garbling `instances` independent runs of the
    /// same circuit. When `instances > 1` the garbler announces the
    /// count in a [`Message::Instances`] frame right after the
    /// handshake (requiring protocol version ≥ 2); with `instances ==
    /// 1` no frame is sent and the wire bytes are identical to a plain
    /// sharded session.
    ///
    /// # Errors
    /// Everything [`GarblerSession::establish_sharded`] can fail with,
    /// plus a zero instance count or (when `instances > 1`) a peer
    /// whose negotiated version predates instanced sessions.
    pub fn establish_instanced(
        ch: &'a mut dyn Channel,
        shard_chs: Vec<Box<dyn Channel>>,
        ot: &'a mut dyn OtSender,
        prg: &'a mut Prg,
        stream: StreamConfig,
        shards: ShardConfig,
        instances: u16,
    ) -> Result<Self, ProtoError> {
        if instances == 0 {
            return Err(ProtoError::Malformed("zero instance count"));
        }
        let tables = garbler_tables(shard_chs, stream, shards)?;
        let version = handshake(ch, SessionRole::Garbler)?;
        if instances > 1 {
            if version < 2 {
                return Err(ProtoError::Malformed("instanced session needs protocol v2"));
            }
            send_msg(ch, &Message::Instances(instances))?;
        }
        let delta = Delta::random(prg);
        Ok(Self {
            ch,
            ot,
            prg,
            delta,
            version,
            instances,
            stream,
            tables,
            stats: SessionStats::default(),
        })
    }

    /// The session's global free-XOR offset.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// The protocol version negotiated at the handshake (the lowest
    /// common version of the two builds).
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// How many circuit instances this session batches (1 unless
    /// established via [`GarblerSession::establish_instanced`]).
    pub fn instances(&self) -> u16 {
        self.instances
    }

    /// Draws a fresh uniformly random wire label.
    pub fn fresh_label(&mut self) -> Label {
        Label::random(self.prg)
    }

    /// Delivers the direct (non-OT) input labels. Always sends a frame,
    /// even when empty — the evaluator always expects one.
    ///
    /// # Errors
    /// Channel failures.
    pub fn send_direct_labels(&mut self, labels: &[Label]) -> Result<(), ProtoError> {
        send_msg(self.ch, &Message::DirectLabels(labels.to_vec()))
    }

    /// Runs the OT batch for the evaluator's input bits (no-op when
    /// `pairs` is empty, matching the receiving side).
    ///
    /// # Errors
    /// Channel, OT and framing failures.
    pub fn ot_send(&mut self, pairs: &[(Label, Label)]) -> Result<(), ProtoError> {
        if !pairs.is_empty() {
            let mut tunnel = OtTunnel::new(&mut *self.ch);
            let res = self.ot.send(&mut tunnel, pairs);
            tunnel.finish(res)?;
        }
        self.stats.ots += pairs.len() as u64;
        Ok(())
    }

    /// Announces the number of tables the coming cycle will produce.
    ///
    /// In a sharded session this fixes the cycle's contiguous partition
    /// (both parties derive the same one from public knowledge); in an
    /// unsharded session it is a no-op. Engines call it once per clock
    /// cycle, before the first [`GarblerSession::push_table`].
    pub fn begin_cycle(&mut self, tables: usize) {
        if let GarblerTables::Sharded {
            workers,
            plan,
            next_index,
            current,
            ..
        } = &mut self.tables
        {
            *plan = ShardPlan::new(tables, workers.len());
            *next_index = 0;
            *current = 0;
        }
    }

    /// Buffers one garbled table, flushing when the configured chunk
    /// size is reached. In a sharded session the table is handed to the
    /// worker owning the current gate range instead.
    ///
    /// # Errors
    /// Channel failures on flush, or (sharded) a push beyond the count
    /// announced via [`GarblerSession::begin_cycle`].
    pub fn push_table(&mut self, table: &[u8]) -> Result<(), ProtoError> {
        self.stats.garbled_tables += 1;
        self.stats.table_bytes += table.len() as u64;
        match &mut self.tables {
            GarblerTables::Inline { buf } => {
                buf.extend_from_slice(table);
                if self
                    .stream
                    .chunk_bytes
                    .is_some_and(|chunk| buf.len() > chunk)
                {
                    flush_inline(self.ch, buf)?;
                }
                Ok(())
            }
            GarblerTables::Sharded {
                workers,
                plan,
                next_index,
                current,
                pending,
            } => {
                if *next_index >= plan.tables() {
                    return Err(ProtoError::Malformed(
                        "table outside the cycle's shard plan",
                    ));
                }
                let shard = plan.shard_of(*next_index, *current);
                if shard != *current && !pending.is_empty() {
                    workers[*current].push(ShardCmd::Bytes(std::mem::take(pending)))?;
                }
                *current = shard;
                *next_index += 1;
                pending.extend_from_slice(table);
                if self
                    .stream
                    .chunk_bytes
                    .is_some_and(|chunk| pending.len() > chunk)
                {
                    workers[*current].push(ShardCmd::Bytes(std::mem::take(pending)))?;
                }
                Ok(())
            }
        }
    }

    /// Marks a clock-cycle boundary; in lockstep mode this flushes the
    /// cycle's tables (on every shard). A sharded session also hands
    /// the current shard's locally batched tables to its worker here,
    /// so `pending` never spans a cycle boundary.
    ///
    /// # Errors
    /// Channel failures on flush.
    pub fn end_cycle(&mut self) -> Result<(), ProtoError> {
        let lockstep = self.stream.chunk_bytes.is_none();
        match &mut self.tables {
            GarblerTables::Inline { buf } => {
                if lockstep {
                    flush_inline(self.ch, buf)?;
                }
            }
            GarblerTables::Sharded {
                workers,
                current,
                pending,
                ..
            } => {
                if !pending.is_empty() {
                    workers[*current].push(ShardCmd::Bytes(std::mem::take(pending)))?;
                }
                if lockstep {
                    for w in workers {
                        w.push(ShardCmd::Flush)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Flushes whatever table transport is active; sharded workers are
    /// shut down and joined (they flush their tails on the way out).
    fn finish_table_stream(&mut self) -> Result<(), ProtoError> {
        match &mut self.tables {
            GarblerTables::Inline { buf } => flush_inline(self.ch, buf),
            GarblerTables::Sharded {
                workers,
                current,
                pending,
                ..
            } => {
                let mut res = if pending.is_empty() {
                    Ok(())
                } else {
                    workers[*current].push(ShardCmd::Bytes(std::mem::take(pending)))
                };
                for w in workers {
                    let r = w.finish();
                    if res.is_ok() {
                        res = r;
                    }
                }
                res
            }
        }
    }

    /// Sends the decode (colour) bits, receives the evaluator's revealed
    /// values. Flushes any still-buffered tables first (joining shard
    /// workers), so this can never deadlock against an evaluator still
    /// pulling tables.
    ///
    /// # Errors
    /// Channel failures, or an `Outputs` frame of the wrong length.
    pub fn reveal_outputs(&mut self, decode_bits: &[bool]) -> Result<Vec<bool>, ProtoError> {
        self.finish_table_stream()?;
        send_msg(self.ch, &Message::DecodeBits(decode_bits.to_vec()))?;
        match recv_msg(self.ch)? {
            Message::Outputs(values) if values.len() == decode_bits.len() => Ok(values),
            Message::Outputs(_) => Err(ProtoError::Malformed("output bit count")),
            _ => Err(ProtoError::Malformed("expected outputs frame")),
        }
    }

    /// The accumulated cost counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

/// Builds the garbler's table transport, validating the shard setup.
fn garbler_tables(
    shard_chs: Vec<Box<dyn Channel>>,
    stream: StreamConfig,
    shards: ShardConfig,
) -> Result<GarblerTables, ProtoError> {
    validate_shards(shards, shard_chs.len())?;
    if !shards.is_sharded() {
        return Ok(GarblerTables::Inline {
            buf: vec![TAG_TABLES],
        });
    }
    let workers = shard_chs
        .into_iter()
        .enumerate()
        .map(|(k, ch)| ShardWorker::spawn(k as u8, ch, stream.chunk_bytes))
        .collect();
    Ok(GarblerTables::Sharded {
        workers,
        plan: ShardPlan::new(0, shards.shards),
        next_index: 0,
        current: 0,
        pending: Vec::new(),
    })
}

/// A sharded session needs exactly one dedicated channel per shard; an
/// unsharded one rides the main channel and must not be handed any.
fn validate_shards(shards: ShardConfig, channels: usize) -> Result<(), ProtoError> {
    if shards.shards == 0 || shards.shards > ShardConfig::MAX_SHARDS {
        return Err(ProtoError::Malformed("shard count out of range"));
    }
    let expected = if shards.is_sharded() {
        shards.shards
    } else {
        0
    };
    if channels != expected {
        return Err(ProtoError::Malformed("shard channel count mismatch"));
    }
    Ok(())
}

/// Sends a pre-framed `Tables` buffer and resets it to just the tag.
fn flush_inline(ch: &mut dyn Channel, buf: &mut Vec<u8>) -> Result<(), ProtoError> {
    if buf.len() > 1 {
        ch.send(buf)?;
        buf.truncate(1);
    }
    Ok(())
}

impl std::fmt::Debug for GarblerSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shards = match &self.tables {
            GarblerTables::Inline { .. } => 1,
            GarblerTables::Sharded { workers, .. } => workers.len(),
        };
        f.debug_struct("GarblerSession")
            .field("stream", &self.stream)
            .field("shards", &shards)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// One shard's pull-based sub-stream on the evaluator side: its own
/// channel, expected shard id and reassembly buffer.
struct ShardSource {
    ch: Box<dyn Channel>,
    shard: u8,
    buf: Vec<u8>,
    pos: usize,
}

impl ShardSource {
    fn drained(&self) -> bool {
        self.buf.len() == self.pos
    }
}

/// The shared pull loop of every table sub-stream: tops `buf` up to
/// `len` unconsumed bytes, receiving frames from `ch` as needed and
/// compacting the consumed prefix first. `shard` selects the frame
/// layout: `None` accepts legacy `Tables` frames, `Some(id)` accepts
/// `TableShard` frames for exactly that shard. Frame bodies are
/// appended straight into the buffer instead of materialising a
/// [`Message`] copy (hot path), and validated to hold a whole number
/// of `align`-byte tables (0 disables the check).
fn pull_tables(
    ch: &mut dyn Channel,
    buf: &mut Vec<u8>,
    pos: &mut usize,
    len: usize,
    align: usize,
    shard: Option<u8>,
) -> Result<(), ProtoError> {
    while buf.len() - *pos < len {
        if *pos > 0 {
            buf.drain(..*pos);
            *pos = 0;
        }
        let raw = ch.recv()?;
        let tables = match (shard, raw.split_first()) {
            (None, Some((&TAG_TABLES, body))) => body,
            (Some(want), Some((&TAG_TABLE_SHARD, body))) => {
                let (&got, tables) = body
                    .split_first()
                    .ok_or(ProtoError::Malformed("table shard frame too short"))?;
                if got != want {
                    return Err(ProtoError::Malformed("table shard id mismatch"));
                }
                tables
            }
            (None, _) => return Err(ProtoError::Malformed("expected tables frame")),
            (Some(_), _) => return Err(ProtoError::Malformed("expected table shard frame")),
        };
        if align != 0 && tables.len() % align != 0 {
            return Err(ProtoError::Malformed("table stream"));
        }
        buf.extend_from_slice(tables);
    }
    Ok(())
}

/// The evaluator's table transport: the legacy single inline stream, or
/// one pull source per shard.
enum EvaluatorTables {
    Inline {
        buf: Vec<u8>,
        pos: usize,
    },
    Sharded {
        subs: Vec<ShardSource>,
        plan: ShardPlan,
        next_index: usize,
        current: usize,
    },
}

/// Bob's side of a protocol run.
///
/// Owns the channel, the OT receiver and a pull-based table source fed
/// by the garbler's chunked `Tables` frames (or, sharded, one source
/// per `TableShard` sub-stream, reassembled in gate order).
pub struct EvaluatorSession<'a> {
    ch: &'a mut dyn Channel,
    ot: &'a mut dyn OtReceiver,
    /// Every received table frame must be a multiple of this (the
    /// engine's table size); 0 disables the check.
    table_align: usize,
    version: u16,
    instances: u16,
    tables: EvaluatorTables,
    stats: SessionStats,
}

impl<'a> EvaluatorSession<'a> {
    /// Performs the versioned handshake.
    ///
    /// `table_align` is the engine's garbled-table byte size; incoming
    /// table frames are validated against it.
    ///
    /// # Errors
    /// Channel failures, or a peer with an incompatible version or the
    /// wrong role.
    pub fn establish(
        ch: &'a mut dyn Channel,
        ot: &'a mut dyn OtReceiver,
        table_align: usize,
    ) -> Result<Self, ProtoError> {
        Self::establish_sharded(ch, Vec::new(), ot, table_align, ShardConfig::single())
    }

    /// [`EvaluatorSession::establish`] with a sharded table stream; the
    /// mirror of [`GarblerSession::establish_sharded`]. Tables are
    /// pulled lazily from each shard's channel and reassembled in gate
    /// order using the partition both parties derive per cycle.
    ///
    /// # Errors
    /// Channel failures, a peer with an incompatible version or the
    /// wrong role, or a `shard_chs` count not matching `shards`.
    pub fn establish_sharded(
        ch: &'a mut dyn Channel,
        shard_chs: Vec<Box<dyn Channel>>,
        ot: &'a mut dyn OtReceiver,
        table_align: usize,
        shards: ShardConfig,
    ) -> Result<Self, ProtoError> {
        Self::establish_instanced(ch, shard_chs, ot, table_align, shards, 1)
    }

    /// [`EvaluatorSession::establish_sharded`] for a cross-instance
    /// batched session; the mirror of
    /// [`GarblerSession::establish_instanced`]. Both parties configure
    /// the instance count out of band (like the shard count); when it
    /// is greater than one the garbler's [`Message::Instances`]
    /// announcement is received and checked against it.
    ///
    /// # Errors
    /// Everything [`EvaluatorSession::establish_sharded`] can fail
    /// with, plus a zero instance count, a peer whose negotiated
    /// version predates instanced sessions, or an announcement not
    /// matching the configured count.
    pub fn establish_instanced(
        ch: &'a mut dyn Channel,
        shard_chs: Vec<Box<dyn Channel>>,
        ot: &'a mut dyn OtReceiver,
        table_align: usize,
        shards: ShardConfig,
        instances: u16,
    ) -> Result<Self, ProtoError> {
        if instances == 0 {
            return Err(ProtoError::Malformed("zero instance count"));
        }
        validate_shards(shards, shard_chs.len())?;
        let tables = if shards.is_sharded() {
            EvaluatorTables::Sharded {
                subs: shard_chs
                    .into_iter()
                    .enumerate()
                    .map(|(k, ch)| ShardSource {
                        ch,
                        shard: k as u8,
                        buf: Vec::new(),
                        pos: 0,
                    })
                    .collect(),
                plan: ShardPlan::new(0, shards.shards),
                next_index: 0,
                current: 0,
            }
        } else {
            EvaluatorTables::Inline {
                buf: Vec::new(),
                pos: 0,
            }
        };
        let version = handshake(ch, SessionRole::Evaluator)?;
        if instances > 1 {
            if version < 2 {
                return Err(ProtoError::Malformed("instanced session needs protocol v2"));
            }
            match recv_msg(ch)? {
                Message::Instances(n) if n == instances => {}
                Message::Instances(_) => {
                    return Err(ProtoError::Malformed("instance count mismatch"))
                }
                _ => return Err(ProtoError::Malformed("expected instances frame")),
            }
        }
        Ok(Self {
            ch,
            ot,
            table_align,
            version,
            instances,
            tables,
            stats: SessionStats::default(),
        })
    }

    /// The protocol version negotiated at the handshake (the lowest
    /// common version of the two builds).
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// How many circuit instances this session batches (1 unless
    /// established via [`EvaluatorSession::establish_instanced`]).
    pub fn instances(&self) -> u16 {
        self.instances
    }

    /// Announces the number of tables the coming cycle will consume;
    /// the mirror of [`GarblerSession::begin_cycle`]. No-op unsharded.
    pub fn begin_cycle(&mut self, tables: usize) {
        if let EvaluatorTables::Sharded {
            subs,
            plan,
            next_index,
            current,
        } = &mut self.tables
        {
            *plan = ShardPlan::new(tables, subs.len());
            *next_index = 0;
            *current = 0;
        }
    }

    /// Receives the direct input labels.
    ///
    /// # Errors
    /// Channel failures or a non-`DirectLabels` frame.
    pub fn recv_direct_labels(&mut self) -> Result<Vec<Label>, ProtoError> {
        match recv_msg(self.ch)? {
            Message::DirectLabels(labels) => Ok(labels),
            _ => Err(ProtoError::Malformed("expected direct labels frame")),
        }
    }

    /// Runs the OT batch for this party's choice bits (no-op when
    /// `choices` is empty, matching the sending side).
    ///
    /// # Errors
    /// Channel, OT and framing failures.
    pub fn ot_receive(&mut self, choices: &[bool]) -> Result<Vec<Label>, ProtoError> {
        let labels = if choices.is_empty() {
            Vec::new()
        } else {
            let mut tunnel = OtTunnel::new(&mut *self.ch);
            let res = self.ot.receive(&mut tunnel, choices);
            tunnel.finish(res)?
        };
        self.stats.ots += choices.len() as u64;
        Ok(labels)
    }

    /// Pulls the next `len` bytes of garbled table from the stream,
    /// receiving further table frames as needed. In a sharded session
    /// the pull is routed to the sub-stream carrying the current gate
    /// range.
    ///
    /// # Errors
    /// Channel failures, an unexpected frame, a frame that is not a
    /// whole number of tables, or (sharded) a pull beyond the count
    /// announced via [`EvaluatorSession::begin_cycle`].
    pub fn next_table(&mut self, len: usize) -> Result<&[u8], ProtoError> {
        self.stats.garbled_tables += 1;
        self.stats.table_bytes += len as u64;
        // Route to the buffer/channel/frame-layout of the active
        // sub-stream; the pull loop itself ([`pull_tables`]) is shared.
        let align = self.table_align;
        match &mut self.tables {
            EvaluatorTables::Inline { buf, pos } => {
                pull_tables(&mut *self.ch, buf, pos, len, align, None)?;
                let start = *pos;
                *pos += len;
                Ok(&buf[start..start + len])
            }
            EvaluatorTables::Sharded {
                subs,
                plan,
                next_index,
                current,
            } => {
                if *next_index >= plan.tables() {
                    return Err(ProtoError::Malformed(
                        "table pull outside the cycle's shard plan",
                    ));
                }
                *current = plan.shard_of(*next_index, *current);
                *next_index += 1;
                let sub = &mut subs[*current];
                pull_tables(
                    &mut *sub.ch,
                    &mut sub.buf,
                    &mut sub.pos,
                    len,
                    align,
                    Some(sub.shard),
                )?;
                let start = sub.pos;
                sub.pos += len;
                Ok(&sub.buf[start..start + len])
            }
        }
    }

    /// Asserts the table stream (every sub-stream, if sharded) was fully
    /// consumed.
    ///
    /// # Errors
    /// [`ProtoError::Malformed`] when buffered table bytes remain.
    pub fn finish_tables(&self) -> Result<(), ProtoError> {
        let drained = match &self.tables {
            EvaluatorTables::Inline { buf, pos } => buf.len() == *pos,
            EvaluatorTables::Sharded { subs, .. } => subs.iter().all(ShardSource::drained),
        };
        if !drained {
            return Err(ProtoError::Malformed("extra tables"));
        }
        Ok(())
    }

    /// Receives the decode bits, XORs them against this party's output
    /// colours, sends the revealed values back, and returns them.
    ///
    /// # Errors
    /// Channel failures, leftover tables, or a `DecodeBits` frame of the
    /// wrong length.
    pub fn reveal_outputs(&mut self, colours: &[bool]) -> Result<Vec<bool>, ProtoError> {
        self.finish_tables()?;
        let decode = match recv_msg(self.ch)? {
            Message::DecodeBits(bits) => bits,
            _ => return Err(ProtoError::Malformed("expected decode bits frame")),
        };
        if decode.len() != colours.len() {
            return Err(ProtoError::Malformed("decode bit count"));
        }
        let values: Vec<bool> = colours.iter().zip(&decode).map(|(&c, &z)| c ^ z).collect();
        send_msg(self.ch, &Message::Outputs(values.clone()))?;
        Ok(values)
    }

    /// The accumulated cost counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

impl std::fmt::Debug for EvaluatorSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shards = match &self.tables {
            EvaluatorTables::Inline { .. } => 1,
            EvaluatorTables::Sharded { subs, .. } => subs.len(),
        };
        f.debug_struct("EvaluatorSession")
            .field("table_align", &self.table_align)
            .field("shards", &shards)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;
    use arm2gc_ot::InsecureOt;

    fn pair_up<F, G, R, S>(garbler: F, evaluator: G) -> (R, S)
    where
        F: FnOnce(&mut dyn Channel) -> R + Send,
        G: FnOnce(&mut dyn Channel) -> S,
        R: Send,
    {
        let (mut ca, mut cb) = duplex();
        std::thread::scope(|s| {
            let g = s.spawn(move || garbler(&mut ca));
            let e = evaluator(&mut cb);
            (g.join().expect("garbler thread"), e)
        })
    }

    #[test]
    fn handshake_and_streaming_roundtrip() {
        let chunk = StreamConfig::chunked(64);
        let (sent, got) = pair_up(
            |ch| {
                let mut ot = InsecureOt;
                let mut prg = Prg::from_seed([1; 16]);
                let mut s = GarblerSession::establish(ch, &mut ot, &mut prg, chunk).expect("g");
                let mut sent = Vec::new();
                for cycle in 0..10u8 {
                    for t in 0..3u8 {
                        let table = [cycle * 16 + t; 32];
                        s.push_table(&table).expect("push");
                        sent.push(table.to_vec());
                    }
                    s.end_cycle().expect("end");
                }
                let values = s.reveal_outputs(&[true, false, true]).expect("reveal");
                assert_eq!(s.stats().garbled_tables, 30);
                assert_eq!(s.stats().table_bytes, 960);
                (sent, values)
            },
            |ch| {
                let mut ot = InsecureOt;
                let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                let mut got = Vec::new();
                for _ in 0..30 {
                    got.push(s.next_table(32).expect("pull").to_vec());
                }
                let values = s.reveal_outputs(&[false, false, false]).expect("reveal");
                (got, values)
            },
        );
        assert_eq!(sent.0, got.0);
        // Evaluator's colours were all-false, so values == decode bits.
        assert_eq!(sent.1, vec![true, false, true]);
        assert_eq!(got.1, vec![true, false, true]);
    }

    #[test]
    fn lockstep_flushes_per_cycle_and_chunked_batches() {
        for (cfg, expect_table_frames) in [
            (StreamConfig::lockstep(), 4u64),    // one frame per non-empty cycle
            (StreamConfig::chunked(1 << 20), 1), // everything in the final flush
        ] {
            let (frames, ()) = pair_up(
                move |ch| {
                    let (counted, stats) = arm2gc_comm::CountingChannel::new(&mut *ch);
                    let mut counted = counted;
                    let mut ot = InsecureOt;
                    let mut prg = Prg::from_seed([2; 16]);
                    let mut s =
                        GarblerSession::establish(&mut counted, &mut ot, &mut prg, cfg).expect("g");
                    for _ in 0..4 {
                        s.push_table(&[7u8; 32]).expect("push");
                        s.end_cycle().expect("end");
                    }
                    s.reveal_outputs(&[]).expect("reveal");
                    // hello + table frames + decode bits.
                    stats.sent_msgs() - 2
                },
                |ch| {
                    let mut ot = InsecureOt;
                    let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                    for _ in 0..4 {
                        s.next_table(32).expect("pull");
                    }
                    s.reveal_outputs(&[]).expect("reveal");
                },
            );
            assert_eq!(frames, expect_table_frames);
        }
    }

    #[test]
    fn ot_roundtrip_is_tunnelled() {
        let mut prg = Prg::from_seed([3; 16]);
        let pairs: Vec<(Label, Label)> = (0..40)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..40).map(|i| i % 3 == 1).collect();
        let expected: Vec<Label> = pairs
            .iter()
            .zip(&choices)
            .map(|(p, &c)| if c { p.1 } else { p.0 })
            .collect();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();
        let (g_ots, labels) = pair_up(
            move |ch| {
                let mut ot = InsecureOt;
                let mut prg = Prg::from_seed([4; 16]);
                let mut s =
                    GarblerSession::establish(ch, &mut ot, &mut prg, StreamConfig::default())
                        .expect("g");
                s.ot_send(&pairs2).expect("ot send");
                s.ot_send(&[]).expect("empty ot is a no-op");
                s.reveal_outputs(&[]).expect("reveal");
                s.stats().ots
            },
            move |ch| {
                let mut ot = InsecureOt;
                let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                let labels = s.ot_receive(&choices2).expect("ot receive");
                assert!(s.ot_receive(&[]).expect("empty").is_empty());
                s.reveal_outputs(&[]).expect("reveal");
                assert_eq!(s.stats().ots, 40);
                labels
            },
        );
        assert_eq!(g_ots, 40);
        assert_eq!(labels, expected);
    }

    #[test]
    fn newer_peer_negotiates_down_to_lowest_common() {
        let (mut ca, mut cb) = duplex();
        // A fake peer speaking a future version: compatible, and the
        // session must run at *our* (the lower) version.
        ca.send(
            &Message::Hello {
                version: PROTOCOL_VERSION + 3,
                role: SessionRole::Garbler,
            }
            .encode(),
        )
        .expect("send");
        let mut ot = InsecureOt;
        let sess = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect("compatible peer");
        assert_eq!(sess.negotiated_version(), PROTOCOL_VERSION);
        // The evaluator still advertised its own (highest) version.
        match Message::decode(&ca.recv().expect("peer hello")).expect("decode") {
            Message::Hello { version, role } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(role, SessionRole::Evaluator);
            }
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn incompatible_version_is_rejected() {
        let (mut ca, mut cb) = duplex();
        // A fake peer below the minimum supported version.
        ca.send(
            &Message::Hello {
                version: MIN_PROTOCOL_VERSION - 1,
                role: SessionRole::Garbler,
            }
            .encode(),
        )
        .expect("send");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("incompatible protocol version")
        ));
    }

    #[test]
    fn instanced_establishment_announces_and_validates_count() {
        let (mut ca, mut cb) = duplex();
        std::thread::scope(|s| {
            let g = s.spawn(move || {
                let mut ot = InsecureOt;
                let mut prg = Prg::from_seed([5; 16]);
                let sess = GarblerSession::establish_instanced(
                    &mut ca,
                    Vec::new(),
                    &mut ot,
                    &mut prg,
                    StreamConfig::default(),
                    ShardConfig::single(),
                    4,
                )
                .expect("garbler");
                assert_eq!(sess.instances(), 4);
            });
            let mut ot = InsecureOt;
            let sess = EvaluatorSession::establish_instanced(
                &mut cb,
                Vec::new(),
                &mut ot,
                32,
                ShardConfig::single(),
                4,
            )
            .expect("evaluator");
            assert_eq!(sess.instances(), 4);
            g.join().expect("garbler thread");
        });
    }

    #[test]
    fn instance_count_mismatch_is_rejected() {
        let (mut ca, mut cb) = duplex();
        ca.send(
            &Message::Hello {
                version: PROTOCOL_VERSION,
                role: SessionRole::Garbler,
            }
            .encode(),
        )
        .expect("hello");
        ca.send(&Message::Instances(3).encode()).expect("instances");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish_instanced(
            &mut cb,
            Vec::new(),
            &mut ot,
            32,
            ShardConfig::single(),
            4,
        )
        .expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("instance count mismatch")
        ));
    }

    #[test]
    fn instanced_session_rejects_v1_peer() {
        let (mut ca, mut cb) = duplex();
        // A v1 peer predates the Instances frame entirely.
        ca.send(
            &Message::Hello {
                version: 1,
                role: SessionRole::Garbler,
            }
            .encode(),
        )
        .expect("hello");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish_instanced(
            &mut cb,
            Vec::new(),
            &mut ot,
            32,
            ShardConfig::single(),
            2,
        )
        .expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("instanced session needs protocol v2")
        ));
    }

    #[test]
    fn zero_instances_is_rejected() {
        let (mut ca, _cb) = duplex();
        let mut ot = InsecureOt;
        let mut prg = Prg::from_seed([6; 16]);
        let err = GarblerSession::establish_instanced(
            &mut ca,
            Vec::new(),
            &mut ot,
            &mut prg,
            StreamConfig::default(),
            ShardConfig::single(),
            0,
        )
        .expect_err("must reject");
        assert!(matches!(err, ProtoError::Malformed("zero instance count")));
    }

    #[test]
    fn same_role_is_rejected() {
        let (mut ca, mut cb) = duplex();
        ca.send(
            &Message::Hello {
                version: PROTOCOL_VERSION,
                role: SessionRole::Evaluator,
            }
            .encode(),
        )
        .expect("send");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("peer claims the same role")
        ));
    }

    /// A scripted pair of connected shard-channel vectors.
    #[allow(clippy::type_complexity)]
    fn shard_duplexes(n: usize) -> (Vec<Box<dyn Channel>>, Vec<Box<dyn Channel>>) {
        let mut g: Vec<Box<dyn Channel>> = Vec::new();
        let mut e: Vec<Box<dyn Channel>> = Vec::new();
        for _ in 0..n {
            let (x, y) = duplex();
            g.push(Box::new(x));
            e.push(Box::new(y));
        }
        (g, e)
    }

    #[test]
    fn sharded_streaming_reassembles_in_gate_order() {
        // Cycles with zero tables, fewer tables than shards, and more:
        // every partition shape the plan can produce.
        const COUNTS: [usize; 6] = [5, 0, 1, 2, 7, 3];
        for cfg in [StreamConfig::lockstep(), StreamConfig::chunked(48)] {
            let shards = 3;
            let (mut ca, mut cb) = duplex();
            let (g_shards, e_shards) = shard_duplexes(shards);
            std::thread::scope(|s| {
                let g = s.spawn(move || {
                    let mut ot = InsecureOt;
                    let mut prg = Prg::from_seed([9; 16]);
                    let mut sess = GarblerSession::establish_sharded(
                        &mut ca,
                        g_shards,
                        &mut ot,
                        &mut prg,
                        cfg,
                        ShardConfig::new(shards),
                    )
                    .expect("garbler");
                    let mut sent = Vec::new();
                    let mut v = 0u8;
                    for &n in &COUNTS {
                        sess.begin_cycle(n);
                        for _ in 0..n {
                            v = v.wrapping_add(1);
                            let table = [v; 32];
                            sess.push_table(&table).expect("push");
                            sent.push(table.to_vec());
                        }
                        sess.end_cycle().expect("end");
                    }
                    sess.reveal_outputs(&[]).expect("reveal");
                    (sent, sess.stats())
                });
                let mut ot = InsecureOt;
                let mut sess = EvaluatorSession::establish_sharded(
                    &mut cb,
                    e_shards,
                    &mut ot,
                    32,
                    ShardConfig::new(shards),
                )
                .expect("evaluator");
                let mut got = Vec::new();
                for &n in &COUNTS {
                    sess.begin_cycle(n);
                    for _ in 0..n {
                        got.push(sess.next_table(32).expect("pull").to_vec());
                    }
                }
                sess.reveal_outputs(&[]).expect("reveal");
                let (sent, g_stats) = g.join().expect("garbler thread");
                assert_eq!(sent, got, "tables reassembled out of order");
                assert_eq!(g_stats, sess.stats());
            });
        }
    }

    /// Channel wrapper recording every frame the garbler sends.
    struct Recording<'a> {
        inner: &'a mut dyn Channel,
        sent: Vec<Vec<u8>>,
    }

    impl Channel for Recording<'_> {
        fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
            self.sent.push(data.to_vec());
            self.inner.send(data)
        }

        fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
            self.inner.recv()
        }
    }

    #[test]
    fn single_shard_stream_is_byte_identical_to_legacy() {
        // The exact frame sequences the pre-sharding implementation put
        // on the wire for 2 cycles × 3 32-byte tables, pinned as bytes.
        let table = |i: u8| [i; 32];
        let frame = |ts: &[u8]| {
            let mut f = vec![TAG_TABLES];
            for &i in ts {
                f.extend_from_slice(&table(i));
            }
            f
        };
        for (cfg, table_frames) in [
            // Lockstep: one frame per cycle.
            (
                StreamConfig::lockstep(),
                vec![frame(&[1, 2, 3]), frame(&[4, 5, 6])],
            ),
            // 64-byte chunks: flush whenever the buffer exceeds 64 bytes,
            // irrespective of cycle boundaries.
            (
                StreamConfig::chunked(64),
                vec![frame(&[1, 2]), frame(&[3, 4]), frame(&[5, 6])],
            ),
        ] {
            let (frames, ()) = pair_up(
                move |ch| {
                    let mut rec = Recording {
                        inner: ch,
                        sent: Vec::new(),
                    };
                    let mut ot = InsecureOt;
                    let mut prg = Prg::from_seed([3; 16]);
                    let mut sess = GarblerSession::establish(&mut rec, &mut ot, &mut prg, cfg)
                        .expect("garbler");
                    for cycle in 0..2u8 {
                        sess.begin_cycle(3);
                        for t in 0..3u8 {
                            sess.push_table(&table(cycle * 3 + t + 1)).expect("push");
                        }
                        sess.end_cycle().expect("end");
                    }
                    sess.reveal_outputs(&[]).expect("reveal");
                    rec.sent
                },
                |ch| {
                    let mut ot = InsecureOt;
                    let mut sess = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                    for _ in 0..6 {
                        sess.next_table(32).expect("pull");
                    }
                    sess.reveal_outputs(&[]).expect("reveal");
                },
            );
            let mut expected = vec![Message::Hello {
                version: PROTOCOL_VERSION,
                role: SessionRole::Garbler,
            }
            .encode()];
            expected.extend(table_frames);
            expected.push(Message::DecodeBits(vec![]).encode());
            assert_eq!(frames, expected, "shards=1 wire bytes changed");
        }
    }

    #[test]
    fn shard_channel_count_mismatch_is_rejected() {
        let (mut ca, _cb) = duplex();
        let (g_shards, _e_shards) = shard_duplexes(1);
        let mut ot = InsecureOt;
        let mut prg = Prg::from_seed([1; 16]);
        let err = GarblerSession::establish_sharded(
            &mut ca,
            g_shards,
            &mut ot,
            &mut prg,
            StreamConfig::default(),
            ShardConfig::new(2),
        )
        .expect_err("one channel for two shards");
        assert!(matches!(
            err,
            ProtoError::Malformed("shard channel count mismatch")
        ));

        let (mut cb, _ca) = duplex();
        let (e_shards, _g_shards) = shard_duplexes(2);
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish_sharded(
            &mut cb,
            e_shards,
            &mut ot,
            32,
            ShardConfig::single(),
        )
        .expect_err("channels for an unsharded session");
        assert!(matches!(
            err,
            ProtoError::Malformed("shard channel count mismatch")
        ));
    }

    #[test]
    fn misrouted_shard_frame_is_rejected() {
        let (mut ca, mut cb) = duplex();
        let (mut g_shards, e_shards) = shard_duplexes(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                ca.send(
                    &Message::Hello {
                        version: PROTOCOL_VERSION,
                        role: SessionRole::Garbler,
                    }
                    .encode(),
                )
                .expect("hello");
                ca.recv().expect("peer hello");
                // Shard 1's frame arriving on shard 0's channel.
                g_shards[0]
                    .send(
                        &Message::TableShard {
                            shard: 1,
                            tables: vec![0; 32],
                        }
                        .encode(),
                    )
                    .expect("misrouted frame");
            });
            let mut ot = InsecureOt;
            let mut sess = EvaluatorSession::establish_sharded(
                &mut cb,
                e_shards,
                &mut ot,
                32,
                ShardConfig::new(2),
            )
            .expect("evaluator");
            sess.begin_cycle(2);
            let err = sess.next_table(32).expect_err("wrong shard id");
            assert!(matches!(
                err,
                ProtoError::Malformed("table shard id mismatch")
            ));
        });
    }

    #[test]
    fn misaligned_table_frame_is_rejected() {
        let (mut ca, mut cb) = duplex();
        std::thread::scope(|s| {
            s.spawn(move || {
                ca.send(
                    &Message::Hello {
                        version: PROTOCOL_VERSION,
                        role: SessionRole::Garbler,
                    }
                    .encode(),
                )
                .expect("hello");
                ca.recv().expect("peer hello");
                ca.send(&Message::Tables(vec![1, 2, 3]).encode())
                    .expect("tables");
            });
            let mut ot = InsecureOt;
            let mut sess = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect("e");
            let err = sess.next_table(32).expect_err("misaligned");
            assert!(matches!(err, ProtoError::Malformed("table stream")));
        });
    }
}
