//! Garbler/evaluator session abstractions.
//!
//! A session owns one side of a protocol run: the framed channel, the
//! party's crypto context (PRG and free-XOR Δ on the garbler side), the
//! OT endpoint and the cost counters. Both engines (`arm2gc_garble`'s
//! conventional baseline and `arm2gc_core`'s SkipGate) are thin loops
//! over this shared layer, which provides:
//!
//! * the versioned [`Message::Hello`] handshake at establishment,
//! * input-label delivery — direct labels one way, OT (tunnelled through
//!   typed [`Message::OtPayload`] frames) the other,
//! * **pipelined table streaming**: the garbler pushes tables into a
//!   buffered sink that flushes in [`StreamConfig`]-sized chunks, while
//!   the evaluator *pulls* tables on demand, so garbling of cycle `t+1`
//!   overlaps evaluation of cycle `t` instead of rendezvousing once per
//!   cycle,
//! * the output-revelation exchange (decode colours vs. values).

use arm2gc_comm::{Channel, ChannelClosed};
use arm2gc_crypto::{Delta, Label, Prg};
use arm2gc_ot::{OtError, OtReceiver, OtSender};

use crate::wire::{Message, ProtoError, SessionRole, PROTOCOL_VERSION, TAG_OT_PAYLOAD, TAG_TABLES};

/// How the garbler's table sink batches tables onto the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Flush whenever at least this many table bytes are buffered.
    /// `None` reproduces the legacy lockstep behaviour: one flush at
    /// every cycle boundary, regardless of size.
    pub chunk_bytes: Option<usize>,
}

impl StreamConfig {
    /// Legacy per-cycle flushing (one `Tables` frame per clock cycle).
    pub const fn lockstep() -> Self {
        Self { chunk_bytes: None }
    }

    /// Flush in chunks of at least `bytes` table bytes.
    pub const fn chunked(bytes: usize) -> Self {
        Self {
            chunk_bytes: Some(bytes),
        }
    }
}

impl Default for StreamConfig {
    /// 64 KiB chunks (2048 half-gate tables): large enough to amortise
    /// per-frame overhead, small enough that the evaluator starts while
    /// the garbler is still working.
    fn default() -> Self {
        Self::chunked(64 * 1024)
    }
}

/// Cost counters a session accumulates; engines fold these into their
/// public stats structs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Garbled tables pushed (garbler) or pulled (evaluator).
    pub garbled_tables: u64,
    /// Bytes of garbled tables, excluding framing.
    pub table_bytes: u64,
    /// 1-out-of-2 OTs executed for the evaluator's input bits.
    pub ots: u64,
}

/// Adapter that tunnels an OT sub-protocol's raw messages through typed
/// [`Message::OtPayload`] frames.
///
/// OT implementations keep speaking [`Channel`]; wrapping the session
/// channel in an `OtTunnel` makes every byte they exchange a well-formed
/// protocol frame. A non-`OtPayload` frame arriving mid-OT is recorded
/// and surfaced as [`ProtoError::Malformed`] once the OT call returns.
pub struct OtTunnel<'a> {
    ch: &'a mut dyn Channel,
    malformed: Option<&'static str>,
}

impl<'a> OtTunnel<'a> {
    /// Wraps a channel.
    pub fn new(ch: &'a mut dyn Channel) -> Self {
        Self {
            ch,
            malformed: None,
        }
    }

    /// Converts an OT result, preferring a recorded framing error (the
    /// OT layer only sees a closed channel when the tunnel rejects a
    /// frame, so the tunnel's diagnosis is the accurate one).
    pub fn finish<T>(self, res: Result<T, OtError>) -> Result<T, ProtoError> {
        match self.malformed {
            Some(m) => Err(ProtoError::Malformed(m)),
            None => res.map_err(ProtoError::Ot),
        }
    }
}

impl Channel for OtTunnel<'_> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelClosed> {
        // Frame in place (tag + body) — IKNP correction matrices run to
        // hundreds of KB, so avoid the Message round-trip's extra copy.
        self.ch.send(&crate::wire::prefixed(TAG_OT_PAYLOAD, data))
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelClosed> {
        let raw = self.ch.recv()?;
        match Message::decode(&raw) {
            Ok(Message::OtPayload(p)) => Ok(p),
            _ => {
                self.malformed = Some("expected ot payload frame");
                Err(ChannelClosed)
            }
        }
    }
}

fn send_msg(ch: &mut dyn Channel, msg: &Message) -> Result<(), ProtoError> {
    ch.send(&msg.encode())?;
    Ok(())
}

fn recv_msg(ch: &mut dyn Channel) -> Result<Message, ProtoError> {
    Message::decode(&ch.recv()?)
}

/// Runs the versioned hello exchange. The garbler speaks first.
fn handshake(ch: &mut dyn Channel, role: SessionRole) -> Result<(), ProtoError> {
    let mine = Message::Hello {
        version: PROTOCOL_VERSION,
        role,
    };
    if role == SessionRole::Garbler {
        send_msg(ch, &mine)?;
    }
    let peer = recv_msg(ch)?;
    if role == SessionRole::Evaluator {
        send_msg(ch, &mine)?;
    }
    match peer {
        Message::Hello { version, .. } if version != PROTOCOL_VERSION => {
            Err(ProtoError::Malformed("protocol version mismatch"))
        }
        Message::Hello {
            role: peer_role, ..
        } if peer_role != role.peer() => Err(ProtoError::Malformed("peer claims the same role")),
        Message::Hello { .. } => Ok(()),
        _ => Err(ProtoError::Malformed("expected hello frame")),
    }
}

/// Alice's side of a protocol run.
///
/// Owns the channel, the PRG, the global free-XOR offset Δ (drawn at
/// establishment), the OT sender and the buffered table sink.
pub struct GarblerSession<'a> {
    ch: &'a mut dyn Channel,
    ot: &'a mut dyn OtSender,
    prg: &'a mut Prg,
    delta: Delta,
    stream: StreamConfig,
    /// Pre-framed `Tables` message under construction: `[TAG_TABLES]`
    /// followed by buffered table bytes, sent as-is on flush.
    table_buf: Vec<u8>,
    stats: SessionStats,
}

impl<'a> GarblerSession<'a> {
    /// Performs the versioned handshake and draws Δ.
    ///
    /// # Errors
    /// Channel failures, or a peer with the wrong version or role.
    pub fn establish(
        ch: &'a mut dyn Channel,
        ot: &'a mut dyn OtSender,
        prg: &'a mut Prg,
        stream: StreamConfig,
    ) -> Result<Self, ProtoError> {
        handshake(ch, SessionRole::Garbler)?;
        let delta = Delta::random(prg);
        Ok(Self {
            ch,
            ot,
            prg,
            delta,
            stream,
            table_buf: vec![TAG_TABLES],
            stats: SessionStats::default(),
        })
    }

    /// The session's global free-XOR offset.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// Draws a fresh uniformly random wire label.
    pub fn fresh_label(&mut self) -> Label {
        Label::random(self.prg)
    }

    /// Delivers the direct (non-OT) input labels. Always sends a frame,
    /// even when empty — the evaluator always expects one.
    ///
    /// # Errors
    /// Channel failures.
    pub fn send_direct_labels(&mut self, labels: &[Label]) -> Result<(), ProtoError> {
        send_msg(self.ch, &Message::DirectLabels(labels.to_vec()))
    }

    /// Runs the OT batch for the evaluator's input bits (no-op when
    /// `pairs` is empty, matching the receiving side).
    ///
    /// # Errors
    /// Channel, OT and framing failures.
    pub fn ot_send(&mut self, pairs: &[(Label, Label)]) -> Result<(), ProtoError> {
        if !pairs.is_empty() {
            let mut tunnel = OtTunnel::new(&mut *self.ch);
            let res = self.ot.send(&mut tunnel, pairs);
            tunnel.finish(res)?;
        }
        self.stats.ots += pairs.len() as u64;
        Ok(())
    }

    /// Buffers one garbled table, flushing when the configured chunk
    /// size is reached.
    ///
    /// # Errors
    /// Channel failures on flush.
    pub fn push_table(&mut self, table: &[u8]) -> Result<(), ProtoError> {
        self.table_buf.extend_from_slice(table);
        self.stats.garbled_tables += 1;
        self.stats.table_bytes += table.len() as u64;
        if let Some(chunk) = self.stream.chunk_bytes {
            if self.table_buf.len() > chunk {
                self.flush_tables()?;
            }
        }
        Ok(())
    }

    /// Marks a clock-cycle boundary; in lockstep mode this flushes the
    /// cycle's tables.
    ///
    /// # Errors
    /// Channel failures on flush.
    pub fn end_cycle(&mut self) -> Result<(), ProtoError> {
        if self.stream.chunk_bytes.is_none() {
            self.flush_tables()?;
        }
        Ok(())
    }

    fn flush_tables(&mut self) -> Result<(), ProtoError> {
        if self.table_buf.len() > 1 {
            self.ch.send(&self.table_buf)?;
            self.table_buf.truncate(1);
        }
        Ok(())
    }

    /// Sends the decode (colour) bits, receives the evaluator's revealed
    /// values. Flushes any still-buffered tables first, so this can
    /// never deadlock against an evaluator still pulling tables.
    ///
    /// # Errors
    /// Channel failures, or an `Outputs` frame of the wrong length.
    pub fn reveal_outputs(&mut self, decode_bits: &[bool]) -> Result<Vec<bool>, ProtoError> {
        self.flush_tables()?;
        send_msg(self.ch, &Message::DecodeBits(decode_bits.to_vec()))?;
        match recv_msg(self.ch)? {
            Message::Outputs(values) if values.len() == decode_bits.len() => Ok(values),
            Message::Outputs(_) => Err(ProtoError::Malformed("output bit count")),
            _ => Err(ProtoError::Malformed("expected outputs frame")),
        }
    }

    /// The accumulated cost counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

impl std::fmt::Debug for GarblerSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarblerSession")
            .field("stream", &self.stream)
            .field("buffered_table_bytes", &(self.table_buf.len() - 1))
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Bob's side of a protocol run.
///
/// Owns the channel, the OT receiver and a pull-based table source fed
/// by the garbler's chunked `Tables` frames.
pub struct EvaluatorSession<'a> {
    ch: &'a mut dyn Channel,
    ot: &'a mut dyn OtReceiver,
    /// Every received `Tables` frame must be a multiple of this (the
    /// engine's table size); 0 disables the check.
    table_align: usize,
    table_buf: Vec<u8>,
    table_pos: usize,
    stats: SessionStats,
}

impl<'a> EvaluatorSession<'a> {
    /// Performs the versioned handshake.
    ///
    /// `table_align` is the engine's garbled-table byte size; incoming
    /// table frames are validated against it.
    ///
    /// # Errors
    /// Channel failures, or a peer with the wrong version or role.
    pub fn establish(
        ch: &'a mut dyn Channel,
        ot: &'a mut dyn OtReceiver,
        table_align: usize,
    ) -> Result<Self, ProtoError> {
        handshake(ch, SessionRole::Evaluator)?;
        Ok(Self {
            ch,
            ot,
            table_align,
            table_buf: Vec::new(),
            table_pos: 0,
            stats: SessionStats::default(),
        })
    }

    /// Receives the direct input labels.
    ///
    /// # Errors
    /// Channel failures or a non-`DirectLabels` frame.
    pub fn recv_direct_labels(&mut self) -> Result<Vec<Label>, ProtoError> {
        match recv_msg(self.ch)? {
            Message::DirectLabels(labels) => Ok(labels),
            _ => Err(ProtoError::Malformed("expected direct labels frame")),
        }
    }

    /// Runs the OT batch for this party's choice bits (no-op when
    /// `choices` is empty, matching the sending side).
    ///
    /// # Errors
    /// Channel, OT and framing failures.
    pub fn ot_receive(&mut self, choices: &[bool]) -> Result<Vec<Label>, ProtoError> {
        let labels = if choices.is_empty() {
            Vec::new()
        } else {
            let mut tunnel = OtTunnel::new(&mut *self.ch);
            let res = self.ot.receive(&mut tunnel, choices);
            tunnel.finish(res)?
        };
        self.stats.ots += choices.len() as u64;
        Ok(labels)
    }

    /// Pulls the next `len` bytes of garbled table from the stream,
    /// receiving further `Tables` frames as needed.
    ///
    /// # Errors
    /// Channel failures, a non-`Tables` frame, or a frame that is not a
    /// whole number of tables.
    pub fn next_table(&mut self, len: usize) -> Result<&[u8], ProtoError> {
        while self.table_buf.len() - self.table_pos < len {
            if self.table_pos > 0 {
                self.table_buf.drain(..self.table_pos);
                self.table_pos = 0;
            }
            // Hot path: append the frame body straight into the buffer
            // instead of materialising a `Message::Tables` copy.
            let raw = self.ch.recv()?;
            match raw.split_first() {
                Some((&TAG_TABLES, body)) => {
                    if self.table_align != 0 && body.len() % self.table_align != 0 {
                        return Err(ProtoError::Malformed("table stream"));
                    }
                    self.table_buf.extend_from_slice(body);
                }
                _ => return Err(ProtoError::Malformed("expected tables frame")),
            }
        }
        let start = self.table_pos;
        self.table_pos += len;
        self.stats.garbled_tables += 1;
        self.stats.table_bytes += len as u64;
        Ok(&self.table_buf[start..start + len])
    }

    /// Asserts the table stream was fully consumed.
    ///
    /// # Errors
    /// [`ProtoError::Malformed`] when buffered table bytes remain.
    pub fn finish_tables(&self) -> Result<(), ProtoError> {
        if self.table_buf.len() > self.table_pos {
            return Err(ProtoError::Malformed("extra tables"));
        }
        Ok(())
    }

    /// Receives the decode bits, XORs them against this party's output
    /// colours, sends the revealed values back, and returns them.
    ///
    /// # Errors
    /// Channel failures, leftover tables, or a `DecodeBits` frame of the
    /// wrong length.
    pub fn reveal_outputs(&mut self, colours: &[bool]) -> Result<Vec<bool>, ProtoError> {
        self.finish_tables()?;
        let decode = match recv_msg(self.ch)? {
            Message::DecodeBits(bits) => bits,
            _ => return Err(ProtoError::Malformed("expected decode bits frame")),
        };
        if decode.len() != colours.len() {
            return Err(ProtoError::Malformed("decode bit count"));
        }
        let values: Vec<bool> = colours.iter().zip(&decode).map(|(&c, &z)| c ^ z).collect();
        send_msg(self.ch, &Message::Outputs(values.clone()))?;
        Ok(values)
    }

    /// The accumulated cost counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

impl std::fmt::Debug for EvaluatorSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaluatorSession")
            .field("table_align", &self.table_align)
            .field(
                "buffered_table_bytes",
                &(self.table_buf.len() - self.table_pos),
            )
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;
    use arm2gc_ot::InsecureOt;

    fn pair_up<F, G, R, S>(garbler: F, evaluator: G) -> (R, S)
    where
        F: FnOnce(&mut dyn Channel) -> R + Send,
        G: FnOnce(&mut dyn Channel) -> S,
        R: Send,
    {
        let (mut ca, mut cb) = duplex();
        std::thread::scope(|s| {
            let g = s.spawn(move || garbler(&mut ca));
            let e = evaluator(&mut cb);
            (g.join().expect("garbler thread"), e)
        })
    }

    #[test]
    fn handshake_and_streaming_roundtrip() {
        let chunk = StreamConfig::chunked(64);
        let (sent, got) = pair_up(
            |ch| {
                let mut ot = InsecureOt;
                let mut prg = Prg::from_seed([1; 16]);
                let mut s = GarblerSession::establish(ch, &mut ot, &mut prg, chunk).expect("g");
                let mut sent = Vec::new();
                for cycle in 0..10u8 {
                    for t in 0..3u8 {
                        let table = [cycle * 16 + t; 32];
                        s.push_table(&table).expect("push");
                        sent.push(table.to_vec());
                    }
                    s.end_cycle().expect("end");
                }
                let values = s.reveal_outputs(&[true, false, true]).expect("reveal");
                assert_eq!(s.stats().garbled_tables, 30);
                assert_eq!(s.stats().table_bytes, 960);
                (sent, values)
            },
            |ch| {
                let mut ot = InsecureOt;
                let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                let mut got = Vec::new();
                for _ in 0..30 {
                    got.push(s.next_table(32).expect("pull").to_vec());
                }
                let values = s.reveal_outputs(&[false, false, false]).expect("reveal");
                (got, values)
            },
        );
        assert_eq!(sent.0, got.0);
        // Evaluator's colours were all-false, so values == decode bits.
        assert_eq!(sent.1, vec![true, false, true]);
        assert_eq!(got.1, vec![true, false, true]);
    }

    #[test]
    fn lockstep_flushes_per_cycle_and_chunked_batches() {
        for (cfg, expect_table_frames) in [
            (StreamConfig::lockstep(), 4u64),    // one frame per non-empty cycle
            (StreamConfig::chunked(1 << 20), 1), // everything in the final flush
        ] {
            let (frames, ()) = pair_up(
                move |ch| {
                    let (counted, stats) = arm2gc_comm::CountingChannel::new(&mut *ch);
                    let mut counted = counted;
                    let mut ot = InsecureOt;
                    let mut prg = Prg::from_seed([2; 16]);
                    let mut s =
                        GarblerSession::establish(&mut counted, &mut ot, &mut prg, cfg).expect("g");
                    for _ in 0..4 {
                        s.push_table(&[7u8; 32]).expect("push");
                        s.end_cycle().expect("end");
                    }
                    s.reveal_outputs(&[]).expect("reveal");
                    // hello + table frames + decode bits.
                    stats.sent_msgs() - 2
                },
                |ch| {
                    let mut ot = InsecureOt;
                    let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                    for _ in 0..4 {
                        s.next_table(32).expect("pull");
                    }
                    s.reveal_outputs(&[]).expect("reveal");
                },
            );
            assert_eq!(frames, expect_table_frames);
        }
    }

    #[test]
    fn ot_roundtrip_is_tunnelled() {
        let mut prg = Prg::from_seed([3; 16]);
        let pairs: Vec<(Label, Label)> = (0..40)
            .map(|_| (Label::random(&mut prg), Label::random(&mut prg)))
            .collect();
        let choices: Vec<bool> = (0..40).map(|i| i % 3 == 1).collect();
        let expected: Vec<Label> = pairs
            .iter()
            .zip(&choices)
            .map(|(p, &c)| if c { p.1 } else { p.0 })
            .collect();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();
        let (g_ots, labels) = pair_up(
            move |ch| {
                let mut ot = InsecureOt;
                let mut prg = Prg::from_seed([4; 16]);
                let mut s =
                    GarblerSession::establish(ch, &mut ot, &mut prg, StreamConfig::default())
                        .expect("g");
                s.ot_send(&pairs2).expect("ot send");
                s.ot_send(&[]).expect("empty ot is a no-op");
                s.reveal_outputs(&[]).expect("reveal");
                s.stats().ots
            },
            move |ch| {
                let mut ot = InsecureOt;
                let mut s = EvaluatorSession::establish(ch, &mut ot, 32).expect("e");
                let labels = s.ot_receive(&choices2).expect("ot receive");
                assert!(s.ot_receive(&[]).expect("empty").is_empty());
                s.reveal_outputs(&[]).expect("reveal");
                assert_eq!(s.stats().ots, 40);
                labels
            },
        );
        assert_eq!(g_ots, 40);
        assert_eq!(labels, expected);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (mut ca, mut cb) = duplex();
        // A fake peer speaking a future version.
        ca.send(
            &Message::Hello {
                version: PROTOCOL_VERSION + 1,
                role: SessionRole::Garbler,
            }
            .encode(),
        )
        .expect("send");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("protocol version mismatch")
        ));
    }

    #[test]
    fn same_role_is_rejected() {
        let (mut ca, mut cb) = duplex();
        ca.send(
            &Message::Hello {
                version: PROTOCOL_VERSION,
                role: SessionRole::Evaluator,
            }
            .encode(),
        )
        .expect("send");
        let mut ot = InsecureOt;
        let err = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect_err("must reject");
        assert!(matches!(
            err,
            ProtoError::Malformed("peer claims the same role")
        ));
    }

    #[test]
    fn misaligned_table_frame_is_rejected() {
        let (mut ca, mut cb) = duplex();
        std::thread::scope(|s| {
            s.spawn(move || {
                ca.send(
                    &Message::Hello {
                        version: PROTOCOL_VERSION,
                        role: SessionRole::Garbler,
                    }
                    .encode(),
                )
                .expect("hello");
                ca.recv().expect("peer hello");
                ca.send(&Message::Tables(vec![1, 2, 3]).encode())
                    .expect("tables");
            });
            let mut ot = InsecureOt;
            let mut sess = EvaluatorSession::establish(&mut cb, &mut ot, 32).expect("e");
            let err = sess.next_table(32).expect_err("misaligned");
            assert!(matches!(err, ProtoError::Malformed("table stream")));
        });
    }
}
