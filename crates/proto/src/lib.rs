//! Typed session/wire-protocol layer shared by both ARM2GC engines.
//!
//! The conventional-GC baseline (`arm2gc_garble`) and the SkipGate
//! protocol (`arm2gc_core`) speak the *same* two-party protocol: deliver
//! input labels (directly or via OT), stream garbled tables, exchange
//! decode bits. This crate factors that shared substrate out of the
//! engines:
//!
//! * [`wire`] — the versioned [`Message`] enum with explicit
//!   little-endian framing and a strict round-trip-tested codec;
//! * [`session`] — [`GarblerSession`] / [`EvaluatorSession`], owning the
//!   channel, PRG/Δ, OT endpoint and cost counters, with **pipelined
//!   table streaming**: the garbler's buffered sink flushes in
//!   configurable chunks ([`StreamConfig`]) while the evaluator pulls
//!   tables on demand, so garbling runs ahead of evaluation instead of
//!   rendezvousing once per clock cycle;
//! * [`shard`] — [`ShardConfig`] / [`ShardPlan`], partitioning each
//!   cycle's table stream into contiguous per-shard ranges that travel
//!   over parallel sub-streams (per-shard worker threads on the garbler
//!   side, lazily pulled sub-sources on the evaluator side);
//! * [`endpoint`] — [`OtBackend`], pluggable selection between the
//!   insecure reference OT and the real Naor–Pinkas + IKNP stack;
//! * [`bits`] — the bit-packing helpers the codec and engines share.
//!
//! ```
//! use arm2gc_proto::{Message, SessionRole, PROTOCOL_VERSION};
//! let hello = Message::Hello { version: PROTOCOL_VERSION, role: SessionRole::Garbler };
//! assert_eq!(Message::decode(&hello.encode()).unwrap(), hello);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod config;
pub mod endpoint;
pub mod session;
pub mod shard;
pub mod wire;

pub use config::ConfigError;
pub use endpoint::{
    OtBackend, OtConfig, OtReceiverState, OtSenderState, ResumableOtReceiver, ResumableOtSender,
};
pub use session::{EvaluatorSession, GarblerSession, OtTunnel, SessionStats, StreamConfig};
pub use shard::{ShardConfig, ShardPlan};
pub use wire::{Message, ProtoError, SessionRole, MAGIC, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
