//! Typed session-configuration errors.
//!
//! Shard counts, instance counts and engine selection are *out-of-band
//! session configuration*: they decide how many channels a session
//! opens and which protocol variant it speaks, so they must be
//! validated **before** any protocol state exists. A bogus value — a
//! `--shards 0` from a CLI, a zero instance count in a service request
//! — used to surface as a downstream panic deep inside channel setup;
//! it is now a [`ConfigError`] at configuration-build time, which the
//! protocol layer carries as [`ProtoError::Config`](crate::wire::ProtoError::Config)
//! and the garbler service turns into a typed
//! [`ServiceReject`](crate::wire::Message::ServiceReject) frame.

use std::error::Error;
use std::fmt;

use crate::shard::ShardConfig;

/// A session configuration rejected at build time.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The shard count was zero (a table stream needs at least one
    /// sub-stream).
    ZeroShards,
    /// The shard count exceeded [`ShardConfig::MAX_SHARDS`] (shard ids
    /// travel as one byte).
    TooManyShards(usize),
    /// The instance (lane) count was zero.
    ZeroInstances,
    /// The instance count exceeded `u16::MAX` (the handshake announces
    /// it as one `u16`).
    TooManyInstances(usize),
    /// The classic baseline engine has no instanced mode; only the
    /// SkipGate engine batches lanes.
    BaselineInstanced,
    /// The number of per-lane input bundles disagreed with the
    /// configured instance count.
    LaneCount {
        /// Lanes the session was configured for.
        expected: usize,
        /// Input bundles actually supplied.
        got: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::TooManyShards(n) => write!(
                f,
                "shard count {n} exceeds the maximum of {}",
                ShardConfig::MAX_SHARDS
            ),
            ConfigError::ZeroInstances => write!(f, "instance count must be at least 1"),
            ConfigError::TooManyInstances(n) => {
                write!(f, "instance count {n} exceeds the maximum of {}", u16::MAX)
            }
            ConfigError::BaselineInstanced => {
                write!(f, "the baseline engine does not support instanced sessions")
            }
            ConfigError::LaneCount { expected, got } => write!(
                f,
                "session configured for {expected} instance(s) but {got} input lane(s) supplied"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_knob() {
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
        assert!(ConfigError::TooManyShards(999).to_string().contains("999"));
        assert!(ConfigError::ZeroInstances.to_string().contains("instance"));
        assert!(ConfigError::TooManyInstances(70_000)
            .to_string()
            .contains("70000"));
        assert!(ConfigError::BaselineInstanced
            .to_string()
            .contains("baseline"));
        let e = ConfigError::LaneCount {
            expected: 8,
            got: 3,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('3'));
    }
}
