//! Pluggable OT endpoint selection.
//!
//! Engines take `&mut dyn OtSender` / `&mut dyn OtReceiver`, so any OT
//! stack plugs in; this module packages the two stacks the workspace
//! ships behind one enum so runners, the CPU machine and examples can
//! switch by configuration instead of hardwiring [`InsecureOt`].
//!
//! Setup is *lazy*: the Naor–Pinkas base OTs and IKNP extension run on
//! the first `send`/`receive`, over whatever channel that call receives.
//! Inside a session that channel is the [`OtTunnel`], so the whole OT
//! stack — setup included — travels as typed `OtPayload` frames after
//! the version handshake.
//!
//! The base-OT group is chosen by [`OtConfig`] (default: the production
//! 1279-bit group). IKNP state is counter-advancing, so one base-OT
//! setup can serve many sessions: [`ResumableOtSender`] /
//! [`ResumableOtReceiver`] expose their post-setup extension state via
//! `into_state`, and a later endpoint created with `resume` extends the
//! cached columns instead of paying the setup again.
//!
//! [`OtTunnel`]: crate::session::OtTunnel

use arm2gc_comm::Channel;
use arm2gc_crypto::{Label, Prg};
use arm2gc_ot::{
    IknpReceiver, IknpSender, InsecureOt, MersenneGroup, NaorPinkasReceiver, NaorPinkasSender,
    OtError, OtReceiver, OtSender,
};

/// Which OT stack a protocol run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OtBackend {
    /// Cleartext reference OT: fast, **non-private**; tests and
    /// gate-count benchmarks only.
    #[default]
    Insecure,
    /// Naor–Pinkas base OTs over the [`OtConfig`] group, extended with
    /// IKNP. Real protocol flow.
    NaorPinkasIknp,
}

/// Parameters of the Naor–Pinkas base-OT group.
///
/// Carries the Mersenne exponent `e` (the group is the multiplicative
/// group of `GF(2^e − 1)`) and the exponent width used for discrete-log
/// secrets. Both peers must agree on the config: group elements travel
/// as fixed-width byte strings and the width is a group constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OtConfig {
    group_exponent: u32,
    exp_bits: usize,
}

impl OtConfig {
    /// The production group: `p = 2^1279 − 1` with 256-bit exponents.
    pub const STANDARD: Self = Self {
        group_exponent: 1279,
        exp_bits: 256,
    };

    /// The small, fast test group: `p = 2^127 − 1` with 96-bit
    /// exponents. Not for real use — base OTs over it finish in
    /// microseconds, which is what unit tests want.
    pub const TEST: Self = Self {
        group_exponent: 127,
        exp_bits: 96,
    };

    /// A custom group; `group_exponent` must be a known Mersenne prime
    /// exponent (validated when the group is built).
    pub fn new(group_exponent: u32, exp_bits: usize) -> Self {
        Self {
            group_exponent,
            exp_bits,
        }
    }

    /// The Mersenne exponent `e` of the group modulus `2^e − 1`.
    pub fn group_exponent(&self) -> u32 {
        self.group_exponent
    }

    /// The width of sampled exponents, in bits.
    pub fn exp_bits(&self) -> usize {
        self.exp_bits
    }

    /// Builds the group.
    ///
    /// # Panics
    /// Panics if the exponent is not a known Mersenne prime (see
    /// [`MersenneGroup::new`]).
    pub fn group(&self) -> MersenneGroup {
        MersenneGroup::new(self.group_exponent, self.exp_bits)
    }
}

impl Default for OtConfig {
    /// Production-sized by default; tests opt into [`OtConfig::TEST`].
    fn default() -> Self {
        Self::STANDARD
    }
}

impl OtBackend {
    /// Builds the sending endpoint. `prg` seeds any setup randomness;
    /// network setup (if any) is deferred to the first OT batch, over
    /// the base-OT group picked by `config`.
    pub fn sender(self, config: OtConfig, prg: &mut Prg) -> Box<dyn OtSender + Send> {
        match self {
            OtBackend::Insecure => Box::new(InsecureOt),
            OtBackend::NaorPinkasIknp => Box::new(ResumableOtSender::fresh(config, prg)),
        }
    }

    /// Builds the receiving endpoint; see [`OtBackend::sender`].
    pub fn receiver(self, config: OtConfig, prg: &mut Prg) -> Box<dyn OtReceiver + Send> {
        match self {
            OtBackend::Insecure => Box::new(InsecureOt),
            OtBackend::NaorPinkasIknp => Box::new(ResumableOtReceiver::fresh(config, prg)),
        }
    }
}

/// Post-setup IKNP sender state, opaque to callers.
///
/// Extracted from a [`ResumableOtSender`] after a session and fed to
/// [`ResumableOtSender::resume`] to skip the base-OT setup in the next
/// one. The state is counter-advancing: every extension batch moves the
/// hash tweaks forward, so reuse never repeats a (key, tweak) pair.
#[derive(Debug)]
pub struct OtSenderState(IknpSender);

/// Post-setup IKNP receiver state, opaque to callers; see
/// [`OtSenderState`].
#[derive(Debug)]
pub struct OtReceiverState(IknpReceiver);

/// IKNP sender whose base-OT setup runs lazily on first use and whose
/// extension state survives the endpoint.
pub struct ResumableOtSender {
    prg: Prg,
    config: OtConfig,
    inner: Option<IknpSender>,
    base_setups: u64,
    extended: u64,
}

impl ResumableOtSender {
    /// An endpoint with no cached state: the first batch pays a
    /// Naor–Pinkas base-OT setup over the `config` group.
    pub fn fresh(config: OtConfig, prg: &mut Prg) -> Self {
        Self {
            prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
            config,
            inner: None,
            base_setups: 0,
            extended: 0,
        }
    }

    /// An endpoint resuming cached extension state: no base OTs run;
    /// every batch extends the cached columns.
    pub fn resume(state: OtSenderState, prg: &mut Prg) -> Self {
        Self {
            prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
            config: OtConfig::default(),
            inner: Some(state.0),
            base_setups: 0,
            extended: 0,
        }
    }

    /// Extracts the extension state for reuse, if setup ever ran.
    pub fn into_state(self) -> Option<OtSenderState> {
        self.inner.map(OtSenderState)
    }

    /// Base-OT setups paid by this endpoint (0 or 1).
    pub fn base_setups(&self) -> u64 {
        self.base_setups
    }

    /// OTs served by extending (fresh or resumed) columns.
    pub fn extended(&self) -> u64 {
        self.extended
    }
}

impl OtSender for ResumableOtSender {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        if self.inner.is_none() {
            let mut base = NaorPinkasReceiver::new(
                self.config.group(),
                Prg::from_seed(self.prg.next_u128().to_le_bytes()),
            );
            self.inner = Some(IknpSender::setup(&mut base, ch, &mut self.prg)?);
            self.base_setups += 1;
        }
        self.inner.as_mut().expect("set above").send(ch, pairs)?;
        self.extended += pairs.len() as u64;
        Ok(())
    }
}

/// IKNP receiver whose base-OT setup runs lazily on first use and whose
/// extension state survives the endpoint; mirrors [`ResumableOtSender`].
pub struct ResumableOtReceiver {
    prg: Prg,
    config: OtConfig,
    inner: Option<IknpReceiver>,
    base_setups: u64,
    extended: u64,
}

impl ResumableOtReceiver {
    /// An endpoint with no cached state; see [`ResumableOtSender::fresh`].
    pub fn fresh(config: OtConfig, prg: &mut Prg) -> Self {
        Self {
            prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
            config,
            inner: None,
            base_setups: 0,
            extended: 0,
        }
    }

    /// An endpoint resuming cached extension state; see
    /// [`ResumableOtSender::resume`].
    pub fn resume(state: OtReceiverState, prg: &mut Prg) -> Self {
        Self {
            prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
            config: OtConfig::default(),
            inner: Some(state.0),
            base_setups: 0,
            extended: 0,
        }
    }

    /// Extracts the extension state for reuse, if setup ever ran.
    pub fn into_state(self) -> Option<OtReceiverState> {
        self.inner.map(OtReceiverState)
    }

    /// Base-OT setups paid by this endpoint (0 or 1).
    pub fn base_setups(&self) -> u64 {
        self.base_setups
    }

    /// OTs served by extending (fresh or resumed) columns.
    pub fn extended(&self) -> u64 {
        self.extended
    }
}

impl OtReceiver for ResumableOtReceiver {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        if self.inner.is_none() {
            let mut base = NaorPinkasSender::new(
                self.config.group(),
                Prg::from_seed(self.prg.next_u128().to_le_bytes()),
            );
            self.inner = Some(IknpReceiver::setup(&mut base, ch, &mut self.prg)?);
            self.base_setups += 1;
        }
        let out = self
            .inner
            .as_mut()
            .expect("set above")
            .receive(ch, choices)?;
        self.extended += choices.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;

    fn exercise(backend: OtBackend, config: OtConfig) {
        let (mut ca, mut cb) = duplex();
        let mut gen = Prg::from_seed([5; 16]);
        let pairs: Vec<(Label, Label)> = (0..150)
            .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
            .collect();
        let choices: Vec<bool> = (0..150).map(|i| i % 5 < 2).collect();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();

        let got = std::thread::scope(|s| {
            s.spawn(move || {
                let mut prg = Prg::from_seed([6; 16]);
                let mut sender = backend.sender(config, &mut prg);
                // Two batches: the second reuses the lazy setup.
                sender.send(&mut ca, &pairs2[..100]).expect("batch 1");
                sender.send(&mut ca, &pairs2[100..]).expect("batch 2");
            });
            let mut prg = Prg::from_seed([7; 16]);
            let mut receiver = backend.receiver(config, &mut prg);
            let mut got = receiver
                .receive(&mut cb, &choices2[..100])
                .expect("batch 1");
            got.extend(
                receiver
                    .receive(&mut cb, &choices2[100..])
                    .expect("batch 2"),
            );
            got
        });

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn insecure_backend_transfers_chosen_labels() {
        exercise(OtBackend::Insecure, OtConfig::TEST);
    }

    #[test]
    fn naor_pinkas_iknp_backend_transfers_chosen_labels() {
        exercise(OtBackend::NaorPinkasIknp, OtConfig::TEST);
    }

    #[test]
    #[ignore = "slow: 1279-bit base OT; run with --ignored"]
    fn naor_pinkas_iknp_backend_over_standard_group() {
        exercise(OtBackend::NaorPinkasIknp, OtConfig::STANDARD);
    }

    /// One base-OT setup serves two sessions: the second endpoint pair
    /// resumes the first pair's extension state and transfers the same
    /// labels a fresh pair would.
    #[test]
    fn resumed_state_skips_base_setup_and_stays_correct() {
        let mut gen = Prg::from_seed([8; 16]);
        let pairs: Vec<(Label, Label)> = (0..80)
            .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
            .collect();
        let choices: Vec<bool> = (0..80).map(|i| i % 3 == 1).collect();

        // Session 1: fresh endpoints.
        let (mut ca, mut cb) = duplex();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();
        let (s_state, r_state, got1) = std::thread::scope(|s| {
            let tx = s.spawn(move || {
                let mut prg = Prg::from_seed([9; 16]);
                let mut snd = ResumableOtSender::fresh(OtConfig::TEST, &mut prg);
                snd.send(&mut ca, &pairs2[..40]).unwrap();
                assert_eq!(snd.base_setups(), 1);
                assert_eq!(snd.extended(), 40);
                snd.into_state().unwrap()
            });
            let mut prg = Prg::from_seed([10; 16]);
            let mut rcv = ResumableOtReceiver::fresh(OtConfig::TEST, &mut prg);
            let got = rcv.receive(&mut cb, &choices2[..40]).unwrap();
            assert_eq!(rcv.base_setups(), 1);
            let r_state = rcv.into_state().unwrap();
            (tx.join().unwrap(), r_state, got)
        });

        // Session 2: resumed endpoints — zero base setups.
        let (mut ca, mut cb) = duplex();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();
        let got2 = std::thread::scope(|s| {
            s.spawn(move || {
                let mut prg = Prg::from_seed([11; 16]);
                let mut snd = ResumableOtSender::resume(s_state, &mut prg);
                snd.send(&mut ca, &pairs2[40..]).unwrap();
                assert_eq!(snd.base_setups(), 0);
                assert_eq!(snd.extended(), 40);
            });
            let mut prg = Prg::from_seed([12; 16]);
            let mut rcv = ResumableOtReceiver::resume(r_state, &mut prg);
            let got = rcv.receive(&mut cb, &choices2[40..]).unwrap();
            assert_eq!(rcv.base_setups(), 0);
            got
        });

        let got: Vec<Label> = got1.into_iter().chain(got2).collect();
        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }
}
