//! Pluggable OT endpoint selection.
//!
//! Engines take `&mut dyn OtSender` / `&mut dyn OtReceiver`, so any OT
//! stack plugs in; this module packages the two stacks the workspace
//! ships behind one enum so runners, the CPU machine and examples can
//! switch by configuration instead of hardwiring [`InsecureOt`].
//!
//! Setup is *lazy*: the Naor–Pinkas base OTs and IKNP extension run on
//! the first `send`/`receive`, over whatever channel that call receives.
//! Inside a session that channel is the [`OtTunnel`], so the whole OT
//! stack — setup included — travels as typed `OtPayload` frames after
//! the version handshake.
//!
//! [`OtTunnel`]: crate::session::OtTunnel

use arm2gc_comm::Channel;
use arm2gc_crypto::{Label, Prg};
use arm2gc_ot::{
    IknpReceiver, IknpSender, InsecureOt, MersenneGroup, NaorPinkasReceiver, NaorPinkasSender,
    OtError, OtReceiver, OtSender,
};

/// Which OT stack a protocol run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OtBackend {
    /// Cleartext reference OT: fast, **non-private**; tests and
    /// gate-count benchmarks only.
    #[default]
    Insecure,
    /// Naor–Pinkas base OTs (over the small 127-bit Mersenne test
    /// group) extended with IKNP. Real protocol flow; swap in
    /// [`MersenneGroup::standard`] for production-size base OTs.
    NaorPinkasIknp,
}

impl OtBackend {
    /// Builds the sending endpoint. `prg` seeds any setup randomness;
    /// network setup (if any) is deferred to the first OT batch.
    pub fn sender(self, prg: &mut Prg) -> Box<dyn OtSender + Send> {
        match self {
            OtBackend::Insecure => Box::new(InsecureOt),
            OtBackend::NaorPinkasIknp => Box::new(LazyIknpSender {
                prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
                inner: None,
            }),
        }
    }

    /// Builds the receiving endpoint; see [`OtBackend::sender`].
    pub fn receiver(self, prg: &mut Prg) -> Box<dyn OtReceiver + Send> {
        match self {
            OtBackend::Insecure => Box::new(InsecureOt),
            OtBackend::NaorPinkasIknp => Box::new(LazyIknpReceiver {
                prg: Prg::from_seed(prg.next_u128().to_le_bytes()),
                inner: None,
            }),
        }
    }
}

/// IKNP sender that runs its base-OT setup on first use.
struct LazyIknpSender {
    prg: Prg,
    inner: Option<IknpSender>,
}

impl OtSender for LazyIknpSender {
    fn send(&mut self, ch: &mut dyn Channel, pairs: &[(Label, Label)]) -> Result<(), OtError> {
        if self.inner.is_none() {
            let mut base = NaorPinkasReceiver::new(
                MersenneGroup::test_group(),
                Prg::from_seed(self.prg.next_u128().to_le_bytes()),
            );
            self.inner = Some(IknpSender::setup(&mut base, ch, &mut self.prg)?);
        }
        self.inner.as_mut().expect("set above").send(ch, pairs)
    }
}

/// IKNP receiver that runs its base-OT setup on first use.
struct LazyIknpReceiver {
    prg: Prg,
    inner: Option<IknpReceiver>,
}

impl OtReceiver for LazyIknpReceiver {
    fn receive(&mut self, ch: &mut dyn Channel, choices: &[bool]) -> Result<Vec<Label>, OtError> {
        if self.inner.is_none() {
            let mut base = NaorPinkasSender::new(
                MersenneGroup::test_group(),
                Prg::from_seed(self.prg.next_u128().to_le_bytes()),
            );
            self.inner = Some(IknpReceiver::setup(&mut base, ch, &mut self.prg)?);
        }
        self.inner.as_mut().expect("set above").receive(ch, choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm2gc_comm::duplex;

    fn exercise(backend: OtBackend) {
        let (mut ca, mut cb) = duplex();
        let mut gen = Prg::from_seed([5; 16]);
        let pairs: Vec<(Label, Label)> = (0..150)
            .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
            .collect();
        let choices: Vec<bool> = (0..150).map(|i| i % 5 < 2).collect();
        let pairs2 = pairs.clone();
        let choices2 = choices.clone();

        let got = std::thread::scope(|s| {
            s.spawn(move || {
                let mut prg = Prg::from_seed([6; 16]);
                let mut sender = backend.sender(&mut prg);
                // Two batches: the second reuses the lazy setup.
                sender.send(&mut ca, &pairs2[..100]).expect("batch 1");
                sender.send(&mut ca, &pairs2[100..]).expect("batch 2");
            });
            let mut prg = Prg::from_seed([7; 16]);
            let mut receiver = backend.receiver(&mut prg);
            let mut got = receiver
                .receive(&mut cb, &choices2[..100])
                .expect("batch 1");
            got.extend(
                receiver
                    .receive(&mut cb, &choices2[100..])
                    .expect("batch 2"),
            );
            got
        });

        for ((pair, &c), l) in pairs.iter().zip(&choices).zip(&got) {
            assert_eq!(*l, if c { pair.1 } else { pair.0 });
        }
    }

    #[test]
    fn insecure_backend_transfers_chosen_labels() {
        exercise(OtBackend::Insecure);
    }

    #[test]
    fn naor_pinkas_iknp_backend_transfers_chosen_labels() {
        exercise(OtBackend::NaorPinkasIknp);
    }
}
