//! Bit-vector packing, shared by the wire codec and both engines.
//!
//! The output-revelation phase of every engine exchanges bit vectors
//! (decode colours one way, output values the other). Bits are packed
//! LSB-first within each byte; the final byte of a non-multiple-of-8
//! vector is zero-padded.

/// Packs `bits` LSB-first into `ceil(len / 8)` bytes.
///
/// ```
/// use arm2gc_proto::bits::pack_bits;
/// assert_eq!(pack_bits(&[true, false, false, true]), vec![0b1001]);
/// ```
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks the first `n` bits of `bytes` (LSB-first).
///
/// # Panics
/// Panics if `bytes` holds fewer than `n` bits.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    assert!(
        bytes.len() >= n.div_ceil(8),
        "unpack_bits: {} bytes cannot hold {n} bits",
        bytes.len()
    );
    (0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(pack_bits(&[]), Vec::<u8>::new());
        assert_eq!(unpack_bits(&[], 0), Vec::<bool>::new());
    }

    #[test]
    fn exact_byte_lengths() {
        let bits: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_bits(&packed, 16), bits);
    }

    #[test]
    fn non_multiple_of_eight_lengths() {
        for n in [1usize, 3, 7, 9, 13, 17, 23, 31, 63, 65] {
            let bits: Vec<bool> = (0..n).map(|i| (i * 7) % 5 < 2).collect();
            let packed = pack_bits(&bits);
            assert_eq!(packed.len(), n.div_ceil(8), "n = {n}");
            assert_eq!(unpack_bits(&packed, n), bits, "n = {n}");
        }
    }

    #[test]
    fn padding_bits_are_zero() {
        let packed = pack_bits(&[true; 5]);
        assert_eq!(packed, vec![0b0001_1111]);
    }

    #[test]
    fn bit_order_is_lsb_first() {
        assert_eq!(
            pack_bits(&[true, false, false, false, false, false, false, false]),
            vec![1]
        );
        assert_eq!(
            pack_bits(&[false, false, false, false, false, false, false, true]),
            vec![128]
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn unpack_rejects_short_buffers() {
        unpack_bits(&[0xff], 9);
    }
}
