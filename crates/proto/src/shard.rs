//! Sharded table-stream partitioning.
//!
//! A protocol run can split its garbled-table stream across several
//! *shards*: each clock cycle's tables are partitioned into contiguous
//! index ranges, one per shard, and every shard travels over its own
//! logical sub-stream (its own [`Message::TableShard`] frames, usually
//! on its own channel/socket). On the garbler side each shard gets a
//! dedicated worker thread that buffers, frames and sends its range, so
//! serialisation and wire I/O overlap with garbling; the evaluator pulls
//! from each sub-stream lazily and reassembles the tables in gate order.
//!
//! Both parties derive the *same* partition independently: the number of
//! tables a cycle produces is public knowledge (the baseline garbles
//! every nonlinear gate; SkipGate's decision pass is shared and
//! deterministic), so no extra coordination frames are needed.
//!
//! [`Message::TableShard`]: crate::wire::Message::TableShard

use crate::config::ConfigError;

/// How a protocol run shards its garbled-table stream.
///
/// Like the evaluator's `table_align` and the garbler's
/// [`StreamConfig`](crate::session::StreamConfig), the shard count is
/// *out-of-band session configuration*: both parties must be
/// constructed with the same value (it determines how many channels a
/// run opens, so it cannot travel inside the stream it configures).
/// Deployments that take it from a CLI flag — see the workspace's
/// `tcp_two_party` example — must pass the same `--shards` to both
/// processes; a mismatch stalls channel setup rather than decoding
/// garbage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of parallel table sub-streams. `1` (the default) keeps the
    /// single legacy `Tables` stream on the session's main channel,
    /// byte-identical to an unsharded run.
    pub shards: usize,
}

impl ShardConfig {
    /// The largest supported shard count (shard ids travel as one byte).
    pub const MAX_SHARDS: usize = 255;

    /// The unsharded (legacy single-stream) configuration.
    pub const fn single() -> Self {
        Self { shards: 1 }
    }

    /// A configuration with `shards` parallel sub-streams.
    ///
    /// # Panics
    /// Panics when `shards` is zero or exceeds [`Self::MAX_SHARDS`].
    /// Session boundaries that must not panic (service requests, CLI
    /// flags) use [`Self::try_new`] instead.
    pub fn new(shards: usize) -> Self {
        Self::try_new(shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::new`] returning a typed [`ConfigError`] instead of
    /// panicking — the session-boundary form.
    ///
    /// # Errors
    /// [`ConfigError::ZeroShards`] / [`ConfigError::TooManyShards`]
    /// when the count is outside `1..=`[`Self::MAX_SHARDS`].
    pub fn try_new(shards: usize) -> Result<Self, ConfigError> {
        match shards {
            0 => Err(ConfigError::ZeroShards),
            n if n > Self::MAX_SHARDS => Err(ConfigError::TooManyShards(n)),
            n => Ok(Self { shards: n }),
        }
    }

    /// Whether this configuration actually shards (more than one
    /// sub-stream).
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// The contiguous partition of one cycle's `n` tables across `shards`
/// sub-streams: shard `k` carries table indices
/// `[k·n/shards, (k+1)·n/shards)`.
///
/// Tables are produced and consumed in index order, so lookups advance a
/// cursor instead of searching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    shards: usize,
}

impl ShardPlan {
    /// Partition of `n` tables across `shards` sub-streams.
    pub fn new(n: usize, shards: usize) -> Self {
        debug_assert!(shards >= 1);
        Self { n, shards }
    }

    /// Number of tables in the planned cycle.
    pub fn tables(&self) -> usize {
        self.n
    }

    /// First table index of shard `k` (for `k == shards`, `n` itself).
    pub fn bound(&self, k: usize) -> usize {
        k * self.n / self.shards
    }

    /// The shard carrying table index `i`, starting the scan at
    /// `cursor` (callers walk indices in order and feed the previous
    /// result back in).
    pub fn shard_of(&self, i: usize, cursor: usize) -> usize {
        debug_assert!(i < self.n, "table index {i} outside plan of {}", self.n);
        let mut k = cursor;
        while k + 1 < self.shards && i >= self.bound(k + 1) {
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_default_and_unsharded() {
        assert_eq!(ShardConfig::default(), ShardConfig::single());
        assert!(!ShardConfig::single().is_sharded());
        assert!(ShardConfig::new(4).is_sharded());
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = ShardConfig::new(0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert_eq!(ShardConfig::try_new(0), Err(ConfigError::ZeroShards));
        assert_eq!(
            ShardConfig::try_new(ShardConfig::MAX_SHARDS + 1),
            Err(ConfigError::TooManyShards(ShardConfig::MAX_SHARDS + 1))
        );
        assert_eq!(ShardConfig::try_new(4), Ok(ShardConfig::new(4)));
    }

    #[test]
    fn plan_partitions_contiguously_and_exactly() {
        for &(n, s) in &[(0usize, 1usize), (1, 4), (7, 3), (10, 4), (100, 8)] {
            let plan = ShardPlan::new(n, s);
            assert_eq!(plan.bound(0), 0);
            assert_eq!(plan.bound(s), n);
            // Boundaries are monotone and cover every index exactly once.
            let mut cursor = 0;
            for i in 0..n {
                let k = plan.shard_of(i, cursor);
                assert!(k >= cursor, "cursor never moves backwards");
                assert!(plan.bound(k) <= i && i < plan.bound(k + 1));
                cursor = k;
            }
        }
    }

    #[test]
    fn plan_balances_within_one() {
        let plan = ShardPlan::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|k| plan.bound(k + 1) - plan.bound(k)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }
}
