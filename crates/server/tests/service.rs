//! End-to-end service tests over real loopback TCP: mixed-mode
//! sessions verified against solo runs, backpressure isolation under a
//! stalled evaluator, malformed-frame teardown, and typed rejections.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use arm2gc_comm::{Channel, TcpChannel};
use arm2gc_core::{run_two_party_opts, SessionOptions};
use arm2gc_proto::Message;
use arm2gc_server::{client, workload, ClientError, GarblerService, ServiceConfig, SessionError};

/// Polls `cond` for up to five seconds.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn mixed_mode_sessions_match_solo_runs() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(2)).expect("bind service");
    let addr = svc.local_addr();
    let modes = [(1usize, 1usize), (2, 1), (1, 8), (2, 8)];
    for (k, &(shards, instances)) in modes.iter().enumerate() {
        let family = workload::FAMILIES[k % workload::FAMILIES.len()];
        let name = format!("{family}:{k}");
        let opts = SessionOptions::new().shards(shards).instances(instances);
        let run = client::run_session(addr, &name, &opts).expect("service session");
        let wl = workload::resolve(&name, instances).expect("known workload");
        let (solo_a, solo_b) = run_two_party_opts(
            &wl.circuit,
            &wl.alices,
            &wl.bobs,
            &wl.publics,
            wl.cycles,
            &opts,
        );
        assert_eq!(run.outcome.lanes.len(), instances, "{name}: lane count");
        for (lane, (got, want)) in run.outcome.lanes.iter().zip(&solo_b.lanes).enumerate() {
            assert_eq!(got.outputs, want.outputs, "{name} lane {lane}: outputs");
            assert_eq!(got.stats, want.stats, "{name} lane {lane}: cost counters");
            assert_eq!(
                got.outputs.concat(),
                wl.expected[lane],
                "{name} lane {lane}: cleartext model"
            );
        }
        // The service's per-session record carries the garbler-side
        // counters; those must equal the solo garbler's too.
        wait_until("session recorded", || svc.records().len() == k + 1);
        let record = &svc.records()[k];
        assert_eq!(record.workload, name);
        assert_eq!((record.shards, record.instances), (shards, instances));
        let stats = record.result.as_ref().expect("session succeeded");
        let solo_stats: Vec<_> = solo_a.lanes.iter().map(|l| l.stats).collect();
        assert_eq!(*stats, solo_stats, "{name}: service vs solo garbler stats");
    }
    wait_until("all sessions complete", || {
        svc.metrics().sessions_completed == 4
    });
    let m = svc.metrics();
    assert_eq!(m.sessions_accepted, 4);
    assert_eq!(m.sessions_completed, 4);
    assert_eq!(m.sessions_failed, 0);
    assert_eq!(m.sessions_active, 0);
    assert!(m.tables_sent > 0);
    assert!(m.table_bytes_sent >= 32 * m.tables_sent);
    svc.shutdown();
}

#[test]
fn stalled_evaluator_does_not_block_other_sessions() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(2)).expect("bind service");
    let addr = svc.local_addr();
    let opts = SessionOptions::new();

    // A client that completes the preamble and then stalls: its
    // garbler job starts, sends its hello through the bounded send
    // queue, and wedges waiting for a reply — holding one worker.
    let stalled = client::connect(addr, "compare32:99", &opts).expect("stalled preamble");
    wait_until("stalled session occupies a worker", || {
        svc.metrics().sessions_active >= 1
    });

    // Meanwhile other tenants come and go on the remaining worker.
    for k in 0..3 {
        let name = format!("sum32:{k}");
        let run = client::run_session(addr, &name, &opts).expect("concurrent session");
        let wl = workload::resolve(&name, 1).expect("known workload");
        assert_eq!(run.outcome.lanes[0].outputs.concat(), wl.expected[0]);
    }
    wait_until("other sessions complete around the stall", || {
        svc.metrics().sessions_completed == 3
    });
    let m = svc.metrics();
    assert_eq!(m.sessions_completed, 3);
    assert_eq!(m.sessions_failed, 0);
    assert!(
        m.sessions_active >= 1,
        "stalled session still holds its worker"
    );
    assert!(m.job_queue_high_water >= 1);
    assert!(
        m.send_queue_high_water >= 1,
        "stalled garbler queued frames"
    );

    // Unstall: the parked session still completes correctly.
    let wl = workload::resolve("compare32:99", 1).expect("known workload");
    let run = client::drive(stalled, &wl, &opts).expect("stalled session completes");
    assert_eq!(run.outcome.lanes[0].outputs.concat(), wl.expected[0]);
    wait_until("stalled session completes", || {
        svc.metrics().sessions_completed == 4
    });
    assert_eq!(svc.metrics().sessions_failed, 0);
    svc.shutdown();
}

#[test]
fn malformed_frame_tears_down_only_its_session() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(2)).expect("bind service");
    let addr = svc.local_addr();
    let opts = SessionOptions::new();

    // Valid preamble, then garbage where the handshake belongs.
    let mut conn = client::connect(addr, "compare32:5", &opts).expect("preamble");
    let _hello = conn.main.recv().expect("garbler speaks first");
    conn.main
        .send(b"\xffnot a protocol frame")
        .expect("send garbage");
    wait_until("poisoned session torn down", || {
        svc.metrics().sessions_failed == 1
    });

    // Only that session died; the next one is served normally.
    let run = client::run_session(addr, "compare32:6", &opts).expect("service survives");
    let wl = workload::resolve("compare32:6", 1).expect("known workload");
    assert_eq!(run.outcome.lanes[0].outputs.concat(), wl.expected[0]);
    wait_until("clean session completes", || {
        svc.metrics().sessions_completed == 1
    });
    let m = svc.metrics();
    assert_eq!((m.sessions_failed, m.sessions_completed), (1, 1));
    assert_eq!(m.sessions_active, 0);

    let records = svc.records();
    assert_eq!(records.len(), 2);
    // The poisoned session's record names the exact typed reason: a
    // corrupt frame, attributed to the garbage tag byte it led with.
    assert_eq!(
        records[0].result.as_ref().unwrap_err(),
        &SessionError::CorruptFrame { tag: 0xff },
        "poisoned session recorded its reason"
    );
    assert_eq!(svc.metrics().failed_corrupt_frame, 1);
    assert!(records[1].result.is_ok());
    svc.shutdown();
}

#[test]
fn invalid_requests_get_typed_rejections() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(1)).expect("bind service");
    let addr = svc.local_addr();

    let reject_reason = |frame: Vec<u8>| -> String {
        let mut ch =
            TcpChannel::from_stream(TcpStream::connect(addr).expect("connect")).expect("channel");
        ch.send(&frame).expect("send request");
        match Message::decode(&ch.recv().expect("verdict")).expect("decode verdict") {
            Message::ServiceReject { reason } => reason,
            other => panic!("expected ServiceReject, got {other:?}"),
        }
    };
    let request = |shards: u8, instances: u16, workload: &str| {
        reject_reason(
            Message::ServiceRequest {
                shards,
                instances,
                ot_token: 0,
                workload: workload.to_string(),
            }
            .encode(),
        )
    };

    assert!(request(0, 1, "compare32:1").contains("shard"));
    assert!(request(1, 0, "compare32:1").contains("instance"));
    assert!(request(1, 1, "aes512:1").contains("unknown workload"));
    assert!(reject_reason(b"\x00nonsense".to_vec()).contains("malformed"));

    let m = svc.metrics();
    assert_eq!(m.sessions_rejected, 4);
    assert_eq!(m.sessions_accepted, 0);

    // The client validates locally too — a zero shard count never even
    // reaches the wire.
    let err = client::run_session(addr, "compare32:1", &SessionOptions::new().shards(0))
        .expect_err("local validation");
    assert!(matches!(err, ClientError::Config(_)), "got {err:?}");
    svc.shutdown();
}
