//! The fault matrix: every injection point × {shards 1, 2} ×
//! {instances 1, 8}, over real loopback TCP.
//!
//! Each cell binds a fresh service, runs one session with a scripted
//! [`FaultPlan`] against it, and runs two clean co-tenant sessions of
//! the same mode alongside. The contract asserted per cell:
//!
//! 1. **No hang** — every cell finishes (the suite would time out in
//!    CI otherwise; deadlines bound every wait).
//! 2. **Exact typed reason** — the faulted session's record carries the
//!    precise [`SessionError`] variant its injection must produce.
//! 3. **Containment** — co-tenant outcomes are byte-identical to solo
//!    runs of the same workload.
//! 4. **Exact books** — accepted/completed/failed and the per-reason
//!    failure buckets account for every session, no more, no less.
//!
//! Alongside the matrix: regression tests for the parked-session leak
//! (attach deadline frees the slot), graceful drain shutdown, and the
//! client's deterministic retry policy.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use arm2gc_comm::{Channel, FaultChannel, FaultKind, FaultPlan, TcpChannel};
use arm2gc_core::{run_two_party_opts, InstancedOutcome, SessionOptions};
use arm2gc_crypto::Prg;
use arm2gc_proto::Message;
use arm2gc_server::{
    client, workload, ClientError, FailureReason, GarblerService, RetryPolicy, ServiceConfig,
    SessionError,
};

/// Tag byte of the `Hello` frame — the first protocol frame each side
/// sends, and the one every in-band injection in the matrix targets.
const TAG_HELLO: u8 = 1;

/// Socket deadline used by cells that need one (the stall cell) — long
/// enough that clean loopback co-tenants never trip it.
const IO_TIMEOUT: Duration = Duration::from_millis(400);

/// Polls `cond` for up to ten seconds — the per-cell no-hang bound.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The in-band injection points of the matrix. Each names the fault
/// applied to the evaluator's first protocol frame (its `Hello`) and
/// the exact typed reason the service must record.
#[derive(Clone, Copy, Debug)]
enum Inject {
    /// Flip a magic byte: the frame arrives, decodes to garbage.
    CorruptHello,
    /// Deliver a strict prefix of the frame body.
    TruncateHello,
    /// Deliver a prefix, then close — a write that died mid-frame.
    ShortWriteHello,
    /// Close instead of sending; the service sees a real disconnect.
    Disconnect,
    /// Swallow the frame; the service's read deadline elapses.
    SilentDrop,
}

impl Inject {
    const ALL: [Inject; 5] = [
        Inject::CorruptHello,
        Inject::TruncateHello,
        Inject::ShortWriteHello,
        Inject::Disconnect,
        Inject::SilentDrop,
    ];

    /// The scripted plan: frame 0 of the evaluator's send direction is
    /// its `Hello` (the garbler speaks first; the preamble is not
    /// wrapped).
    fn plan(self, seed: u64) -> FaultPlan {
        let kind = match self {
            // XOR the first magic byte: a full-size frame that fails
            // decode deterministically ("bad magic"). A seed-chosen
            // flip could land in an opaque byte and decode fine.
            Inject::CorruptHello => FaultKind::CorruptAt(vec![(1, 0xff)]),
            Inject::TruncateHello => FaultKind::Truncate,
            Inject::ShortWriteHello => FaultKind::ShortWrite,
            Inject::Disconnect => FaultKind::Disconnect,
            Inject::SilentDrop => FaultKind::DropFrame,
        };
        FaultPlan::new(seed).on_send(0, kind)
    }

    /// The exact typed reason the service must record for this cell.
    fn expected(self) -> SessionError {
        match self {
            Inject::CorruptHello | Inject::TruncateHello | Inject::ShortWriteHello => {
                SessionError::CorruptFrame { tag: TAG_HELLO }
            }
            Inject::Disconnect => SessionError::PeerDisconnect,
            Inject::SilentDrop => SessionError::Timeout,
        }
    }

    /// The metrics bucket the failure must land in.
    fn bucket(self) -> FailureReason {
        self.expected().reason()
    }
}

/// Connects a session, wraps its main channel in the faulted plan, and
/// drives the evaluator until the injected fault kills it. The drive's
/// error is the client's own view; the assertions live server-side.
fn run_faulted_session(
    addr: SocketAddr,
    name: &str,
    opts: &SessionOptions,
    plan: FaultPlan,
) -> std::thread::JoinHandle<()> {
    let conn = client::connect(addr, name, opts).expect("faulted session preamble");
    let wl = workload::resolve(name, opts.instances).expect("known workload");
    let opts = *opts;
    std::thread::spawn(move || {
        let mut main = FaultChannel::new(conn.main, plan);
        let shard_chs: Vec<Box<dyn Channel>> = conn
            .shard_chs
            .into_iter()
            .map(|c| Box::new(c) as Box<dyn Channel>)
            .collect();
        let mut prg = Prg::from_entropy();
        let mut ot = opts.ot.receiver(opts.ot_config, &mut prg);
        let _ = arm2gc_core::drive_evaluator(
            &wl.circuit,
            &wl.bobs,
            &wl.publics,
            wl.cycles,
            &mut main,
            shard_chs,
            ot.as_mut(),
            &opts,
        );
    })
}

/// The per-mode solo baselines, computed once and shared by every cell
/// of that mode.
fn solo_baseline(
    cache: &mut HashMap<(usize, usize), InstancedOutcome>,
    name: &str,
    shards: usize,
    instances: usize,
) -> InstancedOutcome {
    cache
        .entry((shards, instances))
        .or_insert_with(|| {
            let wl = workload::resolve(name, instances).expect("known workload");
            let opts = SessionOptions::new().shards(shards).instances(instances);
            let (_, solo_b) = run_two_party_opts(
                &wl.circuit,
                &wl.alices,
                &wl.bobs,
                &wl.publics,
                wl.cycles,
                &opts,
            );
            solo_b
        })
        .clone()
}

/// One matrix cell: fault one session, verify typed teardown, clean
/// co-tenants, and exact accounting.
fn run_cell(
    inject: Inject,
    shards: usize,
    instances: usize,
    baselines: &mut HashMap<(usize, usize), InstancedOutcome>,
) {
    let cell = format!("{inject:?} x {shards} shards x {instances} lanes");
    let svc = GarblerService::bind(
        "127.0.0.1:0",
        ServiceConfig::new().workers(2).io_timeout(Some(IO_TIMEOUT)),
    )
    .expect("bind service");
    let addr = svc.local_addr();
    let opts = SessionOptions::new().shards(shards).instances(instances);
    let clean_name = format!("sum32:{}", shards * 10 + instances);

    // Fire the fault; seed fixed so a failing cell replays exactly.
    let faulted = run_faulted_session(addr, &clean_name, &opts, inject.plan(0xfau64));

    // Clean co-tenants run while the faulted session is live (or
    // failing) — containment means they never notice.
    let want = solo_baseline(baselines, &clean_name, shards, instances);
    for k in 0..2 {
        let run = client::run_session(addr, &clean_name, &opts)
            .unwrap_or_else(|e| panic!("{cell}: co-tenant {k} failed: {e}"));
        assert_eq!(run.outcome.lanes.len(), want.lanes.len(), "{cell}: lanes");
        for (lane, (got, sol)) in run.outcome.lanes.iter().zip(&want.lanes).enumerate() {
            assert_eq!(got.outputs, sol.outputs, "{cell} lane {lane}: outputs");
            assert_eq!(got.stats, sol.stats, "{cell} lane {lane}: counters");
        }
    }

    wait_until("faulted session torn down", || {
        svc.metrics().sessions_failed == 1
    });
    wait_until("books settle", || {
        let m = svc.metrics();
        m.sessions_completed == 2 && m.sessions_active == 0
    });
    faulted.join().expect("faulted client thread exits");

    // Exact books: three accepted, two completed, one failed — in
    // exactly the expected bucket, all others empty.
    let m = svc.metrics();
    assert_eq!(m.sessions_accepted, 3, "{cell}: accepted");
    assert_eq!(m.sessions_rejected, 0, "{cell}: rejected");
    assert_eq!(m.sessions_completed, 2, "{cell}: completed");
    assert_eq!(m.sessions_failed, 1, "{cell}: failed");
    let buckets = [
        (FailureReason::Timeout, m.failed_timeout),
        (FailureReason::PeerDisconnect, m.failed_peer_disconnect),
        (FailureReason::CorruptFrame, m.failed_corrupt_frame),
        (FailureReason::Shutdown, m.failed_shutdown),
        (FailureReason::Other, m.failed_other),
    ];
    for (reason, count) in buckets {
        let want = u64::from(reason == inject.bucket());
        assert_eq!(count, want, "{cell}: bucket {reason:?}");
    }
    assert_eq!(m.rejected_attach_timeout, 0, "{cell}: attach bucket");

    // The faulted record names the exact typed reason.
    let records = svc.records();
    assert_eq!(records.len(), 3, "{cell}: records");
    let failed: Vec<_> = records.iter().filter(|r| r.result.is_err()).collect();
    assert_eq!(failed.len(), 1, "{cell}: one failed record");
    assert_eq!(
        failed[0].result.as_ref().unwrap_err(),
        &inject.expected(),
        "{cell}: typed reason"
    );
    assert_eq!(
        (failed[0].shards, failed[0].instances),
        (shards, instances),
        "{cell}: failed record mode"
    );
    svc.shutdown();
}

#[test]
fn fault_matrix_single_shard_single_lane() {
    let mut baselines = HashMap::new();
    for inject in Inject::ALL {
        run_cell(inject, 1, 1, &mut baselines);
    }
}

#[test]
fn fault_matrix_single_shard_batched() {
    let mut baselines = HashMap::new();
    for inject in Inject::ALL {
        run_cell(inject, 1, 8, &mut baselines);
    }
}

#[test]
fn fault_matrix_sharded_single_lane() {
    let mut baselines = HashMap::new();
    for inject in Inject::ALL {
        run_cell(inject, 2, 1, &mut baselines);
    }
}

#[test]
fn fault_matrix_sharded_batched() {
    let mut baselines = HashMap::new();
    for inject in Inject::ALL {
        run_cell(inject, 2, 8, &mut baselines);
    }
}

/// Regression: a sharded session whose attachments never arrive used to
/// park forever, leaking its pending slot. Now the reaper expires it at
/// the attach deadline — typed record, dedicated counter, freed slot —
/// and the waiting client is told why.
#[test]
fn parked_sessions_expire_at_the_attach_deadline() {
    let svc = GarblerService::bind(
        "127.0.0.1:0",
        ServiceConfig::new()
            .workers(2)
            .attach_timeout(Some(Duration::from_millis(150))),
    )
    .expect("bind service");
    let addr = svc.local_addr();

    // Three sharded sessions that request, get accepted, then never
    // attach their shard sub-streams.
    let mut parked = Vec::new();
    for _ in 0..3 {
        let mut ch =
            TcpChannel::from_stream(TcpStream::connect(addr).expect("connect")).expect("channel");
        ch.send(
            &Message::ServiceRequest {
                shards: 2,
                instances: 1,
                ot_token: 0,
                workload: "sum32:1".into(),
            }
            .encode(),
        )
        .expect("request");
        match Message::decode(&ch.recv().expect("verdict")).expect("decode") {
            Message::ServiceAccept { .. } => {}
            other => panic!("expected accept, got {other:?}"),
        }
        parked.push(ch);
    }

    wait_until("reaper expires all parked sessions", || {
        svc.metrics().rejected_attach_timeout == 3
    });
    let m = svc.metrics();
    assert_eq!(m.sessions_accepted, 3);
    assert_eq!(m.sessions_failed, 3);
    assert_eq!(m.rejected_attach_timeout, 3);
    assert_eq!(m.sessions_active, 0, "parked sessions never ran");

    // The waiting clients are told why before their sockets close.
    for ch in &mut parked {
        match Message::decode(&ch.recv().expect("reject frame")).expect("decode") {
            Message::ServiceReject { reason } => {
                assert!(reason.contains("attach deadline"), "reason: {reason}");
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    // Every expired record is typed, and the slots really are free: a
    // complete sharded session is served normally afterwards.
    for r in svc.records() {
        assert_eq!(r.result.unwrap_err(), SessionError::AttachTimeout);
    }
    let opts = SessionOptions::new().shards(2);
    let run = client::run_session(addr, "sum32:1", &opts).expect("slot freed");
    let wl = workload::resolve("sum32:1", 1).expect("known workload");
    assert_eq!(run.outcome.lanes[0].outputs.concat(), wl.expected[0]);
    wait_until("clean session recorded", || {
        svc.metrics().sessions_completed == 1
    });
    svc.shutdown();
}

/// Graceful shutdown drains active sessions inside the window and
/// discards parked ones with a typed `Shutdown` record.
#[test]
fn shutdown_drains_active_sessions_and_discards_parked_ones() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(2)).expect("bind service");
    let addr = svc.local_addr();

    // One parked sharded session (never attaches; attach deadline is
    // the long default, so only shutdown can reap it).
    let mut parked =
        TcpChannel::from_stream(TcpStream::connect(addr).expect("connect")).expect("channel");
    parked
        .send(
            &Message::ServiceRequest {
                shards: 2,
                instances: 1,
                ot_token: 0,
                workload: "sum32:1".into(),
            }
            .encode(),
        )
        .expect("request");
    let _ = parked.recv().expect("accepted");

    // One live session: preamble done, evaluator deliberately held, so
    // its garbler job is active when the drain starts.
    let opts = SessionOptions::new();
    let stalled = client::connect(addr, "compare32:3", &opts).expect("live preamble");
    wait_until("live session active", || svc.metrics().sessions_active >= 1);
    assert_eq!(svc.metrics().sessions_accepted, 2);

    // Drain in a thread (it blocks on the active session), then drive
    // the held session to completion inside the window.
    let drain = std::thread::spawn(move || svc.shutdown_drain(Duration::from_secs(10)));
    let wl = workload::resolve("compare32:3", 1).expect("known workload");
    let run = client::drive(stalled, &wl, &opts).expect("live session completes");
    assert_eq!(run.outcome.lanes[0].outputs.concat(), wl.expected[0]);
    let drained = drain.join().expect("drain thread");
    assert!(drained, "active session finished inside the drain window");

    // The parked session was told and typed. (The service is consumed;
    // its books were read through the drain return + client result.)
    match Message::decode(&parked.recv().expect("reject frame")).expect("decode") {
        Message::ServiceReject { reason } => {
            assert!(reason.contains("shut down"), "reason: {reason}");
        }
        other => panic!("expected reject, got {other:?}"),
    }

    // New connections are refused outright.
    let err =
        client::run_session(addr, "sum32:1", &SessionOptions::new()).expect_err("service is gone");
    assert!(
        matches!(
            err,
            ClientError::Io(_) | ClientError::Closed | ClientError::Rejected(_)
        ),
        "got {err:?}"
    );
}

/// The retry policy gives up with a typed error carrying the attempt
/// count and last failure — and its backoff schedule is deterministic.
#[test]
fn connect_retry_gives_up_with_a_typed_error() {
    // Bind-then-drop: the port is (almost certainly) refusing.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let policy = RetryPolicy {
        attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        seed: 7,
    };
    let t0 = Instant::now();
    let err = client::connect_with_retry(addr, "sum32:1", &SessionOptions::new(), &policy)
        .expect_err("nothing is listening");
    match err {
        ClientError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(last.is_transient(), "last error transient: {last:?}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // All backoffs are bounded by max_delay; three attempts against a
    // refusing port finish promptly (no unbounded spin).
    assert!(t0.elapsed() < Duration::from_secs(5));
}

/// Permanent answers are not retried: a typed rejection surfaces
/// immediately, un-wrapped, after exactly one attempt.
#[test]
fn rejections_are_not_retried() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(1)).expect("bind service");
    let addr = svc.local_addr();
    let policy = RetryPolicy::default();
    let err =
        client::run_session_with_retry(addr, "no-such-workload:1", &SessionOptions::new(), &policy)
            .expect_err("unknown workload");
    assert!(
        matches!(err, ClientError::UnknownWorkload(_)),
        "got {err:?}"
    );
    // Unknown workloads are caught locally; a server-side rejection is
    // equally final.
    let err =
        client::connect_with_retry(addr, "sum32:1", &SessionOptions::new().shards(0), &policy)
            .expect_err("invalid options");
    assert!(matches!(err, ClientError::Config(_)), "got {err:?}");
    assert_eq!(
        svc.metrics().sessions_rejected,
        0,
        "nothing bogus ever reached the wire"
    );
    svc.shutdown();
}
