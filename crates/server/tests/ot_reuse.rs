//! Base-OT reuse across a client's sessions, over real loopback TCP.
//!
//! The contract: N sequential sessions under one resume token pay
//! exactly one Naor–Pinkas base-OT setup (pinned via the deterministic
//! `ot_base_setups` counter), produce outputs byte-identical to
//! fresh-setup runs, and an evicted or foreign token transparently
//! falls back to a fresh setup. Hostile bytes at the OT seam tear down
//! exactly that session with a typed reason — the service keeps
//! serving.

use std::time::{Duration, Instant};

use arm2gc_comm::Channel;
use arm2gc_core::{run_two_party_opts, OtBackend, OtConfig, SessionOptions};
use arm2gc_proto::{Message, SessionRole, PROTOCOL_VERSION};
use arm2gc_server::{
    client, workload, ClientError, FailureReason, GarblerService, ServiceConfig, SessionError,
};

/// Polls `cond` for up to five seconds.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A service running the real OT stack over the fast test group.
fn bind_np_service(config: ServiceConfig) -> GarblerService {
    GarblerService::bind(
        "127.0.0.1:0",
        config
            .ot(OtBackend::NaorPinkasIknp)
            .ot_config(OtConfig::TEST),
    )
    .expect("bind service")
}

fn np_opts() -> SessionOptions {
    SessionOptions::new()
        .ot(OtBackend::NaorPinkasIknp)
        .ot_config(OtConfig::TEST)
}

#[test]
fn sessions_on_one_token_pay_one_base_setup() {
    let svc = bind_np_service(ServiceConfig::new().workers(2));
    let addr = svc.local_addr();
    let opts = np_opts();
    let name = "compare32:7";
    let wl = workload::resolve(name, 1).expect("known workload");
    let (_, solo_b) = run_two_party_opts(
        &wl.circuit,
        &wl.alices,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &opts,
    );

    let mut resume = client::OtResume::new(0xb0b);
    for k in 0..3 {
        let run = client::run_session_resumed(addr, name, &opts, &mut resume)
            .unwrap_or_else(|e| panic!("session {k}: {e}"));
        // Reused state never changes what the session computes.
        for (lane, want) in run.outcome.lanes.iter().zip(&solo_b.lanes) {
            assert_eq!(lane.outputs, want.outputs, "session {k}: outputs");
        }
        assert!(resume.state.is_some(), "session {k} banked receiver state");
        // Sequential reuse means waiting for the garbler to bank its
        // state before the next request checks the cache.
        wait_until("session recorded", || svc.records().len() == k + 1);
    }
    let m = svc.metrics();
    assert_eq!(m.sessions_completed, 3);
    // The tentpole number: three sessions, one base setup. Every OT
    // after the first session extends the cached IKNP columns.
    assert_eq!(m.ot_base_setups, 1, "one setup across the token's sessions");
    assert_eq!(m.ot_cache_evicted, 0);
    // `ot_extended` is a pure function of the workloads run: equal
    // per-session label counts, three sessions.
    assert_eq!(m.ot_extended % 3, 0);
    assert!(m.ot_extended > 0);
    svc.shutdown();
}

#[test]
fn distinct_tokens_and_token_zero_each_pay_their_own_setup() {
    let svc = bind_np_service(ServiceConfig::new().workers(2));
    let addr = svc.local_addr();
    let opts = np_opts();
    let name = "sum32:3";

    let mut first = client::OtResume::new(1);
    let mut second = client::OtResume::new(2);
    client::run_session_resumed(addr, name, &opts, &mut first).expect("token 1");
    client::run_session_resumed(addr, name, &opts, &mut second).expect("token 2");
    // Token 0 is the opt-out: nothing cached, nothing resumed.
    let mut none = client::OtResume::new(0);
    client::run_session_resumed(addr, name, &opts, &mut none).expect("token 0");
    assert!(none.state.is_none(), "token 0 banks no state");

    wait_until("sessions recorded", || svc.records().len() == 3);
    assert_eq!(svc.metrics().ot_base_setups, 3);
    svc.shutdown();
}

#[test]
fn evicted_state_falls_back_to_a_fresh_setup() {
    let svc = bind_np_service(
        ServiceConfig::new()
            .workers(1)
            .ot_cache_timeout(Some(Duration::from_millis(50))),
    );
    let addr = svc.local_addr();
    let opts = np_opts();
    let name = "compare32:9";

    let mut resume = client::OtResume::new(0xcafe);
    client::run_session_resumed(addr, name, &opts, &mut resume).expect("first session");
    wait_until("cache eviction", || svc.metrics().ot_cache_evicted == 1);

    // The service no longer holds the state; the accept comes back
    // un-resumed, the client drops its stale half, and both ends pay a
    // fresh setup — transparently.
    let run =
        client::run_session_resumed(addr, name, &opts, &mut resume).expect("post-eviction session");
    let wl = workload::resolve(name, 1).expect("known workload");
    let (_, solo_b) = run_two_party_opts(
        &wl.circuit,
        &wl.alices,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &opts,
    );
    assert_eq!(run.outcome.lanes[0].outputs, solo_b.lanes[0].outputs);

    wait_until("sessions recorded", || svc.records().len() == 2);
    assert_eq!(svc.metrics().ot_base_setups, 2);
    svc.shutdown();
}

#[test]
fn failed_session_drops_state_on_both_ends() {
    let svc = bind_np_service(ServiceConfig::new().workers(2));
    let addr = svc.local_addr();
    let opts = np_opts();
    let mut resume = client::OtResume::new(0xdead);
    client::run_session_resumed(addr, "sum32:1", &opts, &mut resume).expect("first session");
    wait_until("first session recorded", || svc.records().len() == 1);

    // Fail the second session mid-protocol: complete the preamble with
    // the token, then disconnect. The service drops the checked-out
    // state instead of returning it.
    let conn = client::connect_with_token(addr, "sum32:1", &opts, resume.token).expect("preamble");
    assert!(conn.resumed, "second session checked the state out");
    drop(conn);
    wait_until("failed session recorded", || {
        svc.metrics().sessions_failed == 1
    });

    // Third session: the cache slot is empty again, so the accept is
    // un-resumed and the client's (still banked) state is discarded
    // for a fresh setup.
    client::run_session_resumed(addr, "sum32:1", &opts, &mut resume).expect("post-failure session");
    wait_until("sessions recorded", || {
        svc.metrics().sessions_completed == 2
    });
    // Session 1 paid a setup; session 2 died before any OT ran (0);
    // session 3 pays a *fresh* setup because the failure forfeited the
    // cached state — were it still cached, the total would stay 1.
    assert_eq!(
        svc.metrics().ot_base_setups,
        2,
        "failure forfeits the cached setup"
    );
    svc.shutdown();
}

/// The fault-matrix cell at the OT seam: a hostile client completes
/// the handshake, then feeds poison where the Naor–Pinkas `C` element
/// belongs. Each case must tear down exactly its own session with
/// [`SessionError::Protocol`] — never a panic, never another tenant.
#[test]
fn hostile_ot_wire_bytes_fail_typed_and_contained() {
    let svc = bind_np_service(ServiceConfig::new().workers(2));
    let addr = svc.local_addr();
    let opts = np_opts();
    let width = 16; // element width of the 127-bit test group

    let cases: &[(&str, Vec<u8>)] = &[
        // inv(0) = 0 under Fermat inversion — accepting a zero C would
        // collapse both pads to known values.
        ("zero C", vec![0u8; width]),
        ("wrong-width C", vec![7u8; 5]),
        ("empty C", Vec::new()),
        // 2^127 - 1 ≡ 0: reduces to the degenerate element.
        ("unreduced C", vec![0xff; width]),
    ];
    for (k, (what, poison)) in cases.iter().enumerate() {
        let mut conn = client::connect(addr, "sum32:1", &opts).expect("preamble");
        // Garbler speaks first; answer its hello, take the direct
        // labels, then poison the first OT frame.
        let hello = Message::decode(&conn.main.recv().expect("garbler hello")).expect("decode");
        assert!(matches!(hello, Message::Hello { .. }));
        conn.main
            .send(
                &Message::Hello {
                    version: PROTOCOL_VERSION,
                    role: SessionRole::Evaluator,
                }
                .encode(),
            )
            .expect("evaluator hello");
        let labels = Message::decode(&conn.main.recv().expect("direct labels")).expect("decode");
        assert!(matches!(labels, Message::DirectLabels(_)));
        conn.main
            .send(&Message::OtPayload(poison.clone()).encode())
            .expect("poison frame");
        wait_until(what, || svc.metrics().sessions_failed == k as u64 + 1);
        let records = svc.records();
        let record = records.last().expect("failed session recorded");
        assert!(
            matches!(record.result, Err(SessionError::Protocol(_))),
            "{what}: got {:?}",
            record.result
        );
    }

    // Containment: the service still completes an honest session, and
    // the books account for every one.
    client::run_session(addr, "sum32:1", &opts).expect("honest session after poison");
    wait_until("honest session recorded", || {
        svc.metrics().sessions_completed == 1
    });
    let m = svc.metrics();
    assert_eq!(m.sessions_failed, cases.len() as u64);
    assert_eq!(m.failed_other, cases.len() as u64);
    svc.shutdown();
}

/// A token on an [`OtBackend::Insecure`] service is carried but inert:
/// accepted, never resumed, no setups booked.
#[test]
fn insecure_backend_ignores_tokens() {
    let svc =
        GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(1)).expect("bind service");
    let addr = svc.local_addr();
    let opts = SessionOptions::new();
    let conn = client::connect_with_token(addr, "sum32:1", &opts, 77).expect("preamble");
    assert!(!conn.resumed);
    drop(conn);
    let mut resume = client::OtResume::new(77);
    client::run_session_resumed(addr, "sum32:1", &opts, &mut resume).expect("session");
    assert!(resume.state.is_none());
    let _ = svc.metrics();
    assert_eq!(svc.metrics().ot_base_setups, 0);
    svc.shutdown();
}

/// `ClientError::ResumeDesync` is typed and permanent (never retried).
#[test]
fn resume_desync_is_a_typed_permanent_error() {
    let e = ClientError::ResumeDesync;
    assert!(!e.is_transient());
    assert!(e.to_string().contains("base-OT"));
    // The reason bucket for protocol-level teardown stays `Other`.
    assert_eq!(
        SessionError::Protocol("zero group element").reason(),
        FailureReason::Other
    );
}
