//! Deterministic service metrics.
//!
//! Every counter is an event count or a queue-depth high-water mark —
//! no timestamps, no rates — so identical request sequences produce
//! identical snapshots and the CI harness can pin them byte-for-byte.
//! Rates (tables/sec) are computed by observers such as the `load_gen`
//! binary, which own the wall clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters of one [`GarblerService`](crate::GarblerService).
///
/// Updated lock-free from the accept loop, preamble threads and worker
/// jobs; read via [`Metrics::snapshot`].
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_accepted: AtomicU64,
    sessions_rejected: AtomicU64,
    sessions_active: AtomicU64,
    sessions_completed: AtomicU64,
    sessions_failed: AtomicU64,
    tables_sent: AtomicU64,
    table_bytes_sent: AtomicU64,
    job_queue_depth: AtomicU64,
    job_queue_high_water: AtomicU64,
    send_queue_high_water: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sessions whose preamble was accepted (a `ServiceAccept` frame
    /// was sent).
    pub sessions_accepted: u64,
    /// Preambles turned away with a typed `ServiceReject` (bad
    /// configuration, unknown workload, malformed frame, server busy).
    pub sessions_rejected: u64,
    /// Sessions currently garbling on a worker.
    pub sessions_active: u64,
    /// Sessions that ran to completion.
    pub sessions_completed: u64,
    /// Sessions torn down by a protocol error mid-run.
    pub sessions_failed: u64,
    /// Garbled tables sent across all completed sessions.
    pub tables_sent: u64,
    /// Bytes of garbled tables across all completed sessions.
    pub table_bytes_sent: u64,
    /// Accepted sessions currently waiting for a free worker.
    pub job_queue_depth: u64,
    /// Most sessions ever waiting for a worker at once.
    pub job_queue_high_water: u64,
    /// Deepest any session's bounded send queue ever got (frames). A
    /// slow evaluator fills its own queue — and only its own — so this
    /// rising while other sessions complete is the backpressure
    /// isolation story in one number.
    pub send_queue_high_water: u64,
}

impl Metrics {
    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::SeqCst),
            sessions_rejected: self.sessions_rejected.load(Ordering::SeqCst),
            sessions_active: self.sessions_active.load(Ordering::SeqCst),
            sessions_completed: self.sessions_completed.load(Ordering::SeqCst),
            sessions_failed: self.sessions_failed.load(Ordering::SeqCst),
            tables_sent: self.tables_sent.load(Ordering::SeqCst),
            table_bytes_sent: self.table_bytes_sent.load(Ordering::SeqCst),
            job_queue_depth: self.job_queue_depth.load(Ordering::SeqCst),
            job_queue_high_water: self.job_queue_high_water.load(Ordering::SeqCst),
            send_queue_high_water: self.send_queue_high_water.load(Ordering::SeqCst),
        }
    }

    pub(crate) fn session_accepted(&self) {
        self.sessions_accepted.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn session_rejected(&self) {
        self.sessions_rejected.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn job_queued(&self) {
        let depth = self.job_queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.job_queue_high_water.fetch_max(depth, Ordering::SeqCst);
    }

    pub(crate) fn job_started(&self) {
        self.job_queue_depth.fetch_sub(1, Ordering::SeqCst);
        self.sessions_active.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn session_completed(&self, tables: u64, table_bytes: u64) {
        self.sessions_active.fetch_sub(1, Ordering::SeqCst);
        self.sessions_completed.fetch_add(1, Ordering::SeqCst);
        self.tables_sent.fetch_add(tables, Ordering::SeqCst);
        self.table_bytes_sent
            .fetch_add(table_bytes, Ordering::SeqCst);
    }

    pub(crate) fn session_failed(&self) {
        self.sessions_active.fetch_sub(1, Ordering::SeqCst);
        self.sessions_failed.fetch_add(1, Ordering::SeqCst);
    }

    /// Raises the send-queue high-water mark to at least `depth`.
    pub(crate) fn note_send_queue_depth(&self, depth: u64) {
        self.send_queue_high_water
            .fetch_max(depth, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_balance() {
        let m = Metrics::default();
        m.session_accepted();
        m.job_queued();
        m.job_queued();
        assert_eq!(m.snapshot().job_queue_high_water, 2);
        m.job_started();
        m.job_started();
        m.session_completed(10, 320);
        m.session_failed();
        let s = m.snapshot();
        assert_eq!(s.sessions_active, 0);
        assert_eq!(s.sessions_completed, 1);
        assert_eq!(s.sessions_failed, 1);
        assert_eq!(s.tables_sent, 10);
        assert_eq!(s.table_bytes_sent, 320);
        assert_eq!(s.job_queue_depth, 0);
    }

    #[test]
    fn high_water_is_monotone() {
        let m = Metrics::default();
        m.note_send_queue_depth(5);
        m.note_send_queue_depth(2);
        assert_eq!(m.snapshot().send_queue_high_water, 5);
    }
}
