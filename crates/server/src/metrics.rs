//! Deterministic service metrics.
//!
//! Every counter is an event count or a queue-depth high-water mark —
//! no timestamps, no rates — so identical request sequences produce
//! identical snapshots and the CI harness can pin them byte-for-byte.
//! Rates (tables/sec) are computed by observers such as the `load_gen`
//! binary, which own the wall clock.
//!
//! Failures are accounted per reason: `sessions_failed` always equals
//! the sum of the `failed_*` buckets plus `rejected_attach_timeout`
//! (parked sessions the reaper expired), so the fault-matrix suite can
//! assert exact books after every injected fault.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::FailureReason;

/// Shared counters of one [`GarblerService`](crate::GarblerService).
///
/// Updated lock-free from the accept loop, preamble threads and worker
/// jobs; read via [`Metrics::snapshot`].
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_accepted: AtomicU64,
    sessions_rejected: AtomicU64,
    sessions_active: AtomicU64,
    sessions_completed: AtomicU64,
    sessions_failed: AtomicU64,
    failed_timeout: AtomicU64,
    failed_peer_disconnect: AtomicU64,
    failed_corrupt_frame: AtomicU64,
    failed_shutdown: AtomicU64,
    failed_other: AtomicU64,
    rejected_attach_timeout: AtomicU64,
    rejected_preamble_timeout: AtomicU64,
    ot_base_setups: AtomicU64,
    ot_extended: AtomicU64,
    ot_cache_evicted: AtomicU64,
    tables_sent: AtomicU64,
    table_bytes_sent: AtomicU64,
    job_queue_depth: AtomicU64,
    job_queue_high_water: AtomicU64,
    send_queue_high_water: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sessions whose preamble was accepted (a `ServiceAccept` frame
    /// was sent).
    pub sessions_accepted: u64,
    /// Preambles turned away with a typed `ServiceReject` (bad
    /// configuration, unknown workload, malformed frame, server busy)
    /// or abandoned at the preamble deadline.
    pub sessions_rejected: u64,
    /// Sessions currently garbling on a worker.
    pub sessions_active: u64,
    /// Sessions that ran to completion.
    pub sessions_completed: u64,
    /// Sessions torn down after acceptance — by a mid-run failure, the
    /// attach reaper, or shutdown. Always the sum of the `failed_*`
    /// buckets plus [`rejected_attach_timeout`].
    ///
    /// [`rejected_attach_timeout`]: Self::rejected_attach_timeout
    pub sessions_failed: u64,
    /// Failed sessions whose socket deadline elapsed.
    pub failed_timeout: u64,
    /// Failed sessions whose peer disconnected mid-run.
    pub failed_peer_disconnect: u64,
    /// Failed sessions torn down by an undecodable frame.
    pub failed_corrupt_frame: u64,
    /// Sessions (parked or running) torn down by service shutdown.
    pub failed_shutdown: u64,
    /// Failed sessions outside the dedicated buckets (io, config,
    /// workload, session-level protocol violations).
    pub failed_other: u64,
    /// Parked sharded sessions the reaper expired because their
    /// remaining `ServiceAttach` connections never arrived in time.
    /// Counted inside [`sessions_failed`](Self::sessions_failed).
    pub rejected_attach_timeout: u64,
    /// Connections dropped because no complete preamble frame arrived
    /// within the preamble deadline. Counted inside
    /// [`sessions_rejected`](Self::sessions_rejected).
    pub rejected_preamble_timeout: u64,
    /// Naor–Pinkas base-OT setups paid across all sessions. With base-OT
    /// reuse, N sequential sessions from one client under one resume
    /// token cost exactly 1.
    pub ot_base_setups: u64,
    /// OTs served by IKNP extension across all sessions (fresh or
    /// resumed columns). Counts transferred labels, so it is a pure
    /// function of the workloads run.
    pub ot_extended: u64,
    /// Cached OT resume states the reaper evicted at their deadline
    /// (abandoned tokens releasing their slot).
    pub ot_cache_evicted: u64,
    /// Garbled tables sent across all completed sessions.
    pub tables_sent: u64,
    /// Bytes of garbled tables across all completed sessions.
    pub table_bytes_sent: u64,
    /// Accepted sessions currently waiting for a free worker.
    pub job_queue_depth: u64,
    /// Most sessions ever waiting for a worker at once.
    pub job_queue_high_water: u64,
    /// Deepest any session's bounded send queue ever got (frames). A
    /// slow evaluator fills its own queue — and only its own — so this
    /// rising while other sessions complete is the backpressure
    /// isolation story in one number.
    pub send_queue_high_water: u64,
}

impl Metrics {
    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sessions_accepted: self.sessions_accepted.load(Ordering::SeqCst),
            sessions_rejected: self.sessions_rejected.load(Ordering::SeqCst),
            sessions_active: self.sessions_active.load(Ordering::SeqCst),
            sessions_completed: self.sessions_completed.load(Ordering::SeqCst),
            sessions_failed: self.sessions_failed.load(Ordering::SeqCst),
            failed_timeout: self.failed_timeout.load(Ordering::SeqCst),
            failed_peer_disconnect: self.failed_peer_disconnect.load(Ordering::SeqCst),
            failed_corrupt_frame: self.failed_corrupt_frame.load(Ordering::SeqCst),
            failed_shutdown: self.failed_shutdown.load(Ordering::SeqCst),
            failed_other: self.failed_other.load(Ordering::SeqCst),
            rejected_attach_timeout: self.rejected_attach_timeout.load(Ordering::SeqCst),
            rejected_preamble_timeout: self.rejected_preamble_timeout.load(Ordering::SeqCst),
            ot_base_setups: self.ot_base_setups.load(Ordering::SeqCst),
            ot_extended: self.ot_extended.load(Ordering::SeqCst),
            ot_cache_evicted: self.ot_cache_evicted.load(Ordering::SeqCst),
            tables_sent: self.tables_sent.load(Ordering::SeqCst),
            table_bytes_sent: self.table_bytes_sent.load(Ordering::SeqCst),
            job_queue_depth: self.job_queue_depth.load(Ordering::SeqCst),
            job_queue_high_water: self.job_queue_high_water.load(Ordering::SeqCst),
            send_queue_high_water: self.send_queue_high_water.load(Ordering::SeqCst),
        }
    }

    pub(crate) fn session_accepted(&self) {
        self.sessions_accepted.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn session_rejected(&self) {
        self.sessions_rejected.fetch_add(1, Ordering::SeqCst);
    }

    /// A connection dropped at the preamble deadline: rejected, in the
    /// dedicated bucket.
    pub(crate) fn preamble_timeout(&self) {
        self.sessions_rejected.fetch_add(1, Ordering::SeqCst);
        self.rejected_preamble_timeout
            .fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn job_queued(&self) {
        let depth = self.job_queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.job_queue_high_water.fetch_max(depth, Ordering::SeqCst);
    }

    pub(crate) fn job_started(&self) {
        self.job_queue_depth.fetch_sub(1, Ordering::SeqCst);
        self.sessions_active.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn session_completed(&self, tables: u64, table_bytes: u64) {
        self.sessions_active.fetch_sub(1, Ordering::SeqCst);
        self.sessions_completed.fetch_add(1, Ordering::SeqCst);
        self.tables_sent.fetch_add(tables, Ordering::SeqCst);
        self.table_bytes_sent
            .fetch_add(table_bytes, Ordering::SeqCst);
    }

    /// A running session tore down; `reason` picks the bucket.
    pub(crate) fn session_failed(&self, reason: FailureReason) {
        self.sessions_active.fetch_sub(1, Ordering::SeqCst);
        self.sessions_failed.fetch_add(1, Ordering::SeqCst);
        let bucket = match reason {
            FailureReason::Timeout => &self.failed_timeout,
            FailureReason::PeerDisconnect => &self.failed_peer_disconnect,
            FailureReason::CorruptFrame => &self.failed_corrupt_frame,
            FailureReason::Shutdown => &self.failed_shutdown,
            FailureReason::Other => &self.failed_other,
        };
        bucket.fetch_add(1, Ordering::SeqCst);
    }

    /// A parked sharded session expired awaiting attachments. It never
    /// ran, so `sessions_active` is untouched.
    pub(crate) fn attach_expired(&self) {
        self.sessions_failed.fetch_add(1, Ordering::SeqCst);
        self.rejected_attach_timeout.fetch_add(1, Ordering::SeqCst);
    }

    /// A parked sharded session was discarded by shutdown. It never
    /// ran, so `sessions_active` is untouched.
    pub(crate) fn parked_shutdown(&self) {
        self.sessions_failed.fetch_add(1, Ordering::SeqCst);
        self.failed_shutdown.fetch_add(1, Ordering::SeqCst);
    }

    /// Books one session's OT activity: base setups paid and OTs
    /// extended. Recorded whether the session completed or failed, so
    /// the counters are a pure function of the request sequence.
    pub(crate) fn ot_session(&self, base_setups: u64, extended: u64) {
        self.ot_base_setups.fetch_add(base_setups, Ordering::SeqCst);
        self.ot_extended.fetch_add(extended, Ordering::SeqCst);
    }

    /// Cached OT resume states evicted at their deadline.
    pub(crate) fn ot_evicted(&self, count: u64) {
        self.ot_cache_evicted.fetch_add(count, Ordering::SeqCst);
    }

    /// Raises the send-queue high-water mark to at least `depth`.
    pub(crate) fn note_send_queue_depth(&self, depth: u64) {
        self.send_queue_high_water
            .fetch_max(depth, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_balance() {
        let m = Metrics::default();
        m.session_accepted();
        m.job_queued();
        m.job_queued();
        assert_eq!(m.snapshot().job_queue_high_water, 2);
        m.job_started();
        m.job_started();
        m.session_completed(10, 320);
        m.session_failed(FailureReason::PeerDisconnect);
        let s = m.snapshot();
        assert_eq!(s.sessions_active, 0);
        assert_eq!(s.sessions_completed, 1);
        assert_eq!(s.sessions_failed, 1);
        assert_eq!(s.failed_peer_disconnect, 1);
        assert_eq!(s.tables_sent, 10);
        assert_eq!(s.table_bytes_sent, 320);
        assert_eq!(s.job_queue_depth, 0);
    }

    #[test]
    fn failure_buckets_sum_to_total() {
        let m = Metrics::default();
        for _ in 0..5 {
            m.job_queued();
            m.job_started();
        }
        m.session_failed(FailureReason::Timeout);
        m.session_failed(FailureReason::PeerDisconnect);
        m.session_failed(FailureReason::CorruptFrame);
        m.session_failed(FailureReason::Shutdown);
        m.session_failed(FailureReason::Other);
        m.attach_expired();
        m.parked_shutdown();
        m.preamble_timeout();
        let s = m.snapshot();
        assert_eq!(s.sessions_failed, 7);
        assert_eq!(
            s.failed_timeout
                + s.failed_peer_disconnect
                + s.failed_corrupt_frame
                + s.failed_shutdown
                + s.failed_other
                + s.rejected_attach_timeout,
            s.sessions_failed
        );
        assert_eq!(s.failed_shutdown, 2, "running + parked shutdown");
        assert_eq!(s.rejected_attach_timeout, 1);
        assert_eq!(s.sessions_rejected, 1);
        assert_eq!(s.rejected_preamble_timeout, 1);
        assert_eq!(s.sessions_active, 0);
    }

    #[test]
    fn high_water_is_monotone() {
        let m = Metrics::default();
        m.note_send_queue_depth(5);
        m.note_send_queue_depth(2);
        assert_eq!(m.snapshot().send_queue_high_water, 5);
    }

    #[test]
    fn ot_books_accumulate() {
        let m = Metrics::default();
        m.ot_session(1, 96); // first session: setup + extension
        m.ot_session(0, 96); // resumed session: extension only
        m.ot_evicted(2);
        let s = m.snapshot();
        assert_eq!(s.ot_base_setups, 1);
        assert_eq!(s.ot_extended, 192);
        assert_eq!(s.ot_cache_evicted, 2);
    }
}
