//! Evaluator-side client for the garbler service.
//!
//! [`run_session`] is the whole story for most callers: name a
//! [`workload`], pick [`SessionOptions`], and get back
//! the session's [`InstancedOutcome`] — the same value a solo
//! [`run_two_party_opts`](arm2gc_core::run_two_party_opts) run of the
//! same workload produces, which is exactly how the load generator
//! verifies the service. [`connect`] exposes the bare preamble
//! (request and shard attachments) for harnesses that want to drive —
//! or stall — the session themselves.
//!
//! Transient connection failures (refused, reset, timed out) can be
//! absorbed with a deterministic capped-exponential [`RetryPolicy`]
//! via [`connect_with_retry`] / [`run_session_with_retry`]; permanent
//! answers (a typed `ServiceReject`, local config errors) are never
//! retried, and giving up surfaces as
//! [`ClientError::RetriesExhausted`] wrapping the last failure.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use arm2gc_comm::{Channel, ChannelError, TcpChannel};
use arm2gc_core::{drive_evaluator, InstancedOutcome, ProtocolError, SessionOptions};
use arm2gc_crypto::Prg;
use arm2gc_ot::OtReceiver;
use arm2gc_proto::{
    ConfigError, Message, OtBackend, OtReceiverState, ProtoError, ResumableOtReceiver,
};

use crate::workload;

/// Everything that can go wrong on the client side of a service
/// session.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The connection dropped mid-frame.
    Closed,
    /// A socket read/write deadline elapsed (see
    /// [`SessionOptions::io_timeout`]).
    Timeout,
    /// An unparsable or out-of-place preamble frame.
    Proto(ProtoError),
    /// The service turned the request away (typed reason from its
    /// `ServiceReject` frame).
    Rejected(String),
    /// The requested options fail validation locally, before any
    /// connection is made.
    Config(ConfigError),
    /// The workload name doesn't resolve locally.
    UnknownWorkload(String),
    /// The garbling protocol itself failed after the session started.
    Protocol(ProtocolError),
    /// The service resumed a cached base-OT state this client no longer
    /// holds (e.g. the previous session failed client-side after the
    /// garbler banked its state). Not retryable on the same token —
    /// reconnect with a fresh [`OtResume`].
    ResumeDesync,
    /// Every attempt allowed by the [`RetryPolicy`] failed with a
    /// transient error; `last` is the final one.
    RetriesExhausted {
        /// How many connection attempts were made.
        attempts: u32,
        /// The failure of the last attempt.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Timeout => write!(f, "socket deadline elapsed"),
            ClientError::Proto(e) => write!(f, "preamble error: {e}"),
            ClientError::Rejected(reason) => write!(f, "service rejected session: {reason}"),
            ClientError::Config(e) => write!(f, "invalid session options: {e}"),
            ClientError::UnknownWorkload(name) => write!(f, "unknown workload {name:?}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ResumeDesync => {
                write!(
                    f,
                    "service resumed a base-OT state this client does not hold"
                )
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether retrying the whole connection could plausibly succeed.
    ///
    /// Transient: connection refused/reset/aborted, broken pipe, socket
    /// timeouts, and mid-frame closes (a restarting or momentarily
    /// overloaded service). Permanent: typed rejections, local config
    /// errors, unknown workloads, decode and protocol failures — the
    /// answer won't change.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Closed | ClientError::Timeout => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ChannelError> for ClientError {
    fn from(e: ChannelError) -> Self {
        match e {
            ChannelError::Closed => ClientError::Closed,
            ChannelError::Timeout => ClientError::Timeout,
            ChannelError::Io(kind) => ClientError::Io(io::Error::from(kind)),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<ConfigError> for ClientError {
    fn from(e: ConfigError) -> Self {
        ClientError::Config(e)
    }
}

/// Deterministic capped-exponential backoff for connection attempts.
///
/// Delays double from [`base_delay`](Self::base_delay) up to
/// [`max_delay`](Self::max_delay), with deterministic jitter derived
/// from [`seed`](Self::seed) — two clients with different seeds spread
/// out, while a fixed seed reproduces the exact retry schedule in
/// tests.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts (including the first); 0 is treated
    /// as 1.
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (so `delay(0)` is
    /// slept after the first failure): the capped exponential
    /// `base * 2^attempt`, jittered deterministically into its upper
    /// half `[exp/2, exp]`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let exp_us = exp.as_micros() as u64;
        if exp_us == 0 {
            return Duration::ZERO;
        }
        // splitmix64 of (seed, attempt): cheap, stateless, and good
        // enough to decorrelate clients.
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jittered = exp_us / 2 + z % (exp_us / 2 + 1);
        Duration::from_micros(jittered)
    }
}

/// An accepted session whose protocol proper has not started yet.
#[derive(Debug)]
pub struct Connection {
    /// The service-assigned session id.
    pub session: u64,
    /// Whether the service checked out a cached base-OT state for this
    /// session's token (always `false` for token 0).
    pub resumed: bool,
    /// The main protocol channel.
    pub main: TcpChannel,
    /// Shard sub-channels, in shard order (empty unless sharded).
    pub shard_chs: Vec<TcpChannel>,
}

/// Client-side base-OT reuse handle: a token plus the receiver
/// extension state banked by the last successful session under it.
///
/// The token is an identifier, not a secret — it scopes which cache
/// slot the service checks; the security of reuse rests on the
/// counter-advancing IKNP state itself. Token 0 disables reuse.
///
/// Feed the same handle to successive [`run_session_resumed`] calls:
/// the first pays one base-OT setup, later ones extend the cached
/// columns. A failed session clears the state (both ends drop it), so
/// the next call transparently pays a fresh setup.
#[derive(Debug, Default)]
pub struct OtResume {
    /// The token sent in the preamble (0 disables reuse).
    pub token: u64,
    /// Receiver extension state from the last successful session.
    pub state: Option<OtReceiverState>,
}

impl OtResume {
    /// A fresh handle for `token` with no banked state.
    pub fn new(token: u64) -> Self {
        Self { token, state: None }
    }
}

/// Connects one socket to the service and applies the session's io
/// deadline from `opts` before any frame moves.
fn connect_socket(addr: SocketAddr, opts: &SessionOptions) -> Result<TcpChannel, ClientError> {
    let ch = TcpChannel::from_stream(TcpStream::connect(addr)?)?;
    ch.set_read_timeout(opts.io_timeout)?;
    ch.set_write_timeout(opts.io_timeout)?;
    Ok(ch)
}

/// Performs the service preamble: sends `ServiceRequest`, awaits the
/// verdict, and — for sharded sessions — opens and attaches one extra
/// connection per shard. Any `io_timeout` in `opts` is applied to
/// every socket before the first frame.
///
/// # Errors
/// [`ClientError::Config`] on locally invalid options,
/// [`ClientError::Rejected`] when the service says no, plus transport
/// and decode failures.
pub fn connect(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
) -> Result<Connection, ClientError> {
    connect_with_token(addr, workload, opts, 0)
}

/// [`connect`] carrying a base-OT reuse token in the preamble. The
/// returned [`Connection::resumed`] flag reports whether the service
/// checked out a cached state for it; [`run_session_resumed`] handles
/// the matching receiver-side state for you.
///
/// # Errors
/// Same as [`connect`].
pub fn connect_with_token(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
    ot_token: u64,
) -> Result<Connection, ClientError> {
    opts.validate()?;
    let mut main = connect_socket(addr, opts)?;
    main.send(
        &Message::ServiceRequest {
            shards: opts.shards as u8,
            instances: opts.instances as u16,
            ot_token,
            workload: workload.to_string(),
        }
        .encode(),
    )?;
    let (session, resumed) = match Message::decode(&main.recv()?)? {
        Message::ServiceAccept { session, resumed } => (session, resumed),
        Message::ServiceReject { reason } => return Err(ClientError::Rejected(reason)),
        _ => {
            return Err(ClientError::Proto(ProtoError::Malformed(
                "expected verdict",
            )))
        }
    };
    let mut shard_chs = Vec::new();
    if opts.shards > 1 {
        for shard in 0..opts.shards {
            let mut ch = connect_socket(addr, opts)?;
            ch.send(
                &Message::ServiceAttach {
                    session,
                    shard: shard as u8,
                }
                .encode(),
            )?;
            shard_chs.push(ch);
        }
    }
    Ok(Connection {
        session,
        resumed,
        main,
        shard_chs,
    })
}

/// [`connect`] with transient failures retried under `policy`.
///
/// Only [transient](ClientError::is_transient) errors are retried — a
/// typed rejection or config error returns immediately, un-wrapped.
///
/// # Errors
/// [`ClientError::RetriesExhausted`] once every allowed attempt failed
/// transiently; otherwise the first permanent error.
pub fn connect_with_retry(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
    policy: &RetryPolicy,
) -> Result<Connection, ClientError> {
    let attempts = policy.attempts.max(1);
    let mut last: Option<ClientError> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.delay(attempt - 1));
        }
        match connect(addr, workload, opts) {
            Ok(conn) => return Ok(conn),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(ClientError::RetriesExhausted {
        attempts,
        last: Box::new(last.expect("at least one attempt ran")),
    })
}

/// The result of one complete client session.
#[derive(Debug)]
pub struct SessionRun {
    /// The service-assigned session id.
    pub session: u64,
    /// The evaluator-side outcome — outputs and per-lane cost counters
    /// identical to a solo run of the same workload and options.
    pub outcome: InstancedOutcome,
}

/// Connects, attaches shards, and drives the evaluator side of one
/// session of `workload` end to end.
///
/// # Errors
/// Everything [`connect`] can raise, plus
/// [`ClientError::UnknownWorkload`] and protocol failures from the
/// drive itself.
pub fn run_session(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
) -> Result<SessionRun, ClientError> {
    let wl = workload::resolve(workload, opts.instances)
        .ok_or_else(|| ClientError::UnknownWorkload(workload.to_string()))?;
    let conn = connect(addr, workload, opts)?;
    drive(conn, &wl, opts)
}

/// [`run_session`] with the *connection* phase retried under `policy`.
/// Failures after the session started are not retried — the garbling
/// transcript is stateful, so a broken session can only be reported.
///
/// # Errors
/// Everything [`connect_with_retry`] and [`drive`] can raise.
pub fn run_session_with_retry(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
    policy: &RetryPolicy,
) -> Result<SessionRun, ClientError> {
    let wl = workload::resolve(workload, opts.instances)
        .ok_or_else(|| ClientError::UnknownWorkload(workload.to_string()))?;
    let conn = connect_with_retry(addr, workload, opts, policy)?;
    drive(conn, &wl, opts)
}

/// Drives the evaluator over an already established [`Connection`].
/// Split out of [`run_session`] so harnesses can hold the connection
/// (e.g. to stall between preamble and protocol) before driving.
///
/// # Errors
/// Protocol failures from the drive.
pub fn drive(
    conn: Connection,
    wl: &workload::Workload,
    opts: &SessionOptions,
) -> Result<SessionRun, ClientError> {
    let mut prg = Prg::from_entropy();
    let mut ot = opts.ot.receiver(opts.ot_config, &mut prg);
    drive_with_ot(conn, wl, opts, ot.as_mut())
}

/// [`drive`] with a caller-supplied OT endpoint — the seam
/// [`run_session_resumed`] uses to thread resumable receiver state
/// through a session.
///
/// # Errors
/// Protocol failures from the drive.
pub fn drive_with_ot(
    mut conn: Connection,
    wl: &workload::Workload,
    opts: &SessionOptions,
    ot: &mut dyn OtReceiver,
) -> Result<SessionRun, ClientError> {
    let shard_chs: Vec<Box<dyn Channel>> = conn
        .shard_chs
        .into_iter()
        .map(|c| Box::new(c) as Box<dyn Channel>)
        .collect();
    let outcome = drive_evaluator(
        &wl.circuit,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &mut conn.main,
        shard_chs,
        ot,
        opts,
    )
    .map_err(ClientError::Protocol)?;
    Ok(SessionRun {
        session: conn.session,
        outcome,
    })
}

/// [`run_session`] with base-OT reuse: the first call under a token
/// pays one Naor–Pinkas setup, every later call extends the banked
/// IKNP state — same outputs, a fraction of the setup cost.
///
/// `resume.state` is updated in place: banked on success, cleared on
/// failure (mirroring the service, which drops its side of a failed
/// session's state). With [`OtBackend::Insecure`] or token 0 this is
/// plain [`run_session`].
///
/// # Errors
/// Everything [`run_session`] can raise, plus
/// [`ClientError::ResumeDesync`] when the service banked state this
/// client no longer holds.
pub fn run_session_resumed(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
    resume: &mut OtResume,
) -> Result<SessionRun, ClientError> {
    if opts.ot != OtBackend::NaorPinkasIknp || resume.token == 0 {
        return run_session(addr, workload, opts);
    }
    let wl = workload::resolve(workload, opts.instances)
        .ok_or_else(|| ClientError::UnknownWorkload(workload.to_string()))?;
    let conn = connect_with_token(addr, workload, opts, resume.token)?;
    let mut prg = Prg::from_entropy();
    let mut rcv = match (conn.resumed, resume.state.take()) {
        (true, Some(state)) => ResumableOtReceiver::resume(state, &mut prg),
        (true, None) => return Err(ClientError::ResumeDesync),
        // Not resumed: the service lost or evicted its side, so any
        // stale local state is dropped and both ends set up fresh.
        (false, _) => ResumableOtReceiver::fresh(opts.ot_config, &mut prg),
    };
    let run = drive_with_ot(conn, &wl, opts, &mut rcv)?;
    resume.state = rcv.into_state();
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered_into_the_upper_half() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            seed: 42,
        };
        for attempt in 0..8 {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(p.max_delay);
            let d = p.delay(attempt);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d:?} vs {exp:?}"
            );
            // Deterministic: same policy, same schedule.
            assert_eq!(d, p.delay(attempt));
        }
        // Different seeds decorrelate at least one step of the schedule.
        let q = RetryPolicy { seed: 43, ..p };
        assert!((0..8).any(|a| p.delay(a) != q.delay(a)));
    }

    #[test]
    fn transience_is_judged_by_class() {
        assert!(ClientError::Closed.is_transient());
        assert!(ClientError::Timeout.is_transient());
        assert!(ClientError::Io(io::Error::from(io::ErrorKind::ConnectionRefused)).is_transient());
        assert!(!ClientError::Rejected("busy".into()).is_transient());
        assert!(!ClientError::UnknownWorkload("x".into()).is_transient());
        assert!(!ClientError::Proto(ProtoError::Malformed("expected verdict")).is_transient());
    }
}
