//! Evaluator-side client for the garbler service.
//!
//! [`run_session`] is the whole story for most callers: name a
//! [`workload`], pick [`SessionOptions`], and get back
//! the session's [`InstancedOutcome`] — the same value a solo
//! [`run_two_party_opts`](arm2gc_core::run_two_party_opts) run of the
//! same workload produces, which is exactly how the load generator
//! verifies the service. [`connect`] exposes the bare preamble
//! (request and shard attachments) for harnesses that want to drive —
//! or stall — the session themselves.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};

use arm2gc_comm::{Channel, ChannelClosed, TcpChannel};
use arm2gc_core::{drive_evaluator, InstancedOutcome, ProtocolError, SessionOptions};
use arm2gc_crypto::Prg;
use arm2gc_proto::{ConfigError, Message, ProtoError};

use crate::workload;

/// Everything that can go wrong on the client side of a service
/// session.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The connection dropped mid-frame.
    Closed,
    /// An unparsable or out-of-place preamble frame.
    Proto(ProtoError),
    /// The service turned the request away (typed reason from its
    /// `ServiceReject` frame).
    Rejected(String),
    /// The requested options fail validation locally, before any
    /// connection is made.
    Config(ConfigError),
    /// The workload name doesn't resolve locally.
    UnknownWorkload(String),
    /// The garbling protocol itself failed after the session started.
    Protocol(ProtocolError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Proto(e) => write!(f, "preamble error: {e}"),
            ClientError::Rejected(reason) => write!(f, "service rejected session: {reason}"),
            ClientError::Config(e) => write!(f, "invalid session options: {e}"),
            ClientError::UnknownWorkload(name) => write!(f, "unknown workload {name:?}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ChannelClosed> for ClientError {
    fn from(_: ChannelClosed) -> Self {
        ClientError::Closed
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<ConfigError> for ClientError {
    fn from(e: ConfigError) -> Self {
        ClientError::Config(e)
    }
}

/// An accepted session whose protocol proper has not started yet.
pub struct Connection {
    /// The service-assigned session id.
    pub session: u64,
    /// The main protocol channel.
    pub main: TcpChannel,
    /// Shard sub-channels, in shard order (empty unless sharded).
    pub shard_chs: Vec<TcpChannel>,
}

/// Performs the service preamble: sends `ServiceRequest`, awaits the
/// verdict, and — for sharded sessions — opens and attaches one extra
/// connection per shard.
///
/// # Errors
/// [`ClientError::Config`] on locally invalid options,
/// [`ClientError::Rejected`] when the service says no, plus transport
/// and decode failures.
pub fn connect(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
) -> Result<Connection, ClientError> {
    opts.validate()?;
    let mut main = TcpChannel::from_stream(TcpStream::connect(addr)?)?;
    main.send(
        &Message::ServiceRequest {
            shards: opts.shards as u8,
            instances: opts.instances as u16,
            workload: workload.to_string(),
        }
        .encode(),
    )?;
    let session = match Message::decode(&main.recv()?)? {
        Message::ServiceAccept { session } => session,
        Message::ServiceReject { reason } => return Err(ClientError::Rejected(reason)),
        _ => {
            return Err(ClientError::Proto(ProtoError::Malformed(
                "expected verdict",
            )))
        }
    };
    let mut shard_chs = Vec::new();
    if opts.shards > 1 {
        for shard in 0..opts.shards {
            let mut ch = TcpChannel::from_stream(TcpStream::connect(addr)?)?;
            ch.send(
                &Message::ServiceAttach {
                    session,
                    shard: shard as u8,
                }
                .encode(),
            )?;
            shard_chs.push(ch);
        }
    }
    Ok(Connection {
        session,
        main,
        shard_chs,
    })
}

/// The result of one complete client session.
#[derive(Debug)]
pub struct SessionRun {
    /// The service-assigned session id.
    pub session: u64,
    /// The evaluator-side outcome — outputs and per-lane cost counters
    /// identical to a solo run of the same workload and options.
    pub outcome: InstancedOutcome,
}

/// Connects, attaches shards, and drives the evaluator side of one
/// session of `workload` end to end.
///
/// # Errors
/// Everything [`connect`] can raise, plus
/// [`ClientError::UnknownWorkload`] and protocol failures from the
/// drive itself.
pub fn run_session(
    addr: SocketAddr,
    workload: &str,
    opts: &SessionOptions,
) -> Result<SessionRun, ClientError> {
    let wl = workload::resolve(workload, opts.instances)
        .ok_or_else(|| ClientError::UnknownWorkload(workload.to_string()))?;
    let conn = connect(addr, workload, opts)?;
    drive(conn, &wl, opts)
}

/// Drives the evaluator over an already established [`Connection`].
/// Split out of [`run_session`] so harnesses can hold the connection
/// (e.g. to stall between preamble and protocol) before driving.
///
/// # Errors
/// Protocol failures from the drive.
pub fn drive(
    mut conn: Connection,
    wl: &workload::Workload,
    opts: &SessionOptions,
) -> Result<SessionRun, ClientError> {
    let shard_chs: Vec<Box<dyn Channel>> = conn
        .shard_chs
        .into_iter()
        .map(|c| Box::new(c) as Box<dyn Channel>)
        .collect();
    let mut prg = Prg::from_entropy();
    let mut ot = opts.ot.receiver(&mut prg);
    let outcome = drive_evaluator(
        &wl.circuit,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &mut conn.main,
        shard_chs,
        ot.as_mut(),
        opts,
    )
    .map_err(ClientError::Protocol)?;
    Ok(SessionRun {
        session: conn.session,
        outcome,
    })
}
