//! Named deterministic workloads.
//!
//! A service request names its workload as `"<family>:<seed>"` (e.g.
//! `"compare32:7"`). Both sides resolve the name independently — the
//! server derives the garbler's (Alice's) inputs, the client the
//! evaluator's (Bob's) — from the same seeded PRG, so no input material
//! ever travels outside the protocol itself and a load generator can
//! verify every session against a solo run of the same name.
//!
//! Families ship on the workspace's benchmark circuits:
//!
//! | family | circuit | per-lane inputs |
//! |---|---|---|
//! | `compare32` | 32-bit millionaires comparison | `a`, `b` from the lane PRG |
//! | `sum32` | 32-bit streaming sum | `a`, `b` from the lane PRG |
//!
//! Lane `l` of an instanced session draws from a PRG seeded with
//! `(seed, l)`, so every lane is a distinct but reproducible problem.

use arm2gc_circuit::bench_circuits::{compare, sum, BenchCircuit};
use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::Circuit;
use arm2gc_crypto::Prg;

/// A resolved workload: the circuit plus per-lane party data.
pub struct Workload {
    /// The netlist every lane runs.
    pub circuit: Circuit,
    /// Clock-cycle budget.
    pub cycles: usize,
    /// Alice's data, one entry per lane (server side).
    pub alices: Vec<PartyData>,
    /// Bob's data, one entry per lane (client side).
    pub bobs: Vec<PartyData>,
    /// Public data, one entry per lane.
    pub publics: Vec<PartyData>,
    /// Expected output bits per lane (from the cleartext model), for
    /// verification harnesses.
    pub expected: Vec<Vec<bool>>,
}

/// Per-lane PRG: lane `l` of seed `s` draws independently of every
/// other `(s, l)` pair.
fn lane_prg(seed: u64, lane: u64) -> Prg {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..].copy_from_slice(&lane.to_le_bytes());
    Prg::from_seed(bytes)
}

fn lane_circuit(family: &str, seed: u64, lane: u64) -> Option<BenchCircuit> {
    let mut prg = lane_prg(seed, lane);
    let a = prg.next_u64() & 0xffff_ffff;
    let b = prg.next_u64() & 0xffff_ffff;
    match family {
        "compare32" => Some(compare(32, a, b)),
        "sum32" => Some(sum(32, a, b)),
        _ => None,
    }
}

/// Resolves `name` (`"<family>:<seed>"`) into `instances` lanes of
/// party data. Returns `None` for an unknown family or an unparsable
/// seed — the service turns that into a typed `ServiceReject`.
pub fn resolve(name: &str, instances: usize) -> Option<Workload> {
    let (family, seed) = name.split_once(':')?;
    let seed: u64 = seed.parse().ok()?;
    let mut alices = Vec::with_capacity(instances);
    let mut bobs = Vec::with_capacity(instances);
    let mut publics = Vec::with_capacity(instances);
    let mut expected = Vec::with_capacity(instances);
    let mut circuit = None;
    let mut cycles = 0;
    for lane in 0..instances {
        let bc = lane_circuit(family, seed, lane as u64)?;
        alices.push(bc.alice);
        bobs.push(bc.bob);
        publics.push(bc.public);
        expected.push(bc.expected);
        cycles = bc.cycles;
        if circuit.is_none() {
            circuit = Some(bc.circuit);
        }
    }
    Some(Workload {
        circuit: circuit?,
        cycles,
        alices,
        bobs,
        publics,
        expected,
    })
}

/// The workload families [`resolve`] understands, for documentation and
/// load-generator mode mixing.
pub const FAMILIES: [&str; 2] = ["compare32", "sum32"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_deterministic_and_lane_distinct() {
        let w1 = resolve("compare32:7", 2).expect("known family");
        let w2 = resolve("compare32:7", 2).expect("known family");
        assert_eq!(w1.alices[0].stream, w2.alices[0].stream);
        assert_eq!(w1.bobs[1].stream, w2.bobs[1].stream);
        assert_eq!(w1.expected, w2.expected);
        // Different lanes (and different seeds) draw different inputs.
        assert_ne!(w1.alices[0].stream, w1.alices[1].stream);
        let w3 = resolve("compare32:8", 1).expect("known family");
        assert_ne!(w1.alices[0].stream, w3.alices[0].stream);
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        assert!(resolve("compare32", 1).is_none()); // no seed
        assert!(resolve("compare32:x", 1).is_none()); // bad seed
        assert!(resolve("aes512:1", 1).is_none()); // unknown family
    }

    #[test]
    fn sum_family_resolves_too() {
        let w = resolve("sum32:3", 1).expect("known family");
        assert_eq!(w.alices.len(), 1);
        assert!(w.cycles >= 1);
    }
}
