//! Per-session bounded send queues.
//!
//! The garbler writes tables much faster than a slow evaluator drains
//! them. Writing straight to the socket would park the worker inside
//! the kernel's send buffer with nothing to show for it; sharing one
//! writer across sessions would let a single stalled evaluator starve
//! everyone. [`QueuedChannel`] gives every session (and every shard
//! sub-stream) its *own* writer thread fed by a bounded in-process
//! queue: the garbling worker blocks only once **its own** queue is
//! full — backpressure stays session-local by construction.
//!
//! When the writer thread dies on a socket error, the error is parked
//! in a shared slot and the queue is disconnected, so the next `send`
//! returns the *original* typed [`ChannelError`] immediately instead of
//! blocking forever against a queue nobody drains.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use arm2gc_comm::{Channel, ChannelError, TcpChannel};
use crossbeam::channel::{bounded, Sender};

use crate::metrics::Metrics;

/// A [`Channel`] over a TCP stream whose sends go through a bounded
/// queue drained by a dedicated writer thread.
///
/// `send` enqueues the frame and returns immediately while the queue
/// has room; once the peer stops draining and the queue fills, `send`
/// blocks — that is the session's backpressure point. If the writer
/// thread has died on a socket error, `send` instead fails immediately
/// with that error. `recv` reads the socket directly (the
/// evaluator-to-garbler direction is sparse), honouring any socket
/// read deadline. Queue depth is reported to the service-wide
/// [`Metrics`] high-water mark on every send.
///
/// Dropping the channel disconnects the queue; the writer thread drains
/// what was already enqueued and exits.
pub struct QueuedChannel {
    tx: Sender<Vec<u8>>,
    reader: TcpChannel,
    depth: Arc<AtomicU64>,
    fail: Arc<Mutex<Option<ChannelError>>>,
    metrics: Arc<Metrics>,
}

impl QueuedChannel {
    /// Splits `stream` into a direct read half and a queued write half
    /// with room for `cap` frames.
    ///
    /// # Errors
    /// Propagates socket errors (cloning the stream, `TCP_NODELAY`).
    pub fn new(stream: TcpStream, cap: usize, metrics: Arc<Metrics>) -> std::io::Result<Self> {
        let write_half = stream.try_clone()?;
        let reader = TcpChannel::from_stream(stream)?;
        let mut writer = TcpChannel::from_stream(write_half)?;
        let (tx, rx) = bounded::<Vec<u8>>(cap);
        let depth = Arc::new(AtomicU64::new(0));
        let fail = Arc::new(Mutex::new(None));
        let writer_depth = Arc::clone(&depth);
        let writer_fail = Arc::clone(&fail);
        thread::spawn(move || {
            // Exits when every sender is gone (session over) or the
            // socket dies (peer torn down). On death the original error
            // is parked first, *then* the thread returns — dropping
            // `rx` disconnects the queue, so a sender blocked on a full
            // queue wakes with an error and finds the diagnosis.
            while let Ok(frame) = rx.recv() {
                let sent = writer.send(&frame);
                writer_depth.fetch_sub(1, Ordering::SeqCst);
                if let Err(e) = sent {
                    *writer_fail.lock().unwrap() = Some(e);
                    return;
                }
            }
        });
        Ok(Self {
            tx,
            reader,
            depth,
            fail,
            metrics,
        })
    }

    /// The error that killed the writer thread, if it has died.
    pub fn writer_failure(&self) -> Option<ChannelError> {
        *self.fail.lock().unwrap()
    }

    /// Reads the parked writer error, defaulting to `Closed` when the
    /// writer exited without recording one.
    fn writer_error(&self) -> ChannelError {
        self.writer_failure().unwrap_or(ChannelError::Closed)
    }
}

impl Channel for QueuedChannel {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        // Fail fast with the original socket error once the writer has
        // died — never block against a queue nobody drains.
        if let Some(e) = self.writer_failure() {
            return Err(e);
        }
        // Count before enqueueing so a concurrent dequeue can never
        // make the depth read as zero while a frame is in flight.
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.note_send_queue_depth(depth);
        self.tx.send(data.to_vec()).map_err(|_| {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            self.writer_error()
        })
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        self.reader.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_flow_through_the_writer_thread() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut ch = TcpChannel::from_stream(stream).unwrap();
            for i in 0..20u8 {
                assert_eq!(ch.recv().unwrap(), vec![i; i as usize]);
            }
            ch.send(b"reply").unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let metrics = Arc::new(Metrics::default());
        let mut ch = QueuedChannel::new(stream, 4, Arc::clone(&metrics)).unwrap();
        for i in 0..20u8 {
            ch.send(&vec![i; i as usize]).unwrap();
        }
        assert_eq!(ch.recv().unwrap(), b"reply");
        peer.join().unwrap();
        assert!(metrics.snapshot().send_queue_high_water >= 1);
    }

    #[test]
    fn stalled_peer_fills_the_queue_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let big = 256 * 1024; // larger than typical socket buffers
        let peer = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut ch = TcpChannel::from_stream(stream).unwrap();
            release_rx.recv().unwrap(); // stall: read nothing until told
            for _ in 0..8 {
                assert_eq!(ch.recv().unwrap().len(), big);
            }
        });
        let stream = TcpStream::connect(addr).unwrap();
        let metrics = Arc::new(Metrics::default());
        let mut ch = QueuedChannel::new(stream, 2, Arc::clone(&metrics)).unwrap();
        let sender = thread::spawn(move || {
            for _ in 0..8 {
                ch.send(&vec![0u8; big]).unwrap();
            }
            ch
        });
        // The writer wedges against the stalled peer, the queue tops
        // out at its bound, and the sender blocks - session-local
        // backpressure. Unstall and everything drains.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(metrics.snapshot().send_queue_high_water >= 2);
        release_tx.send(()).unwrap();
        let _ch = sender.join().unwrap();
        peer.join().unwrap();
    }

    #[test]
    fn dead_writer_fails_sends_immediately_with_the_original_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Close the peer outright: once its FIN-then-RST lands, the
            // writer hits a real socket error mid-stream.
            drop(stream);
        });
        let stream = TcpStream::connect(addr).unwrap();
        let metrics = Arc::new(Metrics::default());
        // Tiny queue: without fail-fast, sends after writer death would
        // block forever once the queue filled.
        let mut ch = QueuedChannel::new(stream, 1, Arc::clone(&metrics)).unwrap();
        peer.join().unwrap();
        // Pump until the writer thread observes the dead socket and
        // parks its error; each send must return, never hang.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let err = loop {
            assert!(
                std::time::Instant::now() < deadline,
                "writer death never surfaced"
            );
            if let Err(e) = ch.send(&vec![0u8; 64 * 1024]) {
                break e;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        // The typed reason survives: a reset/broken-pipe style
        // disconnect, not a generic closed-by-us.
        assert!(
            err.is_disconnect(),
            "expected a disconnect-class error, got {err:?}"
        );
        assert_eq!(ch.writer_failure(), Some(err));
        // And it is sticky: the next send fails instantly.
        assert_eq!(ch.send(&[1]), Err(err));
    }
}
