//! The typed failure taxonomy of the garbler service.
//!
//! Every torn-down session ends in exactly one [`SessionError`], kept
//! in its [`SessionRecord`](crate::SessionRecord) and folded into a
//! per-reason counter in the [`Metrics`](crate::Metrics) registry via
//! [`SessionError::reason`]. The taxonomy replaces the stringly
//! teardown of earlier revisions: the fault-matrix suite asserts the
//! *exact* variant each injected fault produces.

use std::fmt;
use std::io;

use arm2gc_comm::ChannelError;
use arm2gc_ot::OtError;
use arm2gc_proto::{ConfigError, ProtoError};

/// Why a service session tore down.
///
/// `#[non_exhaustive]`: future revisions may refine the taxonomy, so
/// match with a wildcard arm.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// A configured socket read/write deadline elapsed — the peer is
    /// alive-but-stalled (or gone without a reset).
    Timeout,
    /// The peer disconnected mid-session (orderly close, reset, or
    /// broken pipe).
    PeerDisconnect,
    /// The peer sent a frame that failed to decode; `tag` is the
    /// frame's leading tag byte.
    CorruptFrame {
        /// Tag byte of the undecodable frame.
        tag: u8,
    },
    /// A sharded session's remaining `ServiceAttach` connections never
    /// arrived within the attach deadline; the parked slot was freed.
    AttachTimeout,
    /// The service shut down while the session was still parked
    /// awaiting shard attachments.
    Shutdown,
    /// Any other socket-level failure, with the original error kind.
    Io(io::ErrorKind),
    /// The session's configuration failed validation after acceptance
    /// (should be unreachable — requests are validated at the
    /// preamble).
    Config(ConfigError),
    /// The requested workload stopped resolving between acceptance and
    /// execution.
    Workload(String),
    /// A session-level protocol violation: frames decoded but their
    /// contents or order were invalid (wrong frame here, version
    /// mismatch, label-count mismatch, ...).
    Protocol(&'static str),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Timeout => f.write_str("session io deadline elapsed"),
            SessionError::PeerDisconnect => f.write_str("peer disconnected"),
            SessionError::CorruptFrame { tag } => {
                write!(f, "corrupt protocol frame (tag {tag})")
            }
            SessionError::AttachTimeout => f.write_str("shard attach deadline elapsed"),
            SessionError::Shutdown => f.write_str("service shut down"),
            SessionError::Io(kind) => write!(f, "session io failure: {kind}"),
            SessionError::Config(e) => write!(f, "invalid session configuration: {e}"),
            SessionError::Workload(name) => write!(f, "workload {name:?} not resolvable"),
            SessionError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// The per-reason metrics bucket this error counts into.
    pub fn reason(&self) -> FailureReason {
        match self {
            SessionError::Timeout => FailureReason::Timeout,
            SessionError::PeerDisconnect => FailureReason::PeerDisconnect,
            SessionError::CorruptFrame { .. } => FailureReason::CorruptFrame,
            SessionError::Shutdown => FailureReason::Shutdown,
            // Attach expiry is accounted by the reaper's dedicated
            // counter; via this path it has no bucket of its own.
            _ => FailureReason::Other,
        }
    }
}

impl From<ChannelError> for SessionError {
    fn from(e: ChannelError) -> Self {
        if e.is_disconnect() {
            return SessionError::PeerDisconnect;
        }
        match e {
            ChannelError::Timeout => SessionError::Timeout,
            ChannelError::Io(kind) => SessionError::Io(kind),
            ChannelError::Closed => SessionError::PeerDisconnect,
        }
    }
}

impl From<ProtoError> for SessionError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Channel(c) => c.into(),
            ProtoError::Ot(OtError::Channel(c)) => c.into(),
            ProtoError::Ot(OtError::Protocol(m)) => SessionError::Protocol(m),
            ProtoError::CorruptFrame { tag, .. } => SessionError::CorruptFrame { tag },
            ProtoError::Malformed(m) => SessionError::Protocol(m),
            ProtoError::Config(c) => SessionError::Config(c),
        }
    }
}

/// The failure buckets [`Metrics`](crate::Metrics) counts — a coarser
/// view of [`SessionError`] for exact accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// Socket deadline elapsed.
    Timeout,
    /// Peer went away.
    PeerDisconnect,
    /// Undecodable frame.
    CorruptFrame,
    /// Service shut down underneath the session.
    Shutdown,
    /// Everything else (io, config, workload, protocol violations).
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_errors_map_to_exact_variants() {
        assert_eq!(
            SessionError::from(ProtoError::Channel(ChannelError::Closed)),
            SessionError::PeerDisconnect
        );
        assert_eq!(
            SessionError::from(ProtoError::Channel(ChannelError::Timeout)),
            SessionError::Timeout
        );
        assert_eq!(
            SessionError::from(ProtoError::Channel(ChannelError::Io(
                io::ErrorKind::ConnectionReset
            ))),
            SessionError::PeerDisconnect
        );
        assert_eq!(
            SessionError::from(ProtoError::Channel(ChannelError::Io(
                io::ErrorKind::InvalidData
            ))),
            SessionError::Io(io::ErrorKind::InvalidData)
        );
        assert_eq!(
            SessionError::from(ProtoError::CorruptFrame {
                tag: 1,
                what: "bad magic"
            }),
            SessionError::CorruptFrame { tag: 1 }
        );
        assert_eq!(
            SessionError::from(ProtoError::Malformed("expected hello frame")),
            SessionError::Protocol("expected hello frame")
        );
        assert_eq!(
            SessionError::from(ProtoError::Ot(OtError::Channel(ChannelError::Timeout))),
            SessionError::Timeout
        );
    }

    #[test]
    fn reasons_bucket_the_taxonomy() {
        assert_eq!(SessionError::Timeout.reason(), FailureReason::Timeout);
        assert_eq!(
            SessionError::PeerDisconnect.reason(),
            FailureReason::PeerDisconnect
        );
        assert_eq!(
            SessionError::CorruptFrame { tag: 7 }.reason(),
            FailureReason::CorruptFrame
        );
        assert_eq!(SessionError::Shutdown.reason(), FailureReason::Shutdown);
        assert_eq!(
            SessionError::Workload("x".into()).reason(),
            FailureReason::Other
        );
    }
}
