//! Load generator for the garbler service.
//!
//! Binds an in-process [`GarblerService`] and hammers it with `N`
//! concurrent evaluator clients across a fixed mix of modes
//! (`shards ∈ {1,2}` × `instances ∈ {1,8}`, alternating workload
//! families). Every session's outputs and per-lane cost counters are
//! checked byte-for-byte against a solo in-process run of the same
//! workload; any divergence (or failed session) makes the process exit
//! nonzero, so CI can smoke-run it.
//!
//! ```text
//! cargo run --release -p arm2gc-server --bin load_gen -- --clients 64 --workers 8
//! ```

use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use arm2gc_core::{run_two_party_opts, SessionOptions};
use arm2gc_server::{client, workload, GarblerService, RetryPolicy, ServiceConfig};

/// The mode mix every fourth client cycles through.
const MODES: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 8), (2, 8)];

struct Args {
    clients: usize,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 64,
        workers: 8,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--clients" => args.clients = value("--clients")?,
            "--workers" => args.workers = value("--workers")?,
            "--help" | "-h" => {
                return Err("usage: load_gen [--clients N] [--workers N]".to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 || args.workers == 0 {
        return Err("--clients and --workers must be at least 1".to_string());
    }
    Ok(args)
}

/// One client's verdict: `Ok(lanes)` on a verified session.
fn run_client(addr: std::net::SocketAddr, k: usize) -> Result<usize, String> {
    let (shards, instances) = MODES[k % MODES.len()];
    let family = workload::FAMILIES[k % workload::FAMILIES.len()];
    let name = format!("{family}:{k}");
    let opts = SessionOptions::new().shards(shards).instances(instances);
    // Retry transient connect failures (a briefly saturated accept
    // backlog under hundreds of simultaneous clients) with a backoff
    // seeded per client so the herd spreads out deterministically.
    let policy = RetryPolicy {
        seed: k as u64,
        ..RetryPolicy::default()
    };
    let run = client::run_session_with_retry(addr, &name, &opts, &policy)
        .map_err(|e| format!("client {k} ({name}): {e}"))?;
    let wl = workload::resolve(&name, instances).expect("known workload");
    let (_, solo) = run_two_party_opts(
        &wl.circuit,
        &wl.alices,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &opts,
    );
    if run.outcome.lanes.len() != instances {
        return Err(format!("client {k} ({name}): lane count mismatch"));
    }
    for (lane, (got, want)) in run.outcome.lanes.iter().zip(&solo.lanes).enumerate() {
        if got.outputs != want.outputs {
            return Err(format!(
                "client {k} ({name}) lane {lane}: outputs diverge from solo run"
            ));
        }
        if got.stats != want.stats {
            return Err(format!(
                "client {k} ({name}) lane {lane}: cost counters diverge from solo run"
            ));
        }
        if got.outputs.concat() != wl.expected[lane] {
            return Err(format!(
                "client {k} ({name}) lane {lane}: wrong cleartext result"
            ));
        }
    }
    Ok(instances)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let svc = match GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(args.workers))
    {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = svc.local_addr();
    println!(
        "load_gen: {} clients over {} workers at {addr} (modes {MODES:?})",
        args.clients, args.workers
    );

    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    let handles: Vec<_> = (0..args.clients)
        .map(|k| {
            let tx = tx.clone();
            thread::spawn(move || {
                let _ = tx.send(run_client(addr, k));
            })
        })
        .collect();
    drop(tx);

    let mut lanes_verified = 0usize;
    let mut failures = 0usize;
    for verdict in rx {
        match verdict {
            Ok(lanes) => lanes_verified += lanes,
            Err(msg) => {
                failures += 1;
                eprintln!("FAIL {msg}");
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed();

    let m = svc.metrics();
    svc.shutdown();
    let secs = elapsed.as_secs_f64().max(f64::EPSILON);
    #[allow(clippy::cast_precision_loss)]
    let tables_per_sec = m.tables_sent as f64 / secs;
    println!(
        "sessions: {} accepted, {} completed, {} failed, {} rejected",
        m.sessions_accepted, m.sessions_completed, m.sessions_failed, m.sessions_rejected
    );
    println!(
        "failures: {} timeout, {} disconnect, {} corrupt, {} shutdown, {} other, \
         {} attach-expired, {} preamble-expired",
        m.failed_timeout,
        m.failed_peer_disconnect,
        m.failed_corrupt_frame,
        m.failed_shutdown,
        m.failed_other,
        m.rejected_attach_timeout,
        m.rejected_preamble_timeout
    );
    println!(
        "queues:   job high-water {}, send high-water {} frames",
        m.job_queue_high_water, m.send_queue_high_water
    );
    println!(
        "volume:   {} tables ({} bytes) in {:.2}s -> {tables_per_sec:.0} tables/sec",
        m.tables_sent, m.table_bytes_sent, secs
    );
    println!("verified: {lanes_verified} lanes byte-equal to solo runs, {failures} failures");

    let all_completed = m.sessions_completed as usize == args.clients;
    if failures == 0 && all_completed && m.sessions_failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
