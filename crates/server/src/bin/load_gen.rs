//! Load generator for the garbler service.
//!
//! Binds an in-process [`GarblerService`] and hammers it with `N`
//! concurrent evaluator clients across a fixed mix of modes
//! (`shards ∈ {1,2}` × `instances ∈ {1,8}`, alternating workload
//! families). Every session's outputs and per-lane cost counters are
//! checked byte-for-byte against a solo in-process run of the same
//! workload; any divergence (or failed session) makes the process exit
//! nonzero, so CI can smoke-run it.
//!
//! `--ot np-iknp` switches the whole fleet to the real Naor–Pinkas +
//! IKNP stack (over the fast test group unless `--ot-group standard`),
//! and `--sessions N` runs N sequential sessions per client under one
//! base-OT reuse token each — the printed OT books then separate the
//! base setups paid from the OTs served by extending cached state.
//!
//! ```text
//! cargo run --release -p arm2gc-server --bin load_gen -- --clients 64 --workers 8
//! cargo run --release -p arm2gc-server --bin load_gen -- \
//!     --clients 16 --ot np-iknp --sessions 4
//! ```

use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use arm2gc_core::{run_two_party_opts, OtBackend, OtConfig, SessionOptions};
use arm2gc_server::{client, workload, GarblerService, RetryPolicy, ServiceConfig};

/// The mode mix every fourth client cycles through.
const MODES: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 8), (2, 8)];

struct Args {
    clients: usize,
    workers: usize,
    sessions: usize,
    ot: OtBackend,
    ot_config: OtConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 64,
        workers: 8,
        sessions: 1,
        ot: OtBackend::Insecure,
        ot_config: OtConfig::TEST,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut raw = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => {
                args.clients = raw("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--workers" => {
                args.workers = raw("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--sessions" => {
                args.sessions = raw("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
            }
            "--ot" => {
                args.ot = match raw("--ot")?.as_str() {
                    "insecure" => OtBackend::Insecure,
                    "np-iknp" => OtBackend::NaorPinkasIknp,
                    other => return Err(format!("--ot: unknown backend {other:?}")),
                };
            }
            "--ot-group" => {
                args.ot_config = match raw("--ot-group")?.as_str() {
                    "test" => OtConfig::TEST,
                    "standard" => OtConfig::STANDARD,
                    other => return Err(format!("--ot-group: unknown group {other:?}")),
                };
            }
            "--help" | "-h" => {
                return Err(
                    "usage: load_gen [--clients N] [--workers N] [--sessions N] \
                     [--ot insecure|np-iknp] [--ot-group test|standard]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 || args.workers == 0 || args.sessions == 0 {
        return Err("--clients, --workers and --sessions must be at least 1".to_string());
    }
    Ok(args)
}

/// One client's verdict: `Ok(lanes)` across its verified sessions.
fn run_client(addr: std::net::SocketAddr, k: usize, args: &Args) -> Result<usize, String> {
    let (shards, instances) = MODES[k % MODES.len()];
    let family = workload::FAMILIES[k % workload::FAMILIES.len()];
    let name = format!("{family}:{k}");
    let opts = SessionOptions::new()
        .shards(shards)
        .instances(instances)
        .ot(args.ot)
        .ot_config(args.ot_config);
    // Retry transient connect failures (a briefly saturated accept
    // backlog under hundreds of simultaneous clients) with a backoff
    // seeded per client so the herd spreads out deterministically.
    let policy = RetryPolicy {
        seed: k as u64,
        ..RetryPolicy::default()
    };
    let wl = workload::resolve(&name, instances).expect("known workload");
    let (_, solo) = run_two_party_opts(
        &wl.circuit,
        &wl.alices,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &opts,
    );
    // Every client reuses one base-OT token across its sessions (inert
    // under the insecure backend).
    let mut resume = client::OtResume::new(k as u64 + 1);
    let mut lanes_verified = 0usize;
    for s in 0..args.sessions {
        let mut attempt = 0;
        let run = loop {
            match client::run_session_resumed(addr, &name, &opts, &mut resume) {
                Ok(run) => break run,
                // Only a session with no banked state is safely
                // retryable — once state exists, a transient failure
                // forfeits it server-side and the next attempt must
                // observe the un-resumed accept (which the call above
                // handles), so retry those too.
                Err(e) if e.is_transient() && attempt + 1 < policy.attempts => {
                    thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(format!("client {k} ({name}) session {s}: {e}")),
            }
        };
        if run.outcome.lanes.len() != instances {
            return Err(format!(
                "client {k} ({name}) session {s}: lane count mismatch"
            ));
        }
        for (lane, (got, want)) in run.outcome.lanes.iter().zip(&solo.lanes).enumerate() {
            if got.outputs != want.outputs {
                return Err(format!(
                    "client {k} ({name}) session {s} lane {lane}: outputs diverge from solo run"
                ));
            }
            if got.stats != want.stats {
                return Err(format!(
                    "client {k} ({name}) session {s} lane {lane}: cost counters diverge"
                ));
            }
            if got.outputs.concat() != wl.expected[lane] {
                return Err(format!(
                    "client {k} ({name}) session {s} lane {lane}: wrong cleartext result"
                ));
            }
        }
        lanes_verified += instances;
    }
    Ok(lanes_verified)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let svc = match GarblerService::bind(
        "127.0.0.1:0",
        ServiceConfig::new()
            .workers(args.workers)
            .ot(args.ot)
            .ot_config(args.ot_config),
    ) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = svc.local_addr();
    println!(
        "load_gen: {} clients x {} sessions over {} workers at {addr} \
         (modes {MODES:?}, ot {:?})",
        args.clients, args.sessions, args.workers, args.ot
    );

    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    let args = std::sync::Arc::new(args);
    let handles: Vec<_> = (0..args.clients)
        .map(|k| {
            let tx = tx.clone();
            let args = std::sync::Arc::clone(&args);
            thread::spawn(move || {
                let _ = tx.send(run_client(addr, k, &args));
            })
        })
        .collect();
    drop(tx);

    let mut lanes_verified = 0usize;
    let mut failures = 0usize;
    for verdict in rx {
        match verdict {
            Ok(lanes) => lanes_verified += lanes,
            Err(msg) => {
                failures += 1;
                eprintln!("FAIL {msg}");
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed();

    // Clients hold their full outcomes slightly before the garbler
    // side finishes its books — wait (bounded) for the records to
    // settle so the final accounting isn't racing a teardown.
    let want_sessions = args.clients * args.sessions;
    let settle = Instant::now() + std::time::Duration::from_secs(10);
    while Instant::now() < settle {
        let m = svc.metrics();
        if (m.sessions_completed + m.sessions_failed) as usize >= want_sessions {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    let m = svc.metrics();
    svc.shutdown();
    let secs = elapsed.as_secs_f64().max(f64::EPSILON);
    #[allow(clippy::cast_precision_loss)]
    let tables_per_sec = m.tables_sent as f64 / secs;
    println!(
        "sessions: {} accepted, {} completed, {} failed, {} rejected",
        m.sessions_accepted, m.sessions_completed, m.sessions_failed, m.sessions_rejected
    );
    println!(
        "failures: {} timeout, {} disconnect, {} corrupt, {} shutdown, {} other, \
         {} attach-expired, {} preamble-expired",
        m.failed_timeout,
        m.failed_peer_disconnect,
        m.failed_corrupt_frame,
        m.failed_shutdown,
        m.failed_other,
        m.rejected_attach_timeout,
        m.rejected_preamble_timeout
    );
    println!(
        "queues:   job high-water {}, send high-water {} frames",
        m.job_queue_high_water, m.send_queue_high_water
    );
    println!(
        "ot:       {} base setups, {} OTs by extension, {} cached states evicted",
        m.ot_base_setups, m.ot_extended, m.ot_cache_evicted
    );
    println!(
        "volume:   {} tables ({} bytes) in {:.2}s -> {tables_per_sec:.0} tables/sec",
        m.tables_sent, m.table_bytes_sent, secs
    );
    println!("verified: {lanes_verified} lanes byte-equal to solo runs, {failures} failures");

    let all_completed = m.sessions_completed as usize == want_sessions;
    if failures == 0 && all_completed && m.sessions_failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
