//! Multi-tenant garbler service on the unified session API.
//!
//! This crate turns the workspace's garbling engine into a long-lived
//! network service: one [`GarblerService`] accepts TCP connections,
//! performs the typed service preamble, and multiplexes hundreds of
//! concurrent evaluator sessions over a bounded worker pool. Each
//! session is a plain [`drive_garbler`](arm2gc_core::drive_garbler)
//! call parameterised by [`SessionOptions`](arm2gc_core::SessionOptions)
//! — the service adds tenancy, not protocol:
//!
//! * **Session multiplexing** — every accepted session runs as one job
//!   on a fixed pool of workers; excess sessions queue (bounded) and
//!   the rest get a typed "server busy" rejection.
//! * **Backpressure isolation** — each session writes through its own
//!   bounded [`QueuedChannel`], so one slow evaluator stalls only its
//!   own worker, never the accept loop or another tenant.
//! * **Graceful teardown** — a malformed frame or mid-protocol failure
//!   tears down exactly that session (sockets dropped, failure
//!   counted); the service keeps serving.
//! * **Deterministic metrics** — the [`Metrics`] registry counts
//!   events and queue high-water marks only, never clocks, so CI pins
//!   service behaviour exactly; rates live in observers like the
//!   `load_gen` binary.
//!
//! The evaluator side lives in [`client`]; deterministic named
//! [`workload`]s give both parties their inputs so a session can be
//! verified bit-for-bit against a solo run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod queue;
pub mod service;
pub mod workload;

pub use client::{connect, run_session, ClientError, Connection, SessionRun};
pub use metrics::{Metrics, MetricsSnapshot};
pub use queue::QueuedChannel;
pub use service::{GarblerService, ServiceConfig, SessionRecord};
pub use workload::{resolve, Workload, FAMILIES};
