//! Multi-tenant garbler service on the unified session API.
//!
//! This crate turns the workspace's garbling engine into a long-lived
//! network service: one [`GarblerService`] accepts TCP connections,
//! performs the typed service preamble, and multiplexes hundreds of
//! concurrent evaluator sessions over a bounded worker pool. Each
//! session is a plain [`drive_garbler`](arm2gc_core::drive_garbler)
//! call parameterised by [`SessionOptions`](arm2gc_core::SessionOptions)
//! — the service adds tenancy, not protocol:
//!
//! * **Session multiplexing** — every accepted session runs as one job
//!   on a fixed pool of workers; excess sessions queue (bounded) and
//!   the rest get a typed "server busy" rejection.
//! * **Backpressure isolation** — each session writes through its own
//!   bounded [`QueuedChannel`], so one slow evaluator stalls only its
//!   own worker, never the accept loop or another tenant.
//! * **Failure containment** — a corrupt frame, disconnect, or elapsed
//!   deadline tears down exactly that session with one typed
//!   [`SessionError`], counted per reason in [`Metrics`]; co-tenants
//!   are untouched and the service keeps serving.
//! * **Deadlines end-to-end** — the preamble read, shard attachment
//!   (a reaper expires parked bundles), per-session socket io, and a
//!   drain window on graceful shutdown are all bounded.
//! * **Deterministic metrics** — the [`Metrics`] registry counts
//!   events and queue high-water marks only, never clocks, so CI pins
//!   service behaviour exactly; rates live in observers like the
//!   `load_gen` binary.
//!
//! The evaluator side lives in [`client`], including a deterministic
//! capped-backoff [`RetryPolicy`] for transient connection failures;
//! deterministic named [`workload`]s give both parties their inputs so
//! a session can be verified bit-for-bit against a solo run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod metrics;
pub mod queue;
pub mod service;
pub mod workload;

pub use client::{
    connect, connect_with_retry, connect_with_token, run_session, run_session_resumed,
    run_session_with_retry, ClientError, Connection, OtResume, RetryPolicy, SessionRun,
};
pub use error::{FailureReason, SessionError};
pub use metrics::{Metrics, MetricsSnapshot};
pub use queue::QueuedChannel;
pub use service::{GarblerService, ServiceConfig, SessionRecord};
pub use workload::{resolve, Workload, FAMILIES};
