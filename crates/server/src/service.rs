//! The multi-tenant garbler service.
//!
//! One [`GarblerService`] accepts TCP connections, performs the typed
//! service preamble (tags 9–12 of the wire protocol), and multiplexes
//! every accepted session over a bounded worker pool:
//!
//! ```text
//!             ┌──────────────┐  ServiceRequest   ┌─────────────────┐
//!  client ───▶│ accept loop  │──────────────────▶│ preamble thread │
//!             └──────────────┘                   │  validate+match │
//!                                                └───────┬─────────┘
//!                                       ServiceAccept /  │ enqueue
//!                                       ServiceReject    ▼
//!             ┌──────────────────────────────────────────────────┐
//!             │ worker pool (N workers, bounded job queue)       │
//!             │  per session: QueuedChannel(s) → drive_garbler   │
//!             └──────────────────────────────────────────────────┘
//! ```
//!
//! * A session's shard sub-streams arrive as separate connections
//!   carrying [`Message::ServiceAttach`]; the service holds the partial
//!   bundle in a pending map and enqueues the job once every shard is
//!   attached. A reaper thread expires parked bundles whose remaining
//!   attachments miss the attach deadline, freeing their slot.
//! * Each session writes through its own bounded [`QueuedChannel`]s, so
//!   a slow evaluator backpressures only its own worker — never the
//!   accept loop, never another session.
//! * Every torn-down session fails with one typed [`SessionError`] —
//!   deadline, disconnect, corrupt frame (with its tag), attach expiry,
//!   shutdown — kept in its [`SessionRecord`] and counted per reason in
//!   [`Metrics`]; co-tenant sessions are untouched.
//! * Deadlines are end-to-end: the preamble read, shard attachment,
//!   per-session socket io (from [`ServiceConfig::io_timeout`]), and a
//!   drain deadline on [`shutdown_drain`](GarblerService::shutdown_drain).
//! * Every counter in the [`Metrics`] registry is deterministic (no
//!   clocks), so CI pins service-level behaviour byte-for-byte.
//!
//! [`Message::ServiceAttach`]: arm2gc_proto::Message::ServiceAttach

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use arm2gc_circuit::ScheduleMode;
use arm2gc_comm::{Channel, ChannelError, TcpChannel};
use arm2gc_core::{drive_garbler, SessionOptions, SkipGateStats};
use arm2gc_crypto::Prg;
use arm2gc_ot::OtSender;
use arm2gc_proto::{Message, OtBackend, OtConfig, OtSenderState, ResumableOtSender, StreamConfig};
use threadpool::ThreadPool;

use crate::error::SessionError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::QueuedChannel;
use crate::workload;

/// Tuning knobs of a [`GarblerService`].
///
/// `#[non_exhaustive]`: build with [`ServiceConfig::new`] (or
/// `default()`) plus the chained setters.
#[non_exhaustive]
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads garbling sessions concurrently.
    pub workers: usize,
    /// Most accepted sessions allowed to wait for a worker; beyond
    /// this, requests are rejected with a typed "server busy".
    pub max_queued: usize,
    /// Bound of each session's per-channel send queue (frames). The
    /// knob that decides how far a garbler may run ahead of a slow
    /// evaluator before blocking.
    pub send_queue_frames: usize,
    /// OT stack every session uses (out-of-band configuration: clients
    /// must drive with the same backend).
    pub ot: OtBackend,
    /// Base-OT group for [`OtBackend::NaorPinkasIknp`] sessions
    /// (default: the production 1279-bit group). Clients must use the
    /// same group — element widths are group constants.
    pub ot_config: OtConfig,
    /// How long a cached base-OT resume state may sit unused before the
    /// reaper evicts it (default 300 s). `None` caches forever — every
    /// abandoned token then holds its state until shutdown.
    pub ot_cache_timeout: Option<Duration>,
    /// Garbler-side table-streaming configuration.
    pub stream: StreamConfig,
    /// Execution schedule for single-lane sessions (transport-only —
    /// the wire bytes don't depend on it, so clients need not match).
    pub schedule: ScheduleMode,
    /// How long a fresh connection may take to produce its complete
    /// preamble frame before being dropped (default 10 s). `None`
    /// waits forever — a connect-and-stall client then pins one
    /// preamble thread, though never the accept loop.
    pub preamble_timeout: Option<Duration>,
    /// How long a parked sharded session may wait for its remaining
    /// `ServiceAttach` connections before the reaper expires it
    /// (default 30 s). `None` parks forever — the pre-deadline
    /// behaviour that leaked pending entries.
    pub attach_timeout: Option<Duration>,
    /// Per-session socket read/write deadline applied to every session
    /// stream once it leaves the preamble (default `None`: block
    /// forever, the historical behaviour — a wedged-but-connected
    /// evaluator holds its worker, contained by its own send queue).
    pub io_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_queued: 256,
            send_queue_frames: 64,
            ot: OtBackend::default(),
            ot_config: OtConfig::default(),
            ot_cache_timeout: Some(Duration::from_secs(300)),
            stream: StreamConfig::default(),
            schedule: ScheduleMode::default(),
            preamble_timeout: Some(Duration::from_secs(10)),
            attach_timeout: Some(Duration::from_secs(30)),
            io_timeout: None,
        }
    }
}

impl ServiceConfig {
    /// The default configuration (4 workers, 256 queued sessions,
    /// 64-frame send queues, insecure reference OT, 10 s preamble
    /// deadline, 30 s attach deadline, no session io deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the accepted-but-waiting session bound.
    #[must_use]
    pub fn max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Sets the per-channel send-queue bound (frames).
    #[must_use]
    pub fn send_queue_frames(mut self, frames: usize) -> Self {
        self.send_queue_frames = frames;
        self
    }

    /// Selects the OT backend.
    #[must_use]
    pub fn ot(mut self, ot: OtBackend) -> Self {
        self.ot = ot;
        self
    }

    /// Selects the Naor–Pinkas base-OT group.
    #[must_use]
    pub fn ot_config(mut self, ot_config: OtConfig) -> Self {
        self.ot_config = ot_config;
        self
    }

    /// Sets (or disables, with `None`) the OT resume-state eviction
    /// deadline.
    #[must_use]
    pub fn ot_cache_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.ot_cache_timeout = timeout;
        self
    }

    /// Sets (or disables, with `None`) the preamble deadline.
    #[must_use]
    pub fn preamble_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.preamble_timeout = timeout;
        self
    }

    /// Sets (or disables, with `None`) the shard-attach deadline.
    #[must_use]
    pub fn attach_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.attach_timeout = timeout;
        self
    }

    /// Sets (or clears, with `None`) the per-session socket deadline.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }
}

/// What one session did, for the deterministic registry.
#[derive(Clone, Debug)]
pub struct SessionRecord {
    /// Service-assigned session id (dense, in accept order).
    pub session: u64,
    /// The workload name the client requested.
    pub workload: String,
    /// Negotiated shard count.
    pub shards: usize,
    /// Negotiated lane count.
    pub instances: usize,
    /// Per-lane cost counters on success, or the typed teardown reason.
    pub result: Result<Vec<SkipGateStats>, SessionError>,
}

/// A session accepted but still waiting for shard attachments.
struct Pending {
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<Option<TcpStream>>,
    /// When the reaper may expire this bundle (`None`: never).
    deadline: Option<Instant>,
    /// The client's base-OT reuse token (0: none).
    ot_token: u64,
    /// Resume state checked out of the OT cache at accept time; rides
    /// with the parked bundle and returns to the cache if the bundle
    /// expires (it was never advanced).
    ot_state: Option<OtSenderState>,
}

/// One cached IKNP extension state, keyed by (client token) in
/// [`Shared::ot_cache`]. Checkout is exclusive: the entry is *removed*
/// while its session runs, so a concurrent session reusing the token
/// falls back to a fresh setup instead of forking the counter state.
struct OtCacheEntry {
    state: OtSenderState,
    /// When the reaper may evict this entry (`None`: never).
    deadline: Option<Instant>,
}

struct Shared {
    config: ServiceConfig,
    metrics: Arc<Metrics>,
    records: Mutex<Vec<SessionRecord>>,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Base-OT reuse cache: client token → parked IKNP sender state.
    ot_cache: Mutex<HashMap<u64, OtCacheEntry>>,
    /// Per token, the newest session that checked the cache — the only
    /// one whose state return is accepted. A slow teardown of an older
    /// session must not clobber a newer session's banked state: the
    /// IKNP counters would silently desync against the client's half.
    ot_latest: Mutex<HashMap<u64, u64>>,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    /// Set while [`GarblerService::shutdown_drain`] runs: new requests
    /// are rejected but attaches for already-parked sessions still
    /// land.
    draining: AtomicBool,
    pool: ThreadPool,
    /// Reaper parking brake: `lock` then flip to `true` and
    /// `notify` to stop the reaper promptly.
    reaper_stop: Mutex<bool>,
    reaper_wake: Condvar,
}

impl Shared {
    /// Expires every pending bundle past its deadline (or all of them,
    /// when `expire_all` — shutdown). Returns the number expired.
    fn expire_pending(&self, expire_all: bool, reason: SessionError) -> usize {
        let now = Instant::now();
        let expired: Vec<(u64, Pending)> = {
            let mut pending = self.pending.lock().unwrap();
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| expire_all || p.deadline.is_some_and(|d| d <= now))
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .map(|id| (id, pending.remove(&id).expect("held lock")))
                .collect()
        };
        let count = expired.len();
        for (session, entry) in expired {
            match reason {
                SessionError::Shutdown => self.metrics.parked_shutdown(),
                _ => self.metrics.attach_expired(),
            }
            // The bundle never ran, so its checked-out OT state was
            // never advanced — hand it back to the cache.
            self.return_ot_state(entry.ot_token, session, entry.ot_state);
            // Tell the waiting client why before the sockets drop.
            if let Ok(mut ch) = TcpChannel::from_stream(entry.main) {
                let _ = ch.send(
                    &Message::ServiceReject {
                        reason: reason.to_string(),
                    }
                    .encode(),
                );
            }
            self.records.lock().unwrap().push(SessionRecord {
                session,
                workload: entry.workload,
                shards: entry.shards,
                instances: entry.instances,
                result: Err(reason.clone()),
            });
        }
        count
    }

    /// Removes and returns the cached OT state for `token` (exclusive
    /// checkout; expired entries are not handed out), and records
    /// `session` as the token's newest tenant — from here on, only its
    /// state return is accepted.
    fn checkout_ot(&self, token: u64, session: u64) -> Option<OtSenderState> {
        self.ot_latest.lock().unwrap().insert(token, session);
        let mut cache = self.ot_cache.lock().unwrap();
        let entry = cache.remove(&token)?;
        if entry.deadline.is_some_and(|d| d <= Instant::now()) {
            // Overdue but not yet reaped: evict instead of resuming.
            drop(cache);
            self.metrics.ot_evicted(1);
            return None;
        }
        Some(entry.state)
    }

    /// Parks `state` (if any) back in the cache under `token` with a
    /// refreshed eviction deadline — but only from the token's newest
    /// session. A stale return (an older same-token session whose
    /// teardown outlived a newer accept) is dropped on the floor:
    /// caching it would desync the next resume against the client's
    /// banked receiver counters.
    fn return_ot_state(&self, token: u64, session: u64, state: Option<OtSenderState>) {
        let Some(state) = state else { return };
        if token == 0 {
            return;
        }
        if self.ot_latest.lock().unwrap().get(&token) != Some(&session) {
            return;
        }
        let deadline = self.config.ot_cache_timeout.map(|t| Instant::now() + t);
        self.ot_cache
            .lock()
            .unwrap()
            .insert(token, OtCacheEntry { state, deadline });
    }

    /// Evicts every cached OT state past its deadline. Returns the
    /// number evicted.
    fn evict_ot_cache(&self) -> usize {
        let now = Instant::now();
        let evicted = {
            let mut cache = self.ot_cache.lock().unwrap();
            let before = cache.len();
            cache.retain(|_, e| !e.deadline.is_some_and(|d| d <= now));
            before - cache.len()
        };
        if evicted > 0 {
            self.metrics.ot_evicted(evicted as u64);
        }
        evicted
    }
}

/// A running multi-tenant garbler service.
///
/// Binds a listener, spawns the accept loop and the attach reaper, and
/// garbles every accepted session on the worker pool until
/// [`shutdown`] / [`shutdown_drain`]. The server plays Alice: each
/// session's inputs come from the requested deterministic
/// [`workload`].
///
/// [`shutdown`]: Self::shutdown
/// [`shutdown_drain`]: Self::shutdown_drain
pub struct GarblerService {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl GarblerService {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting sessions.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, config: ServiceConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            metrics: Arc::new(Metrics::default()),
            records: Mutex::new(Vec::new()),
            pending: Mutex::new(HashMap::new()),
            ot_cache: Mutex::new(HashMap::new()),
            ot_latest: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            pool: ThreadPool::new(config.workers.max(1)),
            reaper_stop: Mutex::new(false),
            reaper_wake: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_shared));
        let reaper_shared = Arc::clone(&shared);
        let reaper = thread::spawn(move || reaper_loop(&reaper_shared));
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
            reaper: Some(reaper),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Records of every finished session, ordered by session id.
    pub fn records(&self) -> Vec<SessionRecord> {
        let mut records = self.shared.records.lock().unwrap().clone();
        records.sort_by_key(|r| r.session);
        records
    }

    /// Immediate shutdown: [`shutdown_drain`](Self::shutdown_drain)
    /// with a zero drain window. Parked sessions are discarded with a
    /// typed [`SessionError::Shutdown`]; running sessions keep their
    /// (detached) workers until they finish on their own.
    pub fn shutdown(self) {
        self.shutdown_drain(Duration::ZERO);
    }

    /// Graceful shutdown: stops accepting, discards parked sessions
    /// with a typed [`SessionError::Shutdown`], then waits up to
    /// `drain` for active and queued sessions to finish. Returns `true`
    /// when everything drained inside the window; on `false`, the
    /// stragglers keep their detached workers (they may still complete,
    /// but nobody is left to ask).
    pub fn shutdown_drain(mut self, drain: Duration) -> bool {
        // New preambles are rejected from here on.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accepting();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Parked bundles can never complete once attaches stop arriving.
        self.shared.expire_pending(true, SessionError::Shutdown);
        self.stop_reaper();
        let deadline = Instant::now() + drain;
        loop {
            if self.shared.pool.active_count() == 0 && self.shared.pool.queued_count() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    fn stop_accepting(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn stop_reaper(&mut self) {
        *self.shared.reaper_stop.lock().unwrap() = true;
        self.shared.reaper_wake.notify_all();
        if let Some(handle) = self.reaper.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GarblerService {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
        if self.reaper.is_some() {
            self.stop_reaper();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Preamble handling gets its own short-lived thread so a
        // client that connects and stalls cannot block the accept
        // loop for everyone else.
        let shared = Arc::clone(shared);
        thread::spawn(move || handle_connection(&shared, stream));
    }
}

/// Expires overdue parked sessions every tick until told to stop.
fn reaper_loop(shared: &Arc<Shared>) {
    let tick = Duration::from_millis(25);
    let mut stop = shared.reaper_stop.lock().unwrap();
    while !*stop {
        let (guard, _) = shared.reaper_wake.wait_timeout(stop, tick).unwrap();
        stop = guard;
        if *stop {
            return;
        }
        drop(stop);
        shared.expire_pending(false, SessionError::AttachTimeout);
        shared.evict_ot_cache();
        stop = shared.reaper_stop.lock().unwrap();
    }
}

/// Reads and dispatches one connection's first frame, under the
/// preamble deadline.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(pre_stream) = stream.try_clone() else {
        return;
    };
    let Ok(mut pre) = TcpChannel::from_stream(pre_stream) else {
        return;
    };
    if pre
        .set_read_timeout(shared.config.preamble_timeout)
        .is_err()
    {
        return;
    }
    let frame = match pre.recv() {
        Ok(frame) => frame,
        Err(ChannelError::Timeout) => {
            // Connected but never produced a preamble: count and drop.
            shared.metrics.preamble_timeout();
            return;
        }
        Err(_) => return,
    };
    match Message::decode(&frame) {
        Ok(Message::ServiceRequest {
            shards,
            instances,
            ot_token,
            workload,
        }) => handle_request(
            shared, stream, &mut pre, shards, instances, ot_token, workload,
        ),
        Ok(Message::ServiceAttach { session, shard }) => {
            handle_attach(shared, stream, &mut pre, session, shard);
        }
        _ => reject(shared, &mut pre, "malformed service preamble".into()),
    }
}

fn reject(shared: &Arc<Shared>, pre: &mut TcpChannel, reason: String) {
    shared.metrics.session_rejected();
    let _ = pre.send(&Message::ServiceReject { reason }.encode());
}

fn handle_request(
    shared: &Arc<Shared>,
    stream: TcpStream,
    pre: &mut TcpChannel,
    shards: u8,
    instances: u16,
    ot_token: u64,
    workload: String,
) {
    if shared.draining.load(Ordering::SeqCst) {
        return reject(shared, pre, "service shutting down".into());
    }
    let check = SessionOptions::new()
        .shards(shards as usize)
        .instances(instances as usize);
    if let Err(e) = check.validate() {
        return reject(shared, pre, e.to_string());
    }
    if workload::resolve(&workload, 1).is_none() {
        return reject(shared, pre, format!("unknown workload {workload:?}"));
    }
    let queued = shared.metrics.snapshot().job_queue_depth;
    if queued >= shared.config.max_queued as u64 {
        return reject(
            shared,
            pre,
            format!("server busy: {queued} sessions queued"),
        );
    }
    let session = shared.next_session.fetch_add(1, Ordering::SeqCst) + 1;
    // Checkout happens after every reject gate, so a rejected request
    // never pulls a cached state out of circulation. Exclusive: a
    // concurrent session on the same token finds the slot empty and
    // pays a fresh setup instead of forking the counter state.
    let ot_state = if ot_token != 0 && shared.config.ot == OtBackend::NaorPinkasIknp {
        shared.checkout_ot(ot_token, session)
    } else {
        None
    };
    let resumed = ot_state.is_some();
    let shard_count = shards as usize;
    if shard_count > 1 {
        // Park until every shard sub-stream attaches (or the reaper
        // expires the bundle). Insert before sending Accept so an
        // eager client's attach can't miss.
        shared.pending.lock().unwrap().insert(
            session,
            Pending {
                workload,
                shards: shard_count,
                instances: instances as usize,
                main: stream,
                shard_streams: (0..shard_count).map(|_| None).collect(),
                deadline: shared.config.attach_timeout.map(|t| Instant::now() + t),
                ot_token,
                ot_state,
            },
        );
        if pre
            .send(&Message::ServiceAccept { session, resumed }.encode())
            .is_err()
        {
            if let Some(entry) = shared.pending.lock().unwrap().remove(&session) {
                shared.return_ot_state(entry.ot_token, session, entry.ot_state);
            }
            return;
        }
        shared.metrics.session_accepted();
    } else {
        if pre
            .send(&Message::ServiceAccept { session, resumed }.encode())
            .is_err()
        {
            // The client never saw the accept; its next request should
            // still find the cached state.
            shared.return_ot_state(ot_token, session, ot_state);
            return;
        }
        shared.metrics.session_accepted();
        enqueue(
            shared,
            session,
            workload,
            1,
            instances as usize,
            stream,
            Vec::new(),
            ot_token,
            ot_state,
        );
    }
}

fn handle_attach(
    shared: &Arc<Shared>,
    stream: TcpStream,
    pre: &mut TcpChannel,
    session: u64,
    shard: u8,
) {
    let ready = {
        let mut pending = shared.pending.lock().unwrap();
        let Some(entry) = pending.get_mut(&session) else {
            drop(pending);
            return reject(shared, pre, format!("unknown session {session}"));
        };
        let slot = shard as usize;
        if slot >= entry.shards {
            drop(pending);
            return reject(shared, pre, format!("shard {shard} out of range"));
        }
        if entry.shard_streams[slot].is_some() {
            drop(pending);
            return reject(shared, pre, format!("shard {shard} already attached"));
        }
        entry.shard_streams[slot] = Some(stream);
        if entry.shard_streams.iter().all(Option::is_some) {
            pending.remove(&session)
        } else {
            None
        }
    };
    if let Some(entry) = ready {
        enqueue(
            shared,
            session,
            entry.workload,
            entry.shards,
            entry.instances,
            entry.main,
            entry.shard_streams.into_iter().flatten().collect(),
            entry.ot_token,
            entry.ot_state,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn enqueue(
    shared: &Arc<Shared>,
    session: u64,
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<TcpStream>,
    ot_token: u64,
    ot_state: Option<OtSenderState>,
) {
    shared.metrics.job_queued();
    let job_shared = Arc::clone(shared);
    shared.pool.execute(move || {
        run_session(
            &job_shared,
            session,
            workload,
            shards,
            instances,
            main,
            shard_streams,
            ot_token,
            ot_state,
        );
    });
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    shared: &Arc<Shared>,
    session: u64,
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<TcpStream>,
    ot_token: u64,
    ot_state: Option<OtSenderState>,
) {
    shared.metrics.job_started();
    let cap = shared.config.send_queue_frames;
    let io_timeout = shared.config.io_timeout;
    let mut prg = Prg::from_entropy();
    // The OT endpoint lives outside the session closure so its
    // extension state and setup counters survive the run — booked into
    // metrics either way, returned to the cache only on success (a
    // failed session may have desynced the peer's counters mid-batch).
    let mut np_sender = match shared.config.ot {
        OtBackend::NaorPinkasIknp => Some(match ot_state {
            Some(state) => ResumableOtSender::resume(state, &mut prg),
            None => ResumableOtSender::fresh(shared.config.ot_config, &mut prg),
        }),
        _ => None,
    };
    let np_ref = np_sender.as_mut();
    let result = (|| -> Result<Vec<SkipGateStats>, SessionError> {
        let wl = workload::resolve(&workload, instances)
            .ok_or_else(|| SessionError::Workload(workload.clone()))?;
        let opts = SessionOptions::new()
            .shards(shards)
            .instances(instances)
            .ot(shared.config.ot)
            .ot_config(shared.config.ot_config)
            .stream(shared.config.stream)
            .schedule(shared.config.schedule)
            .io_timeout(io_timeout);
        // Apply the session deadline to every stream — unconditionally,
        // so the preamble deadline left on the main socket is replaced,
        // not inherited.
        for s in std::iter::once(&main).chain(shard_streams.iter()) {
            s.set_read_timeout(io_timeout)
                .and_then(|()| s.set_write_timeout(io_timeout))
                .map_err(|e| SessionError::Io(e.kind()))?;
        }
        let mut main_ch = QueuedChannel::new(main, cap, Arc::clone(&shared.metrics))
            .map_err(|e| SessionError::Io(e.kind()))?;
        let shard_chs = shard_streams
            .into_iter()
            .map(|s| {
                QueuedChannel::new(s, cap, Arc::clone(&shared.metrics))
                    .map(|c| Box::new(c) as Box<dyn Channel>)
            })
            .collect::<io::Result<Vec<_>>>()
            .map_err(|e| SessionError::Io(e.kind()))?;
        let mut insecure;
        let ot: &mut dyn OtSender = match np_ref {
            Some(snd) => snd,
            None => {
                insecure = opts.ot.sender(opts.ot_config, &mut prg);
                insecure.as_mut()
            }
        };
        let outcome = drive_garbler(
            &wl.circuit,
            &wl.alices,
            &wl.publics,
            wl.cycles,
            &mut main_ch,
            shard_chs,
            ot,
            &mut prg,
            &opts,
        )?;
        Ok(outcome.lanes.iter().map(|l| l.stats).collect())
    })();
    if let Some(snd) = np_sender {
        shared.metrics.ot_session(snd.base_setups(), snd.extended());
        if result.is_ok() {
            shared.return_ot_state(ot_token, session, snd.into_state());
        }
    }
    match &result {
        Ok(stats) => {
            let tables: u64 = stats.iter().map(|s| s.garbled_tables).sum();
            let bytes: u64 = stats.iter().map(|s| s.table_bytes).sum();
            shared.metrics.session_completed(tables, bytes);
        }
        // Teardown: the session's channels (and their writer threads)
        // drop here, closing its sockets; nothing else is touched.
        Err(e) => shared.metrics.session_failed(e.reason()),
    }
    shared.records.lock().unwrap().push(SessionRecord {
        session,
        workload,
        shards,
        instances,
        result,
    });
}
