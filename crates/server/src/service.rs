//! The multi-tenant garbler service.
//!
//! One [`GarblerService`] accepts TCP connections, performs the typed
//! service preamble (tags 9–12 of the wire protocol), and multiplexes
//! every accepted session over a bounded worker pool:
//!
//! ```text
//!             ┌──────────────┐  ServiceRequest   ┌─────────────────┐
//!  client ───▶│ accept loop  │──────────────────▶│ preamble thread │
//!             └──────────────┘                   │  validate+match │
//!                                                └───────┬─────────┘
//!                                       ServiceAccept /  │ enqueue
//!                                       ServiceReject    ▼
//!             ┌──────────────────────────────────────────────────┐
//!             │ worker pool (N workers, bounded job queue)       │
//!             │  per session: QueuedChannel(s) → drive_garbler   │
//!             └──────────────────────────────────────────────────┘
//! ```
//!
//! * A session's shard sub-streams arrive as separate connections
//!   carrying [`Message::ServiceAttach`]; the service holds the partial
//!   bundle in a pending map and enqueues the job once every shard is
//!   attached.
//! * Each session writes through its own bounded [`QueuedChannel`]s, so
//!   a slow evaluator backpressures only its own worker — never the
//!   accept loop, never another session.
//! * A malformed or failed session is torn down in isolation: its
//!   sockets drop, [`MetricsSnapshot::sessions_failed`] ticks, and the
//!   next request is served normally.
//! * Every counter in the [`Metrics`] registry is deterministic (no
//!   clocks), so CI pins service-level behaviour byte-for-byte.
//!
//! [`Message::ServiceAttach`]: arm2gc_proto::Message::ServiceAttach

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use arm2gc_circuit::ScheduleMode;
use arm2gc_comm::{Channel, TcpChannel};
use arm2gc_core::{drive_garbler, SessionOptions, SkipGateStats};
use arm2gc_crypto::Prg;
use arm2gc_proto::{Message, OtBackend, StreamConfig};
use threadpool::ThreadPool;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::QueuedChannel;
use crate::workload;

/// Tuning knobs of a [`GarblerService`].
///
/// `#[non_exhaustive]`: build with [`ServiceConfig::new`] (or
/// `default()`) plus the chained setters.
#[non_exhaustive]
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads garbling sessions concurrently.
    pub workers: usize,
    /// Most accepted sessions allowed to wait for a worker; beyond
    /// this, requests are rejected with a typed "server busy".
    pub max_queued: usize,
    /// Bound of each session's per-channel send queue (frames). The
    /// knob that decides how far a garbler may run ahead of a slow
    /// evaluator before blocking.
    pub send_queue_frames: usize,
    /// OT stack every session uses (out-of-band configuration: clients
    /// must drive with the same backend).
    pub ot: OtBackend,
    /// Garbler-side table-streaming configuration.
    pub stream: StreamConfig,
    /// Execution schedule for single-lane sessions (transport-only —
    /// the wire bytes don't depend on it, so clients need not match).
    pub schedule: ScheduleMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_queued: 256,
            send_queue_frames: 64,
            ot: OtBackend::default(),
            stream: StreamConfig::default(),
            schedule: ScheduleMode::default(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration (4 workers, 256 queued sessions,
    /// 64-frame send queues, insecure reference OT).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the accepted-but-waiting session bound.
    #[must_use]
    pub fn max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Sets the per-channel send-queue bound (frames).
    #[must_use]
    pub fn send_queue_frames(mut self, frames: usize) -> Self {
        self.send_queue_frames = frames;
        self
    }

    /// Selects the OT backend.
    #[must_use]
    pub fn ot(mut self, ot: OtBackend) -> Self {
        self.ot = ot;
        self
    }
}

/// What one session did, for the deterministic registry.
#[derive(Clone, Debug)]
pub struct SessionRecord {
    /// Service-assigned session id (dense, in accept order).
    pub session: u64,
    /// The workload name the client requested.
    pub workload: String,
    /// Negotiated shard count.
    pub shards: usize,
    /// Negotiated lane count.
    pub instances: usize,
    /// Per-lane cost counters on success, or the teardown reason.
    pub result: Result<Vec<SkipGateStats>, String>,
}

/// A session accepted but still waiting for shard attachments.
struct Pending {
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<Option<TcpStream>>,
}

struct Shared {
    config: ServiceConfig,
    metrics: Arc<Metrics>,
    records: Mutex<Vec<SessionRecord>>,
    pending: Mutex<HashMap<u64, Pending>>,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    pool: ThreadPool,
}

/// A running multi-tenant garbler service.
///
/// Binds a listener, spawns the accept loop, and garbles every
/// accepted session on the worker pool until [`shutdown`]. The server
/// plays Alice: each session's inputs come from the requested
/// deterministic [`workload`].
///
/// [`shutdown`]: Self::shutdown
pub struct GarblerService {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl GarblerService {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting sessions.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, config: ServiceConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            metrics: Arc::new(Metrics::default()),
            records: Mutex::new(Vec::new()),
            pending: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            pool: ThreadPool::new(config.workers.max(1)),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Records of every finished session, ordered by session id.
    pub fn records(&self) -> Vec<SessionRecord> {
        let mut records = self.shared.records.lock().unwrap().clone();
        records.sort_by_key(|r| r.session);
        records
    }

    /// Stops accepting connections and waits for the accept loop to
    /// exit. Sessions already running keep their workers until they
    /// finish on their own; wedged ones are abandoned (the pool
    /// detaches on drop).
    pub fn shutdown(mut self) {
        self.stop_accepting();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for GarblerService {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Preamble handling gets its own short-lived thread so a
        // client that connects and stalls cannot block the accept
        // loop for everyone else.
        let shared = Arc::clone(shared);
        thread::spawn(move || handle_connection(&shared, stream));
    }
}

/// Reads and dispatches one connection's first frame.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(pre_stream) = stream.try_clone() else {
        return;
    };
    let Ok(mut pre) = TcpChannel::from_stream(pre_stream) else {
        return;
    };
    let Ok(frame) = pre.recv() else {
        return;
    };
    match Message::decode(&frame) {
        Ok(Message::ServiceRequest {
            shards,
            instances,
            workload,
        }) => handle_request(shared, stream, &mut pre, shards, instances, workload),
        Ok(Message::ServiceAttach { session, shard }) => {
            handle_attach(shared, stream, &mut pre, session, shard);
        }
        _ => reject(shared, &mut pre, "malformed service preamble".into()),
    }
}

fn reject(shared: &Arc<Shared>, pre: &mut TcpChannel, reason: String) {
    shared.metrics.session_rejected();
    let _ = pre.send(&Message::ServiceReject { reason }.encode());
}

fn handle_request(
    shared: &Arc<Shared>,
    stream: TcpStream,
    pre: &mut TcpChannel,
    shards: u8,
    instances: u16,
    workload: String,
) {
    let check = SessionOptions::new()
        .shards(shards as usize)
        .instances(instances as usize);
    if let Err(e) = check.validate() {
        return reject(shared, pre, e.to_string());
    }
    if workload::resolve(&workload, 1).is_none() {
        return reject(shared, pre, format!("unknown workload {workload:?}"));
    }
    let queued = shared.metrics.snapshot().job_queue_depth;
    if queued >= shared.config.max_queued as u64 {
        return reject(
            shared,
            pre,
            format!("server busy: {queued} sessions queued"),
        );
    }
    let session = shared.next_session.fetch_add(1, Ordering::SeqCst) + 1;
    let shard_count = shards as usize;
    if shard_count > 1 {
        // Park until every shard sub-stream attaches. Insert before
        // sending Accept so an eager client's attach can't miss.
        shared.pending.lock().unwrap().insert(
            session,
            Pending {
                workload,
                shards: shard_count,
                instances: instances as usize,
                main: stream,
                shard_streams: (0..shard_count).map(|_| None).collect(),
            },
        );
        if pre
            .send(&Message::ServiceAccept { session }.encode())
            .is_err()
        {
            shared.pending.lock().unwrap().remove(&session);
            return;
        }
        shared.metrics.session_accepted();
    } else {
        if pre
            .send(&Message::ServiceAccept { session }.encode())
            .is_err()
        {
            return;
        }
        shared.metrics.session_accepted();
        enqueue(
            shared,
            session,
            workload,
            1,
            instances as usize,
            stream,
            Vec::new(),
        );
    }
}

fn handle_attach(
    shared: &Arc<Shared>,
    stream: TcpStream,
    pre: &mut TcpChannel,
    session: u64,
    shard: u8,
) {
    let ready = {
        let mut pending = shared.pending.lock().unwrap();
        let Some(entry) = pending.get_mut(&session) else {
            drop(pending);
            return reject(shared, pre, format!("unknown session {session}"));
        };
        let slot = shard as usize;
        if slot >= entry.shards {
            drop(pending);
            return reject(shared, pre, format!("shard {shard} out of range"));
        }
        if entry.shard_streams[slot].is_some() {
            drop(pending);
            return reject(shared, pre, format!("shard {shard} already attached"));
        }
        entry.shard_streams[slot] = Some(stream);
        if entry.shard_streams.iter().all(Option::is_some) {
            pending.remove(&session)
        } else {
            None
        }
    };
    if let Some(entry) = ready {
        enqueue(
            shared,
            session,
            entry.workload,
            entry.shards,
            entry.instances,
            entry.main,
            entry.shard_streams.into_iter().flatten().collect(),
        );
    }
}

fn enqueue(
    shared: &Arc<Shared>,
    session: u64,
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<TcpStream>,
) {
    shared.metrics.job_queued();
    let job_shared = Arc::clone(shared);
    shared.pool.execute(move || {
        run_session(
            &job_shared,
            session,
            workload,
            shards,
            instances,
            main,
            shard_streams,
        );
    });
}

fn run_session(
    shared: &Arc<Shared>,
    session: u64,
    workload: String,
    shards: usize,
    instances: usize,
    main: TcpStream,
    shard_streams: Vec<TcpStream>,
) {
    shared.metrics.job_started();
    let cap = shared.config.send_queue_frames;
    let result = (|| -> Result<Vec<SkipGateStats>, String> {
        let wl = workload::resolve(&workload, instances)
            .ok_or_else(|| format!("workload {workload:?} no longer resolvable"))?;
        let opts = SessionOptions::new()
            .shards(shards)
            .instances(instances)
            .ot(shared.config.ot)
            .stream(shared.config.stream)
            .schedule(shared.config.schedule);
        let mut main_ch = QueuedChannel::new(main, cap, Arc::clone(&shared.metrics))
            .map_err(|e| e.to_string())?;
        let shard_chs = shard_streams
            .into_iter()
            .map(|s| {
                QueuedChannel::new(s, cap, Arc::clone(&shared.metrics))
                    .map(|c| Box::new(c) as Box<dyn Channel>)
            })
            .collect::<io::Result<Vec<_>>>()
            .map_err(|e| e.to_string())?;
        let mut prg = Prg::from_entropy();
        let mut ot = opts.ot.sender(&mut prg);
        let outcome = drive_garbler(
            &wl.circuit,
            &wl.alices,
            &wl.publics,
            wl.cycles,
            &mut main_ch,
            shard_chs,
            ot.as_mut(),
            &mut prg,
            &opts,
        )
        .map_err(|e| e.to_string())?;
        Ok(outcome.lanes.iter().map(|l| l.stats).collect())
    })();
    match &result {
        Ok(stats) => {
            let tables: u64 = stats.iter().map(|s| s.garbled_tables).sum();
            let bytes: u64 = stats.iter().map(|s| s.table_bytes).sum();
            shared.metrics.session_completed(tables, bytes);
        }
        // Teardown: the session's channels (and their writer threads)
        // drop here, closing its sockets; nothing else is touched.
        Err(_) => shared.metrics.session_failed(),
    }
    shared.records.lock().unwrap().push(SessionRecord {
        session,
        workload,
        shards,
        instances,
        result,
    });
}
