//! Sequential Boolean circuit infrastructure for the ARM2GC reproduction.
//!
//! This crate is the substitute for the paper's hardware-synthesis pipeline
//! (Verilog + Synopsys Design Compiler + TinyGarble technology libraries):
//!
//! * [`ir`] — the netlist IR: 2-input truth-table gates ([`Op`]),
//!   flip-flops with typed initialisation, per-cycle input streams and
//!   output scheduling,
//! * [`builder`] — a hardware-construction DSL ([`CircuitBuilder`]) with a
//!   GC-optimised standard library (free-XOR-aware adders, muxes,
//!   comparators, shifters, multipliers, memories),
//! * [`sim`] — a cleartext reference simulator used as the correctness
//!   oracle for every garbling engine,
//! * [`bench_circuits`] — generators for every benchmark circuit in the
//!   paper's evaluation (Sum, Compare, Hamming, Mult, MatrixMult,
//!   SHA3/Keccak-f\[1600\], AES-128),
//! * [`analysis`] — gate-count statistics (the paper's cost metric is the
//!   number of non-XOR gates),
//! * [`schedule`] — precomputed ASAP topological layer schedules
//!   ([`LayerSchedule`]) that the garbling engines reuse every clock
//!   cycle to feed whole independent levels into the batched AES core.
//!
//! # Example
//!
//! ```
//! use arm2gc_circuit::{CircuitBuilder, Role};
//!
//! let mut b = CircuitBuilder::new("adder");
//! let x = b.inputs(Role::Alice, 8);
//! let y = b.inputs(Role::Bob, 8);
//! let (sum, _carry) = b.add(&x, &y);
//! b.outputs(&sum);
//! let c = b.build();
//! // Free-XOR full adders: one AND per bit (the unused top carry's AND
//! // is skipped by the engines at run time).
//! assert_eq!(c.non_xor_count(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bench_circuits;
pub mod builder;
pub mod ir;
pub mod netlist;
pub mod random;
pub mod schedule;
pub mod sim;
pub mod words;

pub use builder::{Bus, CircuitBuilder, Ram, RamConfig};
pub use ir::{Circuit, Dff, DffInit, Gate, Op, OutputMode, Role, WireId};
pub use schedule::{CycleDep, CyclePatch, LayerSchedule, ScheduleMode};
pub use sim::Simulator;
pub use words::{bits_to_u32, bits_to_u64, u32_to_bits, u64_to_bits};
