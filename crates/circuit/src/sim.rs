//! Cleartext reference simulator.
//!
//! Executes a [`Circuit`] on plain bits. Every garbling engine in the
//! workspace is tested against this oracle: for random inputs,
//! `garbled(output) == simulated(output)` must hold.

use crate::ir::{Circuit, DffInit, OutputMode, Role};

/// Runtime data supplied by one role (a party, or the public input `p`).
#[derive(Clone, Debug, Default)]
pub struct PartyData {
    /// Flip-flop initialisation bits (indexed by `DffInit::…(i)`).
    pub init: Vec<bool>,
    /// Per-cycle primary-input bits: `stream[cycle][i]` feeds the `i`-th
    /// input wire of this role on `cycle`. May be shorter than the cycle
    /// bound if the circuit halts early, but must cover every executed
    /// cycle.
    pub stream: Vec<Vec<bool>>,
}

impl PartyData {
    /// Data with initialisation bits only (no per-cycle stream).
    pub fn from_init(init: Vec<bool>) -> Self {
        Self {
            init,
            stream: Vec::new(),
        }
    }

    /// Data with a per-cycle stream only.
    pub fn from_stream(stream: Vec<Vec<bool>>) -> Self {
        Self {
            init: Vec::new(),
            stream,
        }
    }

    fn bit(&self, cycle: usize, idx: usize, role: Role) -> bool {
        *self
            .stream
            .get(cycle)
            .unwrap_or_else(|| panic!("{role:?} input stream exhausted at cycle {cycle}"))
            .get(idx)
            .unwrap_or_else(|| panic!("{role:?} input stream too narrow at cycle {cycle}"))
    }

    fn init_bit(&self, idx: u32, role: Role) -> bool {
        *self
            .init
            .get(idx as usize)
            .unwrap_or_else(|| panic!("{role:?} init vector too short (need bit {idx})"))
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Output bits: one vector per read point (per cycle in
    /// [`OutputMode::PerCycle`], a single vector in
    /// [`OutputMode::FinalOnly`]).
    pub outputs: Vec<Vec<bool>>,
    /// Number of cycles actually executed (≤ the requested bound when the
    /// halt wire fires).
    pub cycles_run: usize,
}

impl SimResult {
    /// The single final output vector.
    ///
    /// # Panics
    /// Panics if there are no outputs.
    pub fn final_output(&self) -> &[bool] {
        self.outputs.last().expect("circuit produced no outputs")
    }
}

/// Cleartext executor for a [`Circuit`].
#[derive(Debug)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
}

impl<'c> Simulator<'c> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self { circuit }
    }

    /// Runs for at most `max_cycles` cycles (stopping early if the halt
    /// wire fires) and returns the scheduled outputs.
    pub fn run(
        &self,
        alice: &PartyData,
        bob: &PartyData,
        public: &PartyData,
        max_cycles: usize,
    ) -> SimResult {
        let c = self.circuit;
        assert!(max_cycles > 0, "must run at least one cycle");
        let mut state = vec![false; c.wire_count()];

        for &(w, v) in &c.consts {
            state[w.index()] = v;
        }
        for dff in &c.dffs {
            state[dff.q.index()] = match dff.init {
                DffInit::Const(v) => v,
                DffInit::Public(i) => public.init_bit(i, Role::Public),
                DffInit::Alice(i) => alice.init_bit(i, Role::Alice),
                DffInit::Bob(i) => bob.init_bit(i, Role::Bob),
            };
        }

        let mut outputs = Vec::new();
        let mut cycles_run = 0;
        for cycle in 0..max_cycles {
            // Feed per-cycle inputs.
            let mut idx = [0usize; 3];
            for input in &c.inputs {
                let slot = match input.role {
                    Role::Alice => 0,
                    Role::Bob => 1,
                    Role::Public => 2,
                };
                let party = match input.role {
                    Role::Alice => alice,
                    Role::Bob => bob,
                    Role::Public => public,
                };
                state[input.wire.index()] = party.bit(cycle, idx[slot], input.role);
                idx[slot] += 1;
            }

            for g in &c.gates {
                state[g.out.index()] = g.op.eval(state[g.a.index()], state[g.b.index()]);
            }

            if matches!(c.output_mode, OutputMode::PerCycle) {
                outputs.push(c.outputs.iter().map(|w| state[w.index()]).collect());
            }

            let halted = c.halt_wire.map(|w| state[w.index()]).unwrap_or(false);

            // Simultaneous flip-flop copy.
            let next: Vec<bool> = c.dffs.iter().map(|d| state[d.d.index()]).collect();
            for (dff, v) in c.dffs.iter().zip(next) {
                state[dff.q.index()] = v;
            }

            cycles_run = cycle + 1;
            if halted {
                break;
            }
        }

        if matches!(c.output_mode, OutputMode::FinalOnly) {
            outputs.push(c.outputs.iter().map(|w| state[w.index()]).collect());
        }

        SimResult {
            outputs,
            cycles_run,
        }
    }

    /// Convenience for purely combinational circuits: one cycle, outputs
    /// as a single bit vector.
    pub fn run_comb(&self, alice: &[bool], bob: &[bool], public: &[bool]) -> Vec<bool> {
        let a = PartyData::from_stream(vec![alice.to_vec()]);
        let b = PartyData::from_stream(vec![bob.to_vec()]);
        let p = PartyData::from_stream(vec![public.to_vec()]);
        self.run(&a, &b, &p, 1)
            .outputs
            .pop()
            .expect("one output set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DffInit, Role};
    use crate::words::{bits_to_u32, u32_to_bits};
    use crate::CircuitBuilder;

    #[test]
    fn combinational_adder() {
        let mut b = CircuitBuilder::new("add8");
        let x = b.inputs(Role::Alice, 8);
        let y = b.inputs(Role::Bob, 8);
        let (s, _) = b.add(&x, &y);
        b.outputs(&s);
        let c = b.build();
        let sim = Simulator::new(&c);
        for (xa, yb) in [(3u32, 5u32), (200, 100), (255, 255)] {
            let out = sim.run_comb(&u32_to_bits(xa, 8), &u32_to_bits(yb, 8), &[]);
            assert_eq!(bits_to_u32(&out), (xa + yb) & 0xff);
        }
    }

    #[test]
    fn sequential_accumulator_with_per_cycle_inputs() {
        // acc' = acc + in (4-bit), one new Alice bit vector per cycle.
        let mut b = CircuitBuilder::new("acc");
        let input = b.inputs(Role::Alice, 4);
        let acc = b.dff_bus(4, |_| DffInit::Const(false));
        let (sum, _) = b.add(&acc, &input);
        b.connect_dff_bus(&acc, &sum);
        b.outputs(&acc);
        let c = b.build();

        let stream = vec![u32_to_bits(3, 4), u32_to_bits(5, 4), u32_to_bits(1, 4)];
        let res = Simulator::new(&c).run(
            &PartyData::from_stream(stream),
            &PartyData::default(),
            &PartyData::default(),
            3,
        );
        // FinalOnly: outputs are the DFF q values *after* the last copy.
        assert_eq!(bits_to_u32(res.final_output()), 9);
    }

    #[test]
    fn halt_wire_stops_early() {
        // Counter counts up; halts when it reaches 3.
        let mut b = CircuitBuilder::new("cnt");
        let cnt = b.dff_bus(4, |_| DffInit::Const(false));
        let (next, _) = b.inc(&cnt);
        b.connect_dff_bus(&cnt, &next);
        let halt = b.eq_const(&cnt, 3);
        b.set_halt(halt);
        b.outputs(&cnt);
        let c = b.build();
        let res = Simulator::new(&c).run(
            &PartyData::default(),
            &PartyData::default(),
            &PartyData::default(),
            100,
        );
        assert_eq!(res.cycles_run, 4); // cycles with cnt = 0,1,2,3
        assert_eq!(bits_to_u32(res.final_output()), 4);
    }

    #[test]
    fn dff_init_from_party_vectors() {
        let mut b = CircuitBuilder::new("init");
        let a = b.dff_bus(4, |i| DffInit::Alice(i as u32));
        let p = b.dff_bus(4, |i| DffInit::Public(i as u32));
        let (s, _) = b.add(&a, &p);
        // Regs hold their value.
        let a2 = a.clone();
        b.connect_dff_bus(&a, &a2);
        let p2 = p.clone();
        b.connect_dff_bus(&p, &p2);
        b.outputs(&s);
        b.set_output_mode(crate::OutputMode::PerCycle);
        let c = b.build();
        let res = Simulator::new(&c).run(
            &PartyData::from_init(u32_to_bits(6, 4)),
            &PartyData::default(),
            &PartyData::from_init(u32_to_bits(7, 4)),
            1,
        );
        assert_eq!(bits_to_u32(&res.outputs[0]), 13);
    }
}
