//! Textual netlist format (SHDL-inspired, in the TinyGarble lineage).
//!
//! Circuits serialise to a line-oriented format so they can be stored,
//! diffed, and exchanged with external synthesis flows — the role the
//! paper's Verilog/SHDL pipeline plays:
//!
//! ```text
//! # arm2gc netlist v1
//! circuit adder 25 wires
//! output_mode per_cycle
//! input alice w0
//! const w2 1
//! dff w5 <- w9 init const 0
//! dff w6 <- w10 init alice 3
//! gate XOR w7 = w0 w1
//! output w7
//! halt w9
//! tap pc w5 w6
//! ```
//!
//! `emit` → `parse` is lossless (see the roundtrip tests).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ir::{Circuit, Dff, DffInit, Gate, Input, Op, OutputMode, Role, WireId};

/// Netlist parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl Error for NetlistError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, NetlistError> {
    Err(NetlistError {
        line,
        message: message.into(),
    })
}

/// Serialises a circuit to the textual format.
pub fn emit(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("# arm2gc netlist v1\n");
    out.push_str(&format!("circuit {} {} wires\n", c.name(), c.wire_count()));
    out.push_str(&format!(
        "output_mode {}\n",
        match c.output_mode() {
            OutputMode::PerCycle => "per_cycle",
            OutputMode::FinalOnly => "final_only",
        }
    ));
    for input in c.inputs() {
        let role = match input.role {
            Role::Alice => "alice",
            Role::Bob => "bob",
            Role::Public => "public",
        };
        out.push_str(&format!("input {role} w{}\n", input.wire.0));
    }
    for &(w, v) in c.consts() {
        out.push_str(&format!("const w{} {}\n", w.0, v as u8));
    }
    for dff in c.dffs() {
        let init = match dff.init {
            DffInit::Const(v) => format!("const {}", v as u8),
            DffInit::Public(i) => format!("public {i}"),
            DffInit::Alice(i) => format!("alice {i}"),
            DffInit::Bob(i) => format!("bob {i}"),
        };
        out.push_str(&format!("dff w{} <- w{} init {init}\n", dff.q.0, dff.d.0));
    }
    for g in c.gates() {
        out.push_str(&format!(
            "gate {} w{} = w{} w{}\n",
            g.op.name(),
            g.out.0,
            g.a.0,
            g.b.0
        ));
    }
    for w in c.outputs() {
        out.push_str(&format!("output w{}\n", w.0));
    }
    if let Some(h) = c.halt_wire() {
        out.push_str(&format!("halt w{}\n", h.0));
    }
    for (name, bus) in &c.taps {
        out.push_str(&format!("tap {name}"));
        for w in bus {
            out.push_str(&format!(" w{}", w.0));
        }
        out.push('\n');
    }
    out
}

fn parse_wire(tok: &str, line: usize) -> Result<WireId, NetlistError> {
    tok.strip_prefix('w')
        .and_then(|n| n.parse::<u32>().ok())
        .map(WireId)
        .ok_or_else(|| NetlistError {
            line,
            message: format!("expected wire id, found '{tok}'"),
        })
}

fn op_by_name(name: &str) -> Option<Op> {
    (0u8..16).map(Op::from_table).find(|op| op.name() == name)
}

/// Parses the textual format back into a [`Circuit`].
///
/// # Errors
/// Returns the first malformed line. The resulting circuit is validated
/// structurally (wire bounds, single drivers).
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut name = String::from("netlist");
    let mut wire_count = 0u32;
    let mut output_mode = OutputMode::FinalOnly;
    let mut inputs = Vec::new();
    let mut consts = Vec::new();
    let mut dffs: Vec<Dff> = Vec::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut outputs = Vec::new();
    let mut halt_wire = None;
    let mut taps: Vec<(String, Vec<WireId>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let toks: Vec<&str> = raw.split_whitespace().collect();
        if toks.is_empty() || toks[0].starts_with('#') {
            continue;
        }
        match toks[0] {
            "circuit" => {
                if toks.len() != 4 || toks[3] != "wires" {
                    return err(line, "expected: circuit <name> <n> wires");
                }
                name = toks[1].to_string();
                wire_count = toks[2].parse().map_err(|_| NetlistError {
                    line,
                    message: "bad wire count".into(),
                })?;
            }
            "output_mode" => {
                output_mode = match toks.get(1) {
                    Some(&"per_cycle") => OutputMode::PerCycle,
                    Some(&"final_only") => OutputMode::FinalOnly,
                    _ => return err(line, "expected per_cycle or final_only"),
                };
            }
            "input" => {
                let role = match toks.get(1) {
                    Some(&"alice") => Role::Alice,
                    Some(&"bob") => Role::Bob,
                    Some(&"public") => Role::Public,
                    _ => return err(line, "expected input role"),
                };
                inputs.push(Input {
                    wire: parse_wire(toks[2], line)?,
                    role,
                });
            }
            "const" => {
                let w = parse_wire(toks[1], line)?;
                let v = match toks.get(2) {
                    Some(&"0") => false,
                    Some(&"1") => true,
                    _ => return err(line, "const value must be 0 or 1"),
                };
                consts.push((w, v));
            }
            "dff" => {
                // dff wQ <- wD init <kind> [idx]
                if toks.len() < 6 || toks[2] != "<-" || toks[4] != "init" {
                    return err(line, "expected: dff wQ <- wD init <kind> [i]");
                }
                let q = parse_wire(toks[1], line)?;
                let d = parse_wire(toks[3], line)?;
                let init = match toks[5] {
                    "const" => DffInit::Const(toks.get(6) == Some(&"1")),
                    kind => {
                        let idx: u32 =
                            toks.get(6).and_then(|t| t.parse().ok()).ok_or_else(|| {
                                NetlistError {
                                    line,
                                    message: "missing init index".into(),
                                }
                            })?;
                        match kind {
                            "public" => DffInit::Public(idx),
                            "alice" => DffInit::Alice(idx),
                            "bob" => DffInit::Bob(idx),
                            other => return err(line, format!("bad init kind '{other}'")),
                        }
                    }
                };
                dffs.push(Dff { d, q, init });
            }
            "gate" => {
                // gate OP wOUT = wA wB
                if toks.len() != 6 || toks[3] != "=" {
                    return err(line, "expected: gate OP wO = wA wB");
                }
                let op = op_by_name(toks[1]).ok_or_else(|| NetlistError {
                    line,
                    message: format!("unknown op '{}'", toks[1]),
                })?;
                gates.push(Gate {
                    op,
                    out: parse_wire(toks[2], line)?,
                    a: parse_wire(toks[4], line)?,
                    b: parse_wire(toks[5], line)?,
                });
            }
            "output" => outputs.push(parse_wire(toks[1], line)?),
            "halt" => halt_wire = Some(parse_wire(toks[1], line)?),
            "tap" => {
                let bus: Result<Vec<WireId>, _> =
                    toks[2..].iter().map(|t| parse_wire(t, line)).collect();
                taps.push((toks[1].to_string(), bus?));
            }
            other => return err(line, format!("unknown directive '{other}'")),
        }
    }

    // Structural validation: every wire < wire_count, single driver.
    let mut driver: HashMap<u32, &'static str> = HashMap::new();
    let mut claim = |w: WireId, kind: &'static str| -> Result<(), NetlistError> {
        if w.0 >= wire_count {
            return err(0, format!("wire w{} out of range", w.0));
        }
        if driver.insert(w.0, kind).is_some() {
            return err(0, format!("wire w{} driven twice", w.0));
        }
        Ok(())
    };
    for i in &inputs {
        claim(i.wire, "input")?;
    }
    for &(w, _) in &consts {
        claim(w, "const")?;
    }
    for d in &dffs {
        claim(d.q, "dff")?;
    }
    for g in &gates {
        claim(g.out, "gate")?;
    }

    Ok(Circuit {
        name,
        wire_count,
        gates,
        dffs,
        inputs,
        consts,
        outputs,
        output_mode,
        halt_wire,
        taps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_circuits;
    use crate::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
    use crate::sim::Simulator;

    fn roundtrip_equivalent(c: &Circuit, cycles: usize, seed: u64) {
        let text = emit(c);
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.wire_count(), c.wire_count());
        assert_eq!(parsed.gates().len(), c.gates().len());
        assert_eq!(parsed.non_xor_count(), c.non_xor_count());
        // Behavioural equivalence on random inputs.
        let mut rng = TestRng::new(seed);
        let (a, b, p) = random_inputs(&mut rng, c, cycles);
        let r1 = Simulator::new(c).run(&a, &b, &p, cycles);
        let r2 = Simulator::new(&parsed).run(&a, &b, &p, cycles);
        assert_eq!(r1.outputs, r2.outputs);
    }

    #[test]
    fn roundtrip_bench_circuit() {
        let bc = bench_circuits::hamming(32, &[0x0f0f_0f0f], &[0x00ff_00ff]);
        roundtrip_equivalent(&bc.circuit, 32, 5);
    }

    #[test]
    fn roundtrip_random_circuits() {
        let mut rng = TestRng::new(99);
        for i in 0..10 {
            let c = random_circuit(&mut rng, RandomCircuitParams::default());
            roundtrip_equivalent(&c, 1 + i % 4, 1000 + i as u64);
        }
    }

    #[test]
    fn parse_rejects_double_driver() {
        let text = "circuit bad 3 wires\n\
                    input alice w0\n\
                    gate XOR w1 = w0 w0\n\
                    gate AND w1 = w0 w0\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn parse_rejects_out_of_range_wire() {
        let text = "circuit bad 1 wires\ninput alice w5\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "circuit ok 2 wires\ninput alice w0\nfrobnicate\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn emitted_text_is_stable() {
        let bc = bench_circuits::sum(8, 1, 2);
        assert_eq!(emit(&bc.circuit), emit(&bc.circuit));
        assert!(emit(&bc.circuit).contains("output_mode per_cycle"));
    }
}
