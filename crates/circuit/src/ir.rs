//! Netlist intermediate representation.
//!
//! A [`Circuit`] is a *sequential* netlist in the TinyGarble sense: a set
//! of 2-input combinational gates in topological order plus a set of
//! flip-flops. Each simulated/garbled clock cycle evaluates every gate
//! once, then copies every flip-flop's `d` wire into its `q` wire.
//!
//! Wires carry no storage here; they are indices into per-engine state
//! arrays. A wire is driven by exactly one of: a gate output, a flip-flop
//! `q`, a primary input, or a constant.

use core::fmt;

/// Index of a wire in a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WireId(pub u32);

impl WireId {
    /// The wire index as a `usize` for state-array addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A 2-input Boolean function as a 4-bit truth table.
///
/// Bit `i` of the table is the output for inputs `(a, b)` with
/// `i = (a << 1) | b`.
///
/// ```
/// use arm2gc_circuit::Op;
/// assert!(Op::XOR.is_linear());
/// assert!(!Op::AND.is_linear());
/// assert_eq!(Op::AND.eval(true, true), true);
/// assert_eq!(Op::AND.eval(true, false), false);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Op(u8);

/// Result of restricting one input of an [`Op`] to a known value: the gate
/// collapses to a unary function of its remaining input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Unary {
    /// Output is a constant regardless of the remaining input.
    Const(bool),
    /// Output equals the remaining input (the gate acts as a wire).
    Pass,
    /// Output is the complement of the remaining input (acts as an inverter).
    Inv,
}

impl Op {
    /// Constant 0.
    pub const FALSE: Op = Op(0b0000);
    /// Constant 1.
    pub const TRUE: Op = Op(0b1111);
    /// Logical AND.
    pub const AND: Op = Op(0b1000);
    /// Logical OR.
    pub const OR: Op = Op(0b1110);
    /// Logical XOR.
    pub const XOR: Op = Op(0b0110);
    /// Logical XNOR.
    pub const XNOR: Op = Op(0b1001);
    /// Logical NAND.
    pub const NAND: Op = Op(0b0111);
    /// Logical NOR.
    pub const NOR: Op = Op(0b0001);
    /// `a & !b`.
    pub const ANDNOT: Op = Op(0b0100);
    /// `!a & b`.
    pub const NOTAND: Op = Op(0b0010);
    /// First input passed through.
    pub const BUF_A: Op = Op(0b1100);
    /// First input inverted.
    pub const NOT_A: Op = Op(0b0011);
    /// Second input passed through.
    pub const BUF_B: Op = Op(0b1010);
    /// Second input inverted.
    pub const NOT_B: Op = Op(0b0101);

    /// Constructs from a raw 4-bit truth table.
    ///
    /// # Panics
    /// Panics if `tt > 15`.
    pub const fn from_table(tt: u8) -> Self {
        assert!(tt < 16, "truth table must be 4 bits");
        Op(tt)
    }

    /// The raw 4-bit truth table.
    pub const fn table(self) -> u8 {
        self.0
    }

    /// Evaluates the gate on concrete inputs.
    #[inline]
    pub const fn eval(self, a: bool, b: bool) -> bool {
        let i = ((a as u8) << 1) | (b as u8);
        (self.0 >> i) & 1 == 1
    }

    /// True for gates that are free under free-XOR garbling: XOR/XNOR,
    /// buffers, inverters and constants. Everything else (the eight
    /// AND-family functions) needs a garbled table.
    #[inline]
    pub const fn is_linear(self) -> bool {
        // f(a,b) = c0 ^ c_a·a ^ c_b·b  ⇔  f(0,0)^f(0,1)^f(1,0)^f(1,1) = 0.
        (self.0.count_ones() & 1) == 0
    }

    /// Restricts input `a` to the constant `val`; the gate becomes a unary
    /// function of `b`.
    pub const fn restrict_a(self, val: bool) -> Unary {
        let f0 = (self.0 >> ((val as u8) << 1)) & 1 == 1; // b = 0
        let f1 = (self.0 >> (((val as u8) << 1) | 1)) & 1 == 1; // b = 1
        Self::unary(f0, f1)
    }

    /// Restricts input `b` to the constant `val`; the gate becomes a unary
    /// function of `a`.
    pub const fn restrict_b(self, val: bool) -> Unary {
        let f0 = (self.0 >> (val as u8)) & 1 == 1; // a = 0
        let f1 = (self.0 >> (0b10 | (val as u8))) & 1 == 1; // a = 1
        Self::unary(f0, f1)
    }

    /// Collapses the gate under the constraint `b == a` (identical secret
    /// inputs — category iii of SkipGate).
    pub const fn diagonal(self) -> Unary {
        let f0 = self.0 & 1 == 1; // (0,0)
        let f1 = (self.0 >> 3) & 1 == 1; // (1,1)
        Self::unary(f0, f1)
    }

    /// Collapses the gate under the constraint `b == !a` (inverted secret
    /// inputs — category iii of SkipGate).
    pub const fn antidiagonal(self) -> Unary {
        let f0 = (self.0 >> 1) & 1 == 1; // (0,1)
        let f1 = (self.0 >> 2) & 1 == 1; // (1,0)
        Self::unary(f0, f1)
    }

    const fn unary(f0: bool, f1: bool) -> Unary {
        match (f0, f1) {
            (false, false) => Unary::Const(false),
            (true, true) => Unary::Const(true),
            (false, true) => Unary::Pass,
            (true, false) => Unary::Inv,
        }
    }

    /// Decomposes a nonlinear gate as `((a ⊕ α) ∧ (b ⊕ β)) ⊕ γ`.
    ///
    /// # Panics
    /// Panics if the gate is linear (linear gates are never garbled).
    pub fn and_form(self) -> (bool, bool, bool) {
        assert!(!self.is_linear(), "and_form called on linear gate {self:?}");
        if self.0.count_ones() == 1 {
            // single 1 at index i* = (a*,b*): need a⊕α = 1 and b⊕β = 1 there
            let i = self.0.trailing_zeros() as u8;
            (i >> 1 == 0, i & 1 == 0, false)
        } else {
            // three 1s: complement has a single 1
            let inv = (!self.0) & 0xf;
            let i = inv.trailing_zeros() as u8;
            (i >> 1 == 0, i & 1 == 0, true)
        }
    }

    /// Human-readable mnemonic.
    pub const fn name(self) -> &'static str {
        match self.0 {
            0b0000 => "FALSE",
            0b1111 => "TRUE",
            0b1000 => "AND",
            0b1110 => "OR",
            0b0110 => "XOR",
            0b1001 => "XNOR",
            0b0111 => "NAND",
            0b0001 => "NOR",
            0b0100 => "ANDNOT",
            0b0010 => "NOTAND",
            0b1100 => "BUF_A",
            0b0011 => "NOT_A",
            0b1010 => "BUF_B",
            0b0101 => "NOT_B",
            0b1011 => "ORNOT",
            _ => "NOTOR",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One combinational gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gate {
    /// Truth table.
    pub op: Op,
    /// First input wire.
    pub a: WireId,
    /// Second input wire.
    pub b: WireId,
    /// Output wire (driven only by this gate).
    pub out: WireId,
}

/// Who supplies a value at protocol run time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// The garbler's private input.
    Alice,
    /// The evaluator's private input.
    Bob,
    /// The public input `p`, known to both parties.
    Public,
}

/// Initial value of a flip-flop at cycle 0.
///
/// Index variants select a bit from the corresponding runtime-supplied
/// bit vector (e.g. the compiled program binary for `Public`, a party's
/// private memory image for `Alice`/`Bob`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DffInit {
    /// A fixed constant baked into the circuit.
    Const(bool),
    /// Bit `i` of the public initialisation vector (the input `p`).
    Public(u32),
    /// Bit `i` of Alice's private initialisation vector.
    Alice(u32),
    /// Bit `i` of Bob's private initialisation vector.
    Bob(u32),
}

/// A D flip-flop: at the end of every cycle `q := d`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dff {
    /// Data input, sampled at the end of each cycle.
    pub d: WireId,
    /// Stored output, valid throughout the following cycle.
    pub q: WireId,
    /// Value of `q` during the first cycle.
    pub init: DffInit,
}

/// A primary input wire fed with a (possibly per-cycle) bit stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Input {
    /// The wire this input drives.
    pub wire: WireId,
    /// Which party supplies the bit.
    pub role: Role,
}

/// When output wires are revealed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OutputMode {
    /// Outputs are read on every cycle (TinyGarble bit-serial style).
    PerCycle,
    /// Outputs are read once, after the final flip-flop copy. Output wires
    /// that are flip-flop `q`s yield their post-copy (final-state) value.
    #[default]
    FinalOnly,
}

/// A sequential netlist. Construct with [`crate::CircuitBuilder`].
#[derive(Clone, Debug)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) wire_count: u32,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    pub(crate) inputs: Vec<Input>,
    pub(crate) consts: Vec<(WireId, bool)>,
    pub(crate) outputs: Vec<WireId>,
    pub(crate) output_mode: OutputMode,
    pub(crate) halt_wire: Option<WireId>,
    pub(crate) taps: Vec<(String, Vec<WireId>)>,
}

impl Circuit {
    /// Human-readable circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of wires (state-array size).
    pub fn wire_count(&self) -> usize {
        self.wire_count as usize
    }

    /// Gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Primary per-cycle inputs.
    pub fn inputs(&self) -> &[Input] {
        &self.inputs
    }

    /// Constant-driven wires.
    pub fn consts(&self) -> &[(WireId, bool)] {
        &self.consts
    }

    /// Output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Output revelation schedule.
    pub fn output_mode(&self) -> OutputMode {
        self.output_mode
    }

    /// The optional halt wire: engines that can observe it publicly stop
    /// at the end of the first cycle where it is 1.
    pub fn halt_wire(&self) -> Option<WireId> {
        self.halt_wire
    }

    /// Looks up a named debug tap registered by the builder.
    pub fn tap(&self, name: &str) -> Option<&[WireId]> {
        self.taps
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Number of nonlinear (garbled-table-costing) gates per cycle.
    ///
    /// This is the paper's cost metric: with free-XOR only non-XOR gates
    /// cost communication.
    pub fn non_xor_count(&self) -> u64 {
        self.gates.iter().filter(|g| !g.op.is_linear()).count() as u64
    }

    /// Number of linear (free) gates per cycle.
    pub fn xor_count(&self) -> u64 {
        self.gates.iter().filter(|g| g.op.is_linear()).count() as u64
    }

    /// Primary inputs belonging to `role`, in declaration order.
    pub fn inputs_of(&self, role: Role) -> Vec<WireId> {
        self.inputs
            .iter()
            .filter(|i| i.role == role)
            .map(|i| i.wire)
            .collect()
    }

    /// Number of initialisation bits required from `role` (one more than
    /// the largest index used by any flip-flop of that role).
    pub fn init_bits_of(&self, role: Role) -> usize {
        self.dffs
            .iter()
            .filter_map(|d| match (d.init, role) {
                (DffInit::Public(i), Role::Public)
                | (DffInit::Alice(i), Role::Alice)
                | (DffInit::Bob(i), Role::Bob) => Some(i as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval_matches_names() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(Op::AND.eval(a, b), a & b);
                assert_eq!(Op::OR.eval(a, b), a | b);
                assert_eq!(Op::XOR.eval(a, b), a ^ b);
                assert_eq!(Op::XNOR.eval(a, b), !(a ^ b));
                assert_eq!(Op::NAND.eval(a, b), !(a & b));
                assert_eq!(Op::NOR.eval(a, b), !(a | b));
                assert_eq!(Op::ANDNOT.eval(a, b), a & !b);
                assert_eq!(Op::NOTAND.eval(a, b), !a & b);
                assert_eq!(Op::BUF_A.eval(a, b), a);
                assert_eq!(Op::NOT_A.eval(a, b), !a);
                assert_eq!(Op::BUF_B.eval(a, b), b);
                assert_eq!(Op::NOT_B.eval(a, b), !b);
            }
        }
    }

    #[test]
    fn linearity_classification() {
        let linear = [
            Op::FALSE,
            Op::TRUE,
            Op::XOR,
            Op::XNOR,
            Op::BUF_A,
            Op::NOT_A,
            Op::BUF_B,
            Op::NOT_B,
        ];
        for op in linear {
            assert!(op.is_linear(), "{op} should be linear");
        }
        let nonlinear = [
            Op::AND,
            Op::OR,
            Op::NAND,
            Op::NOR,
            Op::ANDNOT,
            Op::NOTAND,
            Op::from_table(0b1011),
            Op::from_table(0b1101),
        ];
        for op in nonlinear {
            assert!(!op.is_linear(), "{op} should be nonlinear");
        }
    }

    #[test]
    fn and_form_reconstructs_truth_table() {
        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            if op.is_linear() {
                continue;
            }
            let (alpha, beta, gamma) = op.and_form();
            for a in [false, true] {
                for b in [false, true] {
                    let expect = ((a ^ alpha) & (b ^ beta)) ^ gamma;
                    assert_eq!(op.eval(a, b), expect, "tt={tt:04b} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn restrictions_agree_with_eval() {
        for tt in 0u8..16 {
            let op = Op::from_table(tt);
            for v in [false, true] {
                for x in [false, true] {
                    let via_a = match op.restrict_a(v) {
                        Unary::Const(c) => c,
                        Unary::Pass => x,
                        Unary::Inv => !x,
                    };
                    assert_eq!(via_a, op.eval(v, x));
                    let via_b = match op.restrict_b(v) {
                        Unary::Const(c) => c,
                        Unary::Pass => x,
                        Unary::Inv => !x,
                    };
                    assert_eq!(via_b, op.eval(x, v));
                }
                let diag = match op.diagonal() {
                    Unary::Const(c) => c,
                    Unary::Pass => v,
                    Unary::Inv => !v,
                };
                assert_eq!(diag, op.eval(v, v));
                let anti = match op.antidiagonal() {
                    Unary::Const(c) => c,
                    Unary::Pass => v,
                    Unary::Inv => !v,
                };
                assert_eq!(anti, op.eval(v, !v));
            }
        }
    }

    #[test]
    fn example_gate_collapse_from_figure_1() {
        // Figure 1 of the paper: AND with public 0 → constant 0;
        // AND with public 1 → wire; XOR with public 1 → inverter.
        assert_eq!(Op::AND.restrict_a(false), Unary::Const(false));
        assert_eq!(Op::AND.restrict_a(true), Unary::Pass);
        assert_eq!(Op::XOR.restrict_a(true), Unary::Inv);
        assert_eq!(Op::XOR.restrict_a(false), Unary::Pass);
    }
}
