//! Shift/rotate stdlib: constant shifts are free rewires; variable shifts
//! are log-depth barrel networks (one mux layer per shift-amount bit).

use super::{Bus, CircuitBuilder};
use crate::ir::WireId;

impl CircuitBuilder {
    /// Logical shift left by a constant (free — pure rewiring).
    pub fn shl_const(&mut self, a: &[WireId], k: usize) -> Bus {
        let zero = self.constant(false);
        let n = a.len();
        (0..n)
            .map(|i| if i < k { zero } else { a[i - k] })
            .collect()
    }

    /// Logical shift right by a constant (free).
    pub fn lshr_const(&mut self, a: &[WireId], k: usize) -> Bus {
        let zero = self.constant(false);
        let n = a.len();
        (0..n)
            .map(|i| if i + k < n { a[i + k] } else { zero })
            .collect()
    }

    /// Arithmetic shift right by a constant (free).
    pub fn ashr_const(&mut self, a: &[WireId], k: usize) -> Bus {
        let n = a.len();
        let sign = a[n - 1];
        (0..n)
            .map(|i| if i + k < n { a[i + k] } else { sign })
            .collect()
    }

    /// Rotate right by a constant (free).
    pub fn ror_const(&mut self, a: &[WireId], k: usize) -> Bus {
        let n = a.len();
        (0..n).map(|i| a[(i + k) % n]).collect()
    }

    /// Barrel shifter core: applies `shift(a, 2^k)` under `amount[k]`.
    fn barrel(
        &mut self,
        a: &[WireId],
        amount: &[WireId],
        f: impl Fn(&mut Self, &[WireId], usize) -> Bus,
    ) -> Bus {
        let mut cur: Bus = a.to_vec();
        for (k, &bit) in amount.iter().enumerate() {
            let shifted = f(self, &cur, 1 << k);
            cur = self.mux_bus(bit, &shifted, &cur);
        }
        cur
    }

    /// Variable logical shift left (`width` ANDs per amount bit).
    pub fn shl_var(&mut self, a: &[WireId], amount: &[WireId]) -> Bus {
        self.barrel(a, amount, Self::shl_const)
    }

    /// Variable logical shift right.
    pub fn lshr_var(&mut self, a: &[WireId], amount: &[WireId]) -> Bus {
        self.barrel(a, amount, Self::lshr_const)
    }

    /// Variable arithmetic shift right.
    pub fn ashr_var(&mut self, a: &[WireId], amount: &[WireId]) -> Bus {
        self.barrel(a, amount, Self::ashr_const)
    }

    /// Variable rotate right.
    pub fn ror_var(&mut self, a: &[WireId], amount: &[WireId]) -> Bus {
        self.barrel(a, amount, Self::ror_const)
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::Role;
    use crate::CircuitBuilder;

    #[test]
    fn const_shifts_are_free() {
        let mut b = CircuitBuilder::new("s");
        let x = b.inputs(Role::Alice, 32);
        let y = b.shl_const(&x, 5);
        let z = b.ror_const(&y, 11);
        b.outputs(&z);
        assert_eq!(b.build().non_xor_count(), 0);
    }

    #[test]
    fn barrel_shifter_cost() {
        let mut b = CircuitBuilder::new("s");
        let x = b.inputs(Role::Alice, 32);
        let k = b.inputs(Role::Bob, 5);
        let y = b.shl_var(&x, &k);
        b.outputs(&y);
        // 5 mux layers × 32 bits = 160 ANDs.
        assert_eq!(b.build().non_xor_count(), 160);
    }
}
