//! Arithmetic stdlib: adders, subtractors, comparators, multipliers,
//! popcount — all built from the GC-optimised full adder
//! (`s = a⊕b⊕c`, `c' = c ⊕ ((a⊕c)∧(b⊕c))`: **one** AND per bit).

use super::{Bus, CircuitBuilder};
use crate::ir::WireId;

impl CircuitBuilder {
    /// One-bit full adder returning `(sum, carry_out)` — costs 1 AND.
    pub fn full_adder(&mut self, a: WireId, b: WireId, c: WireId) -> (WireId, WireId) {
        let axc = self.xor(a, c);
        let bxc = self.xor(b, c);
        let s = self.xor(axc, b);
        let t = self.and(axc, bxc);
        let cout = self.xor(c, t);
        (s, cout)
    }

    /// Ripple-carry addition with explicit carry-in; returns
    /// `(sum, carry_out)`. Costs `width` ANDs.
    pub fn add_with_carry(&mut self, a: &[WireId], b: &[WireId], cin: WireId) -> (Bus, WireId) {
        assert_eq!(a.len(), b.len(), "add width mismatch");
        let mut c = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, co) = self.full_adder(ai, bi, c);
            sum.push(s);
            c = co;
        }
        (sum, c)
    }

    /// `a + b` (carry-in 0); returns `(sum, carry_out)`.
    ///
    /// The final carry's AND is only paid if `carry_out` is used — the
    /// engines skip dead gates — so an `n`-bit add that ignores the carry
    /// costs `n-1` garbled tables, matching TinyGarble's Sum numbers.
    pub fn add(&mut self, a: &[WireId], b: &[WireId]) -> (Bus, WireId) {
        let zero = self.constant(false);
        self.add_with_carry(a, b, zero)
    }

    /// `a - b` via `a + !b + 1`; returns `(difference, carry_out)` where
    /// `carry_out == 1` means no borrow (i.e. `a >= b` unsigned).
    pub fn sub(&mut self, a: &[WireId], b: &[WireId]) -> (Bus, WireId) {
        let nb = self.not_bus(b);
        let one = self.constant(true);
        self.add_with_carry(a, &nb, one)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: &[WireId]) -> Bus {
        let zero_bus = self.const_bus(0, a.len());
        self.sub(&zero_bus, a).0
    }

    /// Increment by one; returns `(a + 1, carry_out)`.
    pub fn inc(&mut self, a: &[WireId]) -> (Bus, WireId) {
        let zeros = self.const_bus(0, a.len());
        let one = self.constant(true);
        self.add_with_carry(a, &zeros, one)
    }

    /// `a == b` — `width-1` ANDs plus free XNORs.
    pub fn eq(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len(), "eq width mismatch");
        let bits: Bus = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_reduce(&bits)
    }

    /// `a == v` for a public constant `v` — `width-1` ANDs.
    pub fn eq_const(&mut self, a: &[WireId], v: u64) -> WireId {
        let bits: Bus = a
            .iter()
            .enumerate()
            .map(|(i, &x)| if (v >> i) & 1 == 1 { x } else { self.not(x) })
            .collect();
        self.and_reduce(&bits)
    }

    /// Unsigned `a < b` — `width` ANDs (borrow chain of `a - b`).
    pub fn lt_unsigned(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        let (_, carry) = self.sub(a, b);
        self.not(carry)
    }

    /// Unsigned `a >= b`.
    pub fn ge_unsigned(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        let (_, carry) = self.sub(a, b);
        carry
    }

    /// Signed (two's-complement) `a < b`:
    /// `lt = (a-b < 0) ⊕ overflow`.
    pub fn lt_signed(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert!(!a.is_empty());
        let (diff, carry) = self.sub(a, b);
        let n = a.len();
        // overflow = (a_msb ⊕ b_msb) ∧ (a_msb ⊕ diff_msb)
        let axb = self.xor(a[n - 1], b[n - 1]);
        let axd = self.xor(a[n - 1], diff[n - 1]);
        let ovf = self.and(axb, axd);
        let _ = carry;
        self.xor(diff[n - 1], ovf)
    }

    /// Schoolbook multiplication returning the full `2n`-bit product.
    ///
    /// Costs `n² + n(n-1)` ANDs for `n`-bit operands (1024 + 992 = 2016
    /// for 32 bits — the TinyGarble "Mult 32" figure).
    pub fn mul_full(&mut self, a: &[WireId], b: &[WireId]) -> Bus {
        assert_eq!(a.len(), b.len(), "mul width mismatch");
        let n = a.len();
        let zero = self.constant(false);
        // acc starts as the first partial product, padded to 2n bits.
        let mut acc: Bus = b.iter().map(|&bi| self.and(a[0], bi)).collect();
        acc.resize(2 * n, zero);
        for i in 1..n {
            let pp: Bus = b.iter().map(|&bi| self.and(a[i], bi)).collect();
            // Add pp into acc[i .. i+n]; propagate carry one more bit.
            let (sum, carry) = self.add(&acc[i..i + n], &pp);
            acc.splice(i..i + n, sum);
            if i + n < 2 * n {
                acc[i + n] = carry;
            }
        }
        acc
    }

    /// Schoolbook multiplication keeping only the low `n` bits
    /// (what a CPU `MUL` instruction returns).
    ///
    /// Emits `n(n+1)/2 + n(n-1)/2` = 1024 ANDs for n = 32 statically; the
    /// top carry of each internal add is dead, so the engines garble only
    /// 993 — the paper's ARM2GC "Mult 32" figure.
    pub fn mul_lo(&mut self, a: &[WireId], b: &[WireId]) -> Bus {
        assert_eq!(a.len(), b.len(), "mul width mismatch");
        let n = a.len();
        let mut acc: Bus = (0..n).map(|j| self.and(a[0], b[j])).collect();
        for i in 1..n {
            // Only bits that influence the low n bits matter: b[0..n-i].
            let pp: Bus = (0..n - i).map(|j| self.and(a[i], b[j])).collect();
            let window = acc[i..n].to_vec();
            let (sum, _carry) = self.add(&window, &pp);
            acc.splice(i..n, sum);
        }
        acc
    }

    /// Tree popcount: the number of set bits of `a` as a
    /// `ceil(log2(n+1))`-bit bus (Huang et al.'s tree method, which the
    /// paper cites for its Hamming benchmark).
    pub fn popcount(&mut self, a: &[WireId]) -> Bus {
        assert!(!a.is_empty());
        // Level 0: each bit is a 1-bit count.
        let mut counts: Vec<Bus> = a.iter().map(|&w| vec![w]).collect();
        while counts.len() > 1 {
            let mut next = Vec::with_capacity(counts.len().div_ceil(2));
            let mut iter = counts.into_iter();
            while let Some(x) = iter.next() {
                match iter.next() {
                    Some(y) => {
                        let w = x.len().max(y.len());
                        let zero = self.constant(false);
                        let mut xe = x.clone();
                        xe.resize(w, zero);
                        let mut ye = y.clone();
                        ye.resize(w, zero);
                        let (mut s, c) = self.add(&xe, &ye);
                        s.push(c);
                        next.push(s);
                    }
                    None => next.push(x),
                }
            }
            counts = next;
        }
        counts.pop().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::Role;
    use crate::CircuitBuilder;

    #[test]
    fn add_gate_count() {
        let mut b = CircuitBuilder::new("a");
        let x = b.inputs(Role::Alice, 32);
        let y = b.inputs(Role::Bob, 32);
        let (s, _) = b.add(&x, &y);
        b.outputs(&s);
        // 32 ANDs emitted; the last is dead unless carry is consumed.
        assert_eq!(b.build().non_xor_count(), 32);
    }

    #[test]
    fn mult_32_matches_tinygarble_count() {
        let mut b = CircuitBuilder::new("m");
        let x = b.inputs(Role::Alice, 32);
        let y = b.inputs(Role::Bob, 32);
        let p = b.mul_full(&x, &y);
        b.outputs(&p);
        assert_eq!(b.build().non_xor_count(), 2016);
    }

    #[test]
    fn mul_lo_32_static_count() {
        let mut b = CircuitBuilder::new("m");
        let x = b.inputs(Role::Alice, 32);
        let y = b.inputs(Role::Bob, 32);
        let p = b.mul_lo(&x, &y);
        b.outputs(&p);
        // 528 partial-product ANDs + 496 adder ANDs; 31 of these are dead
        // top carries that the engines skip at run time (1024 - 31 = 993,
        // the paper's figure).
        assert_eq!(b.build().non_xor_count(), 1024);
    }

    #[test]
    fn compare_32_count() {
        let mut b = CircuitBuilder::new("c");
        let x = b.inputs(Role::Alice, 32);
        let y = b.inputs(Role::Bob, 32);
        let lt = b.lt_unsigned(&x, &y);
        b.output(lt);
        assert_eq!(b.build().non_xor_count(), 32);
    }
}
