//! Hardware-construction DSL.
//!
//! [`CircuitBuilder`] plays the role of the paper's HDL + logic-synthesis
//! flow: circuits are described structurally in Rust and the stdlib
//! methods emit the same GC-optimised gate patterns the TinyGarble
//! technology library produces (full adder = 1 AND, 2:1 mux = 1 AND, …).

mod arith;
mod memory;
mod shift;

pub use memory::{Ram, RamConfig};

use crate::ir::{Circuit, Dff, DffInit, Gate, Input, Op, OutputMode, Role, WireId};

/// A bundle of wires interpreted as a little-endian binary word
/// (`bus[0]` is the least significant bit).
pub type Bus = Vec<WireId>;

/// Incrementally constructs a [`Circuit`].
///
/// ```
/// use arm2gc_circuit::{CircuitBuilder, Role};
/// let mut b = CircuitBuilder::new("xor2");
/// let x = b.input(Role::Alice);
/// let y = b.input(Role::Bob);
/// let z = b.xor(x, y);
/// b.output(z);
/// let c = b.build();
/// assert_eq!(c.non_xor_count(), 0);
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    name: String,
    wire_count: u32,
    driven: Vec<bool>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    pending_dffs: Vec<usize>,
    inputs: Vec<Input>,
    consts: Vec<(WireId, bool)>,
    outputs: Vec<WireId>,
    output_mode: OutputMode,
    halt_wire: Option<WireId>,
    taps: Vec<(String, Vec<WireId>)>,
    zero: Option<WireId>,
    one: Option<WireId>,
}

impl CircuitBuilder {
    /// Starts a new circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            wire_count: 0,
            driven: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            pending_dffs: Vec::new(),
            inputs: Vec::new(),
            consts: Vec::new(),
            outputs: Vec::new(),
            output_mode: OutputMode::FinalOnly,
            halt_wire: None,
            taps: Vec::new(),
            zero: None,
            one: None,
        }
    }

    fn fresh(&mut self, driven: bool) -> WireId {
        let w = WireId(self.wire_count);
        self.wire_count += 1;
        self.driven.push(driven);
        w
    }

    fn check_driven(&self, w: WireId) {
        assert!(
            (w.index()) < self.driven.len() && self.driven[w.index()],
            "wire {w} used before being driven"
        );
    }

    /// Declares a primary (per-cycle) input for `role`.
    pub fn input(&mut self, role: Role) -> WireId {
        let w = self.fresh(true);
        self.inputs.push(Input { wire: w, role });
        w
    }

    /// Declares `n` primary inputs for `role` as a little-endian bus.
    pub fn inputs(&mut self, role: Role, n: usize) -> Bus {
        (0..n).map(|_| self.input(role)).collect()
    }

    /// A constant wire (memoised: at most one 0-wire and one 1-wire).
    pub fn constant(&mut self, v: bool) -> WireId {
        let slot = if v { &mut self.one } else { &mut self.zero };
        if let Some(w) = *slot {
            return w;
        }
        let w = WireId(self.wire_count);
        self.wire_count += 1;
        self.driven.push(true);
        self.consts.push((w, v));
        if v {
            self.one = Some(w);
        } else {
            self.zero = Some(w);
        }
        w
    }

    /// A constant bus of `width` bits holding `value` (little-endian).
    pub fn const_bus(&mut self, value: u64, width: usize) -> Bus {
        (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }

    /// Emits a gate computing `op(a, b)` and returns its output wire.
    pub fn gate(&mut self, op: Op, a: WireId, b: WireId) -> WireId {
        self.check_driven(a);
        self.check_driven(b);
        let out = self.fresh(true);
        self.gates.push(Gate { op, a, b, out });
        out
    }

    /// `!a` (free).
    pub fn not(&mut self, a: WireId) -> WireId {
        self.gate(Op::NOT_A, a, a)
    }

    /// `a & b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::AND, a, b)
    }

    /// `a | b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::OR, a, b)
    }

    /// `a ⊕ b` (free).
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::XOR, a, b)
    }

    /// `!(a ⊕ b)` (free).
    pub fn xnor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::XNOR, a, b)
    }

    /// `!(a & b)`.
    pub fn nand(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::NAND, a, b)
    }

    /// `!(a | b)`.
    pub fn nor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::NOR, a, b)
    }

    /// `a & !b`.
    pub fn andnot(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(Op::ANDNOT, a, b)
    }

    /// 2:1 multiplexer `sel ? t : f` — one AND gate
    /// (`f ⊕ (sel ∧ (t ⊕ f))`).
    pub fn mux(&mut self, sel: WireId, t: WireId, f: WireId) -> WireId {
        let d = self.xor(t, f);
        let m = self.and(sel, d);
        self.xor(f, m)
    }

    /// Bitwise 2:1 mux over equal-width buses.
    ///
    /// # Panics
    /// Panics if the buses differ in width.
    pub fn mux_bus(&mut self, sel: WireId, t: &[WireId], f: &[WireId]) -> Bus {
        assert_eq!(t.len(), f.len(), "mux_bus width mismatch");
        t.iter()
            .zip(f)
            .map(|(&ti, &fi)| self.mux(sel, ti, fi))
            .collect()
    }

    /// Bitwise XOR of two buses (free).
    pub fn xor_bus(&mut self, a: &[WireId], b: &[WireId]) -> Bus {
        assert_eq!(a.len(), b.len(), "xor_bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Bitwise AND of two buses.
    pub fn and_bus(&mut self, a: &[WireId], b: &[WireId]) -> Bus {
        assert_eq!(a.len(), b.len(), "and_bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect()
    }

    /// Bitwise NOT of a bus (free).
    pub fn not_bus(&mut self, a: &[WireId]) -> Bus {
        a.iter().map(|&x| self.not(x)).collect()
    }

    /// AND-reduce a bus to a single wire (`width-1` AND gates).
    pub fn and_reduce(&mut self, a: &[WireId]) -> WireId {
        self.reduce(a, Op::AND)
    }

    /// OR-reduce a bus to a single wire.
    pub fn or_reduce(&mut self, a: &[WireId]) -> WireId {
        self.reduce(a, Op::OR)
    }

    /// XOR-reduce a bus to a single wire (free).
    pub fn xor_reduce(&mut self, a: &[WireId]) -> WireId {
        self.reduce(a, Op::XOR)
    }

    fn reduce(&mut self, a: &[WireId], op: Op) -> WireId {
        assert!(!a.is_empty(), "cannot reduce an empty bus");
        // Balanced tree to keep depth logarithmic.
        let mut layer: Vec<WireId> = a.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.gate(op, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Declares a flip-flop and returns its `q` wire. The data input must
    /// be connected later with [`CircuitBuilder::connect_dff`] (feedback
    /// loops require `q` to exist before `d` is built).
    pub fn dff(&mut self, init: DffInit) -> WireId {
        let q = self.fresh(true);
        self.dffs.push(Dff {
            d: WireId(u32::MAX),
            q,
            init,
        });
        self.pending_dffs.push(self.dffs.len() - 1);
        q
    }

    /// A bus of flip-flops initialised from consecutive bits of `role`'s
    /// initialisation vector starting at `base`.
    pub fn dff_bus(&mut self, width: usize, init: impl Fn(usize) -> DffInit) -> Bus {
        (0..width).map(|i| self.dff(init(i))).collect()
    }

    /// Connects the data input of the flip-flop whose `q` wire is `q`.
    ///
    /// # Panics
    /// Panics if `q` is not a pending flip-flop output or `d` is undriven.
    pub fn connect_dff(&mut self, q: WireId, d: WireId) {
        self.check_driven(d);
        let pos = self
            .pending_dffs
            .iter()
            .position(|&i| self.dffs[i].q == q)
            .unwrap_or_else(|| panic!("{q} is not an unconnected flip-flop output"));
        let idx = self.pending_dffs.swap_remove(pos);
        self.dffs[idx].d = d;
    }

    /// Connects a whole bus of flip-flops at once.
    pub fn connect_dff_bus(&mut self, q: &[WireId], d: &[WireId]) {
        assert_eq!(q.len(), d.len(), "connect_dff_bus width mismatch");
        for (&qi, &di) in q.iter().zip(d) {
            self.connect_dff(qi, di);
        }
    }

    /// Registers `w` as a circuit output.
    pub fn output(&mut self, w: WireId) {
        self.check_driven(w);
        self.outputs.push(w);
    }

    /// Registers every wire of `bus` as an output.
    pub fn outputs(&mut self, bus: &[WireId]) {
        for &w in bus {
            self.output(w);
        }
    }

    /// Selects when outputs are revealed (default: [`OutputMode::FinalOnly`]).
    pub fn set_output_mode(&mut self, mode: OutputMode) {
        self.output_mode = mode;
    }

    /// Marks `w` as the halt signal: when it is publicly known to be 1 at
    /// the end of a cycle, engines may stop early.
    pub fn set_halt(&mut self, w: WireId) {
        self.check_driven(w);
        self.halt_wire = Some(w);
    }

    /// Names a bus for debugging/introspection (visible via
    /// [`Circuit::tap`](crate::Circuit::tap)).
    pub fn tap(&mut self, name: impl Into<String>, bus: &[WireId]) {
        self.taps.push((name.into(), bus.to_vec()));
    }

    /// Finalises the circuit.
    ///
    /// # Panics
    /// Panics if any flip-flop's data input was never connected.
    pub fn build(self) -> Circuit {
        assert!(
            self.pending_dffs.is_empty(),
            "{} flip-flop(s) left unconnected in '{}'",
            self.pending_dffs.len(),
            self.name
        );
        Circuit {
            name: self.name,
            wire_count: self.wire_count,
            gates: self.gates,
            dffs: self.dffs,
            inputs: self.inputs,
            consts: self.consts,
            outputs: self.outputs,
            output_mode: self.output_mode,
            halt_wire: self.halt_wire,
            taps: self.taps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_costs_one_and() {
        let mut b = CircuitBuilder::new("m");
        let s = b.input(Role::Public);
        let t = b.input(Role::Alice);
        let f = b.input(Role::Bob);
        let o = b.mux(s, t, f);
        b.output(o);
        assert_eq!(b.build().non_xor_count(), 1);
    }

    #[test]
    fn constants_are_memoised() {
        let mut b = CircuitBuilder::new("c");
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn unconnected_dff_panics() {
        let mut b = CircuitBuilder::new("bad");
        let _q = b.dff(DffInit::Const(false));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "used before being driven")]
    fn foreign_wire_panics() {
        let mut b = CircuitBuilder::new("bad");
        let _ = b.not(WireId(7));
    }

    #[test]
    fn reduce_tree_count() {
        let mut b = CircuitBuilder::new("r");
        let xs = b.inputs(Role::Alice, 9);
        let r = b.and_reduce(&xs);
        b.output(r);
        assert_eq!(b.build().non_xor_count(), 8);
    }
}
