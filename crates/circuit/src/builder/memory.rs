//! Memory stdlib: flip-flop arrays with mux-tree read ports and
//! decoder-gated write ports.
//!
//! This is the paper's §4.4 design point: memories are linear-scan
//! MUX/DFF arrays, *not* ORAM. When the access address is public,
//! SkipGate collapses the entire mux tree and decoder to wires, making
//! the access free — which is exactly why the paper rejects ORAM for the
//! register file and memories.

use super::{Bus, CircuitBuilder};
use crate::ir::{DffInit, WireId};

/// Geometry of a [`Ram`].
#[derive(Clone, Copy, Debug)]
pub struct RamConfig {
    /// Number of words; must be a power of two.
    pub words: usize,
    /// Bits per word.
    pub width: usize,
}

/// A word-addressable flip-flop memory.
///
/// Created by [`CircuitBuilder::ram`]; the write port must be connected
/// exactly once with [`Ram::connect_write`] (or [`Ram::connect_rom`] for
/// read-only memories) before the circuit is built.
#[derive(Clone, Debug)]
pub struct Ram {
    words: Vec<Bus>,
}

impl CircuitBuilder {
    /// Declares a `cfg.words × cfg.width` memory whose flip-flops are
    /// initialised by `init(word_index, bit_index)`.
    pub fn ram(&mut self, cfg: RamConfig, init: impl Fn(usize, usize) -> DffInit) -> Ram {
        assert!(cfg.words.is_power_of_two(), "RAM word count must be 2^k");
        let words = (0..cfg.words)
            .map(|w| (0..cfg.width).map(|i| self.dff(init(w, i))).collect())
            .collect();
        Ram { words }
    }

    /// One-hot decoder of a `k`-bit address into `2^k` select lines.
    /// Recursive-split construction: `f(k) = 2^k + f(⌈k/2⌉) + f(⌊k/2⌋)`
    /// with `f(1) = 0` — e.g. 24 ANDs for 4 bits, 272 for 8 bits.
    pub fn decoder(&mut self, addr: &[WireId]) -> Vec<WireId> {
        assert!(!addr.is_empty());
        if addr.len() == 1 {
            return vec![self.not(addr[0]), addr[0]];
        }
        let mid = addr.len() / 2;
        let low = self.decoder(&addr[..mid]);
        let high = self.decoder(&addr[mid..]);
        let mut lines = Vec::with_capacity(1 << addr.len());
        for &h in &high {
            for &l in &low {
                lines.push(self.and(l, h));
            }
        }
        lines
    }
}

impl Ram {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the memory has no words (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.words[0].len()
    }

    /// The raw `q` bus of word `w` (current cycle's stored value).
    pub fn word(&self, w: usize) -> &Bus {
        &self.words[w]
    }

    /// Combinational read port: mux tree selected by `addr`
    /// (`log2(words)` bits). Costs `(words - 1) × width` ANDs — all of
    /// which SkipGate removes when `addr` is public.
    pub fn read(&self, b: &mut CircuitBuilder, addr: &[WireId]) -> Bus {
        assert_eq!(1 << addr.len(), self.words.len(), "address width mismatch");
        let mut layer: Vec<Bus> = self.words.clone();
        for &bit in addr {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(b.mux_bus(bit, &pair[1], &pair[0]));
            }
            layer = next;
        }
        layer.pop().expect("non-empty")
    }

    /// Connects the write port: on every cycle each word `w` becomes
    /// `sel_w ∧ we ? data : q_w`. Consumes the memory (the write port
    /// is connected exactly once).
    pub fn connect_write(
        self,
        b: &mut CircuitBuilder,
        addr: &[WireId],
        we: WireId,
        data: &[WireId],
    ) {
        assert_eq!(1 << addr.len(), self.words.len(), "address width mismatch");
        assert_eq!(data.len(), self.width(), "data width mismatch");
        let sel = b.decoder(addr);
        for (w, word) in self.words.iter().enumerate() {
            let en = b.and(sel[w], we);
            let next = b.mux_bus(en, data, word);
            b.connect_dff_bus(word, &next);
        }
    }

    /// Connects every word back to itself — a ROM. The stored values are
    /// whatever the flip-flop initialisation supplies (e.g. the public
    /// program binary).
    pub fn connect_rom(self, b: &mut CircuitBuilder) {
        for word in &self.words {
            let held = word.clone();
            b.connect_dff_bus(word, &held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Role;

    #[test]
    fn decoder_cost_and_width() {
        let mut b = CircuitBuilder::new("d");
        let a = b.inputs(Role::Alice, 4);
        let lines = b.decoder(&a);
        assert_eq!(lines.len(), 16);
        b.outputs(&lines);
        // f(4) = 16 + 2·f(2) = 16 + 2·4 = 24.
        assert_eq!(b.build().non_xor_count(), 24);
    }

    #[test]
    fn ram_read_cost() {
        let mut b = CircuitBuilder::new("r");
        let addr = b.inputs(Role::Bob, 3);
        let ram = b.ram(RamConfig { words: 8, width: 4 }, |w, i| {
            DffInit::Const((w + i) % 2 == 0)
        });
        let out = ram.read(&mut b, &addr);
        ram.connect_rom(&mut b);
        b.outputs(&out);
        // (8-1) words × 4 bits = 28 mux ANDs.
        assert_eq!(b.build().non_xor_count(), 28);
    }
}
