//! Bit/word conversion helpers (little-endian bit order, matching
//! [`crate::Bus`] semantics).

/// Expands `v` into `width` little-endian bits.
///
/// ```
/// use arm2gc_circuit::u32_to_bits;
/// assert_eq!(u32_to_bits(0b101, 4), vec![true, false, true, false]);
/// ```
pub fn u32_to_bits(v: u32, width: usize) -> Vec<bool> {
    (0..width).map(|i| (v >> i) & 1 == 1).collect()
}

/// Expands `v` into `width` little-endian bits.
pub fn u64_to_bits(v: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (v >> i) & 1 == 1).collect()
}

/// Packs up to 32 little-endian bits into a `u32`.
pub fn bits_to_u32(bits: &[bool]) -> u32 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as u32) << i))
}

/// Packs up to 64 little-endian bits into a `u64`.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Concatenates the little-endian bits of each word in `ws`.
pub fn words_to_bits(ws: &[u32]) -> Vec<bool> {
    ws.iter().flat_map(|&w| u32_to_bits(w, 32)).collect()
}

/// Splits a flat bit vector back into 32-bit words.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of 32.
pub fn bits_to_words(bits: &[bool]) -> Vec<u32> {
    assert!(bits.len() % 32 == 0, "bit count must be a multiple of 32");
    bits.chunks(32).map(bits_to_u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        for v in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(bits_to_u32(&u32_to_bits(v, 32)), v);
        }
    }

    #[test]
    fn roundtrip_words() {
        let ws = vec![7, 0, u32::MAX, 12345];
        assert_eq!(bits_to_words(&words_to_bits(&ws)), ws);
    }
}
