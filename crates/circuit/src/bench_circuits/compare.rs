//! Bit-serial magnitude comparison (TinyGarble's "Compare" benchmark).
//!
//! Computes `a < b` for `n`-bit unsigned operands by rippling the borrow
//! of `a - b` through a carry flip-flop: one AND per cycle, `n` cycles —
//! the paper's "Compare n = n non-XOR" row, on which SkipGate saves
//! nothing (every carry is live and secret from cycle one).

use super::BenchCircuit;
use crate::ir::{DffInit, Role};
use crate::sim::PartyData;
use crate::CircuitBuilder;

/// Builds the `n`-bit serial comparator with canonical inputs (`a < b`).
pub fn compare(n: usize, a: u64, b: u64) -> BenchCircuit {
    let mut bld = CircuitBuilder::new(format!("compare_{n}"));
    let ai = bld.input(Role::Alice);
    let bi = bld.input(Role::Bob);
    // a + !b + 1: carry flip-flop starts at 1 (the "+1").
    let carry = bld.dff(DffInit::Const(true));
    let nb = bld.not(bi);
    let (_, cout) = bld.full_adder(ai, nb, carry);
    bld.connect_dff(carry, cout);
    // carry_out == 1 ⇔ a >= b, so lt = !carry_out.
    let lt = bld.not(cout);
    bld.output(lt);
    let circuit = bld.build();

    let alice = PartyData::from_stream((0..n).map(|i| vec![bit(a, i)]).collect());
    let bob = PartyData::from_stream((0..n).map(|i| vec![bit(b, i)]).collect());

    BenchCircuit {
        circuit,
        cycles: n,
        alice,
        bob,
        public: PartyData::default(),
        expected: vec![a < b],
    }
}

fn bit(v: u64, i: usize) -> bool {
    if i < 64 {
        (v >> i) & 1 == 1
    } else {
        false
    }
}
