//! Generators for the paper's benchmark circuits (§5.2).
//!
//! Each generator returns a [`BenchCircuit`]: the netlist, the number of
//! clock cycles it runs, and encoder/decoder closures that translate
//! between semantic values (integers) and the per-cycle bit streams the
//! engines consume. These are the rows of Tables 1, 2 and 4.

mod aes;
mod compare;
mod hamming;
mod matmul;
mod mult;
mod sha3;
mod sum;

pub use aes::aes128;
pub use compare::compare;
pub use hamming::hamming;
pub use matmul::matrix_mult;
pub use mult::mult;
pub use sha3::sha3_256;
pub use sum::sum;

use crate::ir::Circuit;
use crate::sim::PartyData;

/// A benchmark circuit bundled with its run schedule.
#[derive(Debug)]
pub struct BenchCircuit {
    /// The netlist.
    pub circuit: Circuit,
    /// Number of clock cycles a run takes.
    pub cycles: usize,
    /// Alice's runtime data for the canonical test inputs.
    pub alice: PartyData,
    /// Bob's runtime data for the canonical test inputs.
    pub bob: PartyData,
    /// Public runtime data (`p`).
    pub public: PartyData,
    /// Expected output bits (from the semantic model) for those inputs.
    pub expected: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn check(bc: &BenchCircuit) {
        let res = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);
        let got: Vec<bool> = res.outputs.concat();
        assert_eq!(
            got,
            bc.expected,
            "simulated output mismatch for {}",
            bc.circuit.name()
        );
    }

    #[test]
    fn sum_32_simulates() {
        check(&sum(32, 0xdead_beef, 0x1234_5678));
    }

    #[test]
    fn sum_1024_simulates() {
        check(&sum(1024, 0xffff_ffff, 1));
    }

    #[test]
    fn compare_32_simulates() {
        check(&compare(32, 5, 9));
        check(&compare(32, 9, 5));
        check(&compare(32, 7, 7));
    }

    #[test]
    fn hamming_32_simulates() {
        check(&hamming(32, &[0xffff_0000], &[0x0f0f_0f0f]));
    }

    #[test]
    fn hamming_160_simulates() {
        let a: Vec<u32> = (0..5).map(|i| 0x1111_1111 * i).collect();
        let b: Vec<u32> = (0..5).map(|i| 0x2222_2221 * i).collect();
        check(&hamming(160, &a, &b));
    }

    #[test]
    fn mult_32_simulates() {
        check(&mult(32, 123_456_789, 987_654_321));
    }

    #[test]
    fn matmul_3x3_simulates() {
        let a: Vec<u32> = (1..=9).collect();
        let b: Vec<u32> = (10..=18).collect();
        check(&matrix_mult(3, &a, &b));
    }

    #[test]
    fn sha3_256_simulates() {
        check(&sha3_256(b"abc"));
    }

    #[test]
    fn aes_128_simulates() {
        let key: Vec<u8> = (0..16).collect();
        let pt: Vec<u8> = (0..16).map(|i| i * 0x11).collect();
        check(&aes128(
            key.try_into().expect("16 bytes"),
            pt.try_into().expect("16 bytes"),
        ));
    }
}
