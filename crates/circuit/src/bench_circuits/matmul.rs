//! Combinational k×k matrix multiplication over 32-bit words
//! (TinyGarble's "MatrixMult" benchmark).
//!
//! Each output cell is a sum of `k` low-half products. After SkipGate
//! removes the dead top carries the runtime cost is
//! `k³·993 + k²(k-1)·31` — 27,369 / 127,225 / 522,304 for k = 3/5/8,
//! exactly the paper's ARM2GC column of Table 2.

use super::BenchCircuit;
use crate::ir::Role;
use crate::sim::PartyData;
use crate::words::u32_to_bits;
use crate::{Bus, CircuitBuilder};

/// Builds the `k×k` 32-bit matrix multiplier. `a` and `b` are row-major
/// `k²`-element matrices.
pub fn matrix_mult(k: usize, a: &[u32], b: &[u32]) -> BenchCircuit {
    assert_eq!(a.len(), k * k, "a must be k×k");
    assert_eq!(b.len(), k * k, "b must be k×k");
    let mut bld = CircuitBuilder::new(format!("matmul_{k}x{k}_32"));
    let abits: Vec<Bus> = (0..k * k).map(|_| bld.inputs(Role::Alice, 32)).collect();
    let bbits: Vec<Bus> = (0..k * k).map(|_| bld.inputs(Role::Bob, 32)).collect();

    for i in 0..k {
        for j in 0..k {
            let mut acc: Option<Bus> = None;
            for l in 0..k {
                let prod = bld.mul_lo(&abits[i * k + l], &bbits[l * k + j]);
                acc = Some(match acc {
                    None => prod,
                    Some(cur) => bld.add(&cur, &prod).0,
                });
            }
            bld.outputs(&acc.expect("k > 0"));
        }
    }
    let circuit = bld.build();

    let mut expected = Vec::with_capacity(k * k * 32);
    for i in 0..k {
        for j in 0..k {
            let cell = (0..k).fold(0u32, |s, l| {
                s.wrapping_add(a[i * k + l].wrapping_mul(b[l * k + j]))
            });
            expected.extend(u32_to_bits(cell, 32));
        }
    }

    let flat = |m: &[u32]| vec![m.iter().flat_map(|&w| u32_to_bits(w, 32)).collect()];
    BenchCircuit {
        circuit,
        cycles: 1,
        alice: PartyData::from_stream(flat(a)),
        bob: PartyData::from_stream(flat(b)),
        public: PartyData::default(),
        expected,
    }
}
