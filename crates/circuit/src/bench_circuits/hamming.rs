//! Bit-serial Hamming distance (TinyGarble's "Hamming" benchmark).
//!
//! Per cycle one bit of each operand is XORed and added into a
//! `ceil(log2(n+1))`-bit counter through a half-adder chain
//! (`w-1` ANDs per cycle). For n = 32/160/512 this gives the paper's
//! static counts 160/1120/4608 exactly.

use super::BenchCircuit;
use crate::ir::{DffInit, Role};
use crate::sim::PartyData;
use crate::words::u64_to_bits;
use crate::CircuitBuilder;

/// Builds the `n`-bit serial Hamming-distance circuit. `a` and `b` are
/// little-endian 32-bit word vectors supplying at least `n` bits.
pub fn hamming(n: usize, a: &[u32], b: &[u32]) -> BenchCircuit {
    let w = usize::BITS as usize - n.leading_zeros() as usize; // ceil(log2(n+1))
    let mut bld = CircuitBuilder::new(format!("hamming_{n}"));
    let ai = bld.input(Role::Alice);
    let bi = bld.input(Role::Bob);
    let x = bld.xor(ai, bi);
    let counter = bld.dff_bus(w, |_| DffInit::Const(false));
    // Half-adder chain: counter + x. Bit 0: s = c0 ⊕ x, carry = c0 ∧ x;
    // bit i: s = ci ⊕ carry, carry' = ci ∧ carry. No carry out of the top
    // bit (the counter is wide enough never to overflow).
    let mut carry = x;
    let mut next = Vec::with_capacity(w);
    for (i, &c) in counter.iter().enumerate() {
        next.push(bld.xor(c, carry));
        if i + 1 < w {
            carry = bld.and(c, carry);
        }
    }
    bld.connect_dff_bus(&counter, &next);
    bld.outputs(&counter);
    let circuit = bld.build();

    let bits_of = |ws: &[u32], i: usize| (ws[i / 32] >> (i % 32)) & 1 == 1;
    let alice = PartyData::from_stream((0..n).map(|i| vec![bits_of(a, i)]).collect());
    let bob = PartyData::from_stream((0..n).map(|i| vec![bits_of(b, i)]).collect());
    let dist = (0..n).filter(|&i| bits_of(a, i) != bits_of(b, i)).count() as u64;

    BenchCircuit {
        circuit,
        cycles: n,
        alice,
        bob,
        public: PartyData::default(),
        expected: u64_to_bits(dist, w),
    }
}
